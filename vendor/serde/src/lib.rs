//! Offline stand-in for `serde`, built around an owned JSON-like content
//! tree instead of upstream's visitor-based data model. The derive macros
//! (re-exported from the local `serde_derive`) generate [`Serialize`] /
//! [`Deserialize`] impls that follow serde's JSON conventions:
//!
//! * structs → maps keyed by field name;
//! * newtype structs → the inner value, transparently;
//! * unit enum variants → the variant name as a string;
//! * data-carrying variants → `{"Variant": …}` with a value, sequence, or
//!   map payload depending on the variant shape;
//! * `Option` → `null` / the inner value.
//!
//! `serde_json` (also vendored) renders [`Content`] to JSON text and back.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative (or explicitly signed) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object; insertion-ordered, no duplicate keys expected.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map entries when this is a [`Content::Map`].
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Sequence elements when this is a [`Content::Seq`].
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String slice when this is a [`Content::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short human name of the content kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// Deserialization error: a message describing the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error for an unexpected content kind.
    pub fn expected(what: &str, got: &Content) -> DeError {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a required field in map entries.
///
/// # Errors
///
/// Returns [`DeError`] when the key is absent.
pub fn map_get<'a>(m: &'a [(String, Content)], key: &str) -> Result<&'a Content, DeError> {
    m.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{key}`")))
}

/// Types that can render themselves into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into content.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value from content.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on any structural or type mismatch.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

// `Content` is its own data model: identity impls let callers serialize
// or deserialize arbitrary JSON (`serde_json::from_str::<Content>`), the
// stand-in's equivalent of upstream `serde_json::Value`.
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) if *v >= 0 => Ok(*v as $t),
                    Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => Ok(*v as $t),
                    other => Err(DeError::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::F64(v) if v.fract() == 0.0 => Ok(*v as $t),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    // JSON cannot encode NaN; the writer emits null for it.
                    Content::Null => Ok(<$t>::NAN),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(Box::new(T::from_content(c)?))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let seq = c.as_seq().ok_or_else(|| DeError::expected("array", c))?;
        seq.iter().map(T::from_content).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let v: Vec<T> = Vec::from_content(c)?;
        let n = v.len();
        v.try_into().map_err(|_| DeError(format!("expected array of {N} elements, got {n}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c.as_seq() {
            Some([a, b]) => Ok((A::from_content(a)?, B::from_content(b)?)),
            _ => Err(DeError::expected("2-element array", c)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content(), self.2.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c.as_seq() {
            Some([a, b, cc]) => {
                Ok((A::from_content(a)?, B::from_content(b)?, C::from_content(cc)?))
            }
            _ => Err(DeError::expected("3-element array", c)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_content(), Content::U64(3));
    }

    #[test]
    fn vec_and_tuple_round_trip() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let c = v.to_content();
        let back: Vec<(u32, String)> = Deserialize::from_content(&c).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn array_length_checked() {
        let c = Content::Seq(vec![Content::F64(1.0); 3]);
        assert!(<[f64; 6]>::from_content(&c).is_err());
        let c6 = Content::Seq(vec![Content::F64(1.0); 6]);
        assert_eq!(<[f64; 6]>::from_content(&c6).unwrap(), [1.0; 6]);
    }

    #[test]
    fn missing_field_reports_name() {
        let m = vec![("a".to_string(), Content::U64(1))];
        let err = map_get(&m, "b").unwrap_err();
        assert!(err.0.contains("`b`"));
    }
}
