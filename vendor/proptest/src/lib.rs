//! Offline stand-in for `proptest`, covering the subset this workspace
//! uses: the `proptest!` macro with an optional `proptest_config` inner
//! attribute, integer/float range strategies, and `prop_assert!` /
//! `prop_assert_eq!`. Cases are driven by a deterministic per-test RNG
//! (seeded from the test name), so failures reproduce exactly; there is
//! no shrinking — the failing arguments are printed instead.

pub mod test_runner {
    //! Configuration, error type, and the deterministic case RNG.

    /// Run configuration; only `cases` is consulted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps single-threaded CI quick
            // while still exercising each property broadly.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (carried out of the case body by
    /// `prop_assert!`-family macros).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Deterministic splitmix64 generator; the per-test seed comes from
    /// the property's name so every run replays the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name (FNV-1a hash).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (range expressions).

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A source of random values for one property argument.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.random_range(self.clone())
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random draws of its arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal expansion target for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __result {
                        panic!(
                            "property `{}` failed on case {}/{}: {}\narguments: {:?}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            e,
                            ($($arg),*)
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts inside a property body; failure aborts the case with context
/// instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&($left), &($right));
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&($left), &($right));
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 3u32..9, b in 0u64..=1, x in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b <= 1);
            prop_assert!((0.25..0.75).contains(&x), "x out of range: {x}");
            prop_assert_eq!(a / a, 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(n in 1usize..5) {
            prop_assert!(n >= 1 && n < 5);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::RngCore;
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
