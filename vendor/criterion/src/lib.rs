//! Offline stand-in for `criterion`, keeping the surface API the
//! workspace benches use (`Criterion`, groups, `BenchmarkId`,
//! `Throughput`, `iter`/`iter_with_setup`, the `criterion_group!` /
//! `criterion_main!` macros) while measuring with a plain
//! `std::time::Instant` loop: one warm-up iteration, then `sample_size`
//! timed samples, reporting min/median/mean to stdout. No statistical
//! analysis, plots, or saved baselines.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Per-iteration work declared on a group, echoed as a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier combining a function name and a parameter display.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { full: format!("{name}/{parameter}") }
    }
}

/// Collects timed samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, one sample per call after a warm-up call.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on a fresh `setup()` product per sample; setup time
    /// is excluded from the measurement.
    pub fn iter_with_setup<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Top-level bench driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(self.sample_size, name, None, f);
        self
    }

    /// Opens a named group; benchmarks in it report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput, echoed as a rate in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs `group/name`.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(self.criterion.sample_size, &full, self.throughput, f);
        self
    }

    /// Runs `group/id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.full);
        run_one(self.criterion.sample_size, &full, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (report already emitted per benchmark).
    pub fn finish(self) {}
}

fn run_one(
    sample_size: usize,
    name: &str,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut bencher = Bencher { sample_size, samples: Vec::with_capacity(sample_size) };
    f(&mut bencher);
    let mut ns: Vec<u128> = bencher.samples.iter().map(Duration::as_nanos).collect();
    if ns.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    ns.sort_unstable();
    let min = ns[0];
    let median = ns[ns.len() / 2];
    let mean = ns.iter().sum::<u128>() / ns.len() as u128;
    let rate = throughput.map(|t| {
        let (count, unit) = match t {
            Throughput::Bytes(b) => (b, "B/s"),
            Throughput::Elements(e) => (e, "elem/s"),
        };
        let per_sec = if median == 0 { f64::INFINITY } else { count as f64 * 1e9 / median as f64 };
        format!("  ~{per_sec:.0} {unit}")
    });
    println!(
        "{name:<48} min {}  median {}  mean {}  (n={}){}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        ns.len(),
        rate.unwrap_or_default()
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a bench group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4usize), &[1u64, 2, 3, 4][..], |b, s| {
            b.iter(|| s.iter().sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn iter_with_setup_excludes_setup() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("setup", |b| b.iter_with_setup(|| vec![1u8; 16], |v| v.len()));
    }
}
