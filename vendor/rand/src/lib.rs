//! Offline stand-in for the `rand` crate, implementing the 0.9 API subset
//! the PyraNet workspace uses: [`Rng::random`], [`Rng::random_range`],
//! [`SeedableRng::seed_from_u64`], and [`seq::SliceRandom::shuffle`].
//!
//! The container this repository builds in has no crates.io access, so the
//! workspace vendors a minimal, behaviour-compatible implementation instead
//! of the upstream crate (see DESIGN.md "Dependencies"). Streams are
//! deterministic per seed but are **not** bit-identical to upstream `rand`;
//! nothing in the workspace depends on upstream stream values.

/// Core source of randomness: a 64-bit word generator.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (defaults to the high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of `T` from the uniform "standard" distribution
    /// (`[0, 1)` for floats, full range for integers, fair coin for bool).
    fn random<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random(self)
    }

    /// Samples uniformly from an integer range (`start..end` or
    /// `start..=end`).
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait FromRandom {
    /// Draws one value from `rng`.
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_random_uint {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

from_random_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for f64 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRandom for bool {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange {
    /// The sampled element type.
    type Output;

    /// Draws one value uniformly from the range. Panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + r) as $t
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + r) as $t
            }
        }
    )*};
}

sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t as FromRandom>::from_random(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

sample_range_float!(f32, f64);

/// Seedable generators (mirrors `rand::SeedableRng::seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod seq {
    //! Slice helpers (mirrors `rand::seq`).

    use crate::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, uniform over permutations.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Step(u64);

    impl RngCore for Step {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = Step(7);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.random();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Step(3);
        for _ in 0..1000 {
            let v = rng.random_range(5..17u32);
            assert!((5..17).contains(&v));
            let w = rng.random_range(0..=1u64);
            assert!(w <= 1);
            let x = rng.random_range(-4..4i64);
            assert!((-4..4).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Step(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
