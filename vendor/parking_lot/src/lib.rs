//! Offline stand-in for `parking_lot`: the same poison-free `lock()` /
//! `read()` / `write()` API, implemented over `std::sync`. A poisoned std
//! lock (a panicking holder) is recovered transparently, matching
//! parking_lot's no-poisoning semantics.

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion, non-poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock, non-poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }
}
