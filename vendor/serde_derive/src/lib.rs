//! Offline stand-in for `serde_derive`. Parses the derive input token
//! stream by hand (no `syn`/`quote` available offline) and emits
//! `::serde::Serialize` / `::serde::Deserialize` impls targeting the
//! vendored serde's `Content` tree.
//!
//! Supported shapes — the full set used by this workspace:
//! named structs, tuple structs (newtypes serialize transparently), unit
//! structs, and enums mixing unit, tuple, and struct variants. Generic
//! types and `#[serde(...)]` attributes are not supported and fail loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Data {
    Struct(Shape),
    Enum(Vec<Variant>),
}

/// Derives `::serde::Serialize` (Content-tree rendering).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, data) = parse_input(input);
    let body = match &data {
        Data::Struct(Shape::Unit) => "::serde::Content::Null".to_string(),
        Data::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Data::Struct(Shape::Tuple(n)) => {
            let elems: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_content(&self.{i})")).collect();
            format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
        }
        Data::Struct(Shape::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_content(&self.{f}))"))
                .collect();
            format!("::serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Data::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| serialize_arm(&name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `::serde::Deserialize` (Content-tree reconstruction).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, data) = parse_input(input);
    let body = match &data {
        Data::Struct(Shape::Unit) => format!("{{ let _ = c; Ok({name}) }}"),
        Data::Struct(Shape::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_content(c)?))")
        }
        Data::Struct(Shape::Tuple(n)) => {
            let elems: Vec<String> =
                (0..*n).map(|i| format!("::serde::Deserialize::from_content(&s[{i}])?")).collect();
            format!(
                "{{ let s = c.as_seq().ok_or_else(|| ::serde::DeError::expected(\"array\", c))?; \
                 if s.len() != {n} {{ return Err(::serde::DeError(format!(\"expected {n} elements, got {{}}\", s.len()))); }} \
                 Ok({name}({})) }}",
                elems.join(", ")
            )
        }
        Data::Struct(Shape::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_content(::serde::map_get(m, {f:?})?)?")
                })
                .collect();
            format!(
                "{{ let m = c.as_map().ok_or_else(|| ::serde::DeError::expected(\"object\", c))?; \
                 Ok({name} {{ {} }}) }}",
                inits.join(", ")
            )
        }
        Data::Enum(variants) => deserialize_enum_body(&name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(c: &::serde::Content) -> ::core::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn serialize_arm(ty: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.shape {
        Shape::Unit => format!("{ty}::{vn} => ::serde::Content::Str({vn:?}.to_string()),"),
        Shape::Tuple(1) => format!(
            "{ty}::{vn}(f0) => ::serde::Content::Map(vec![({vn:?}.to_string(), \
             ::serde::Serialize::to_content(f0))]),"
        ),
        Shape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let elems: Vec<String> =
                binds.iter().map(|b| format!("::serde::Serialize::to_content({b})")).collect();
            format!(
                "{ty}::{vn}({}) => ::serde::Content::Map(vec![({vn:?}.to_string(), \
                 ::serde::Content::Seq(vec![{}]))]),",
                binds.join(", "),
                elems.join(", ")
            )
        }
        Shape::Named(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_content({f}))"))
                .collect();
            format!(
                "{ty}::{vn} {{ {binds} }} => ::serde::Content::Map(vec![({vn:?}.to_string(), \
                 ::serde::Content::Map(vec![{}]))]),",
                entries.join(", ")
            )
        }
    }
}

fn deserialize_enum_body(ty: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| format!("{:?} => Ok({ty}::{}),", v.name, v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.shape, Shape::Unit))
        .map(|v| deserialize_data_arm(ty, v))
        .collect();
    format!(
        "match c {{ \
           ::serde::Content::Str(s) => match s.as_str() {{ {} other => \
             Err(::serde::DeError(format!(\"unknown variant `{{other}}` of `{ty}`\"))), }}, \
           ::serde::Content::Map(m) if m.len() == 1 => {{ \
             let (tag, inner) = &m[0]; let _ = inner; match tag.as_str() {{ {} other => \
               Err(::serde::DeError(format!(\"unknown variant `{{other}}` of `{ty}`\"))), }} }}, \
           other => Err(::serde::DeError::expected(\"variant of `{ty}`\", other)), \
         }}",
        unit_arms.join(" "),
        data_arms.join(" ")
    )
}

fn deserialize_data_arm(ty: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.shape {
        Shape::Unit => unreachable!("unit variants handled in the string arm"),
        Shape::Tuple(1) => {
            format!("{vn:?} => Ok({ty}::{vn}(::serde::Deserialize::from_content(inner)?)),")
        }
        Shape::Tuple(n) => {
            let elems: Vec<String> =
                (0..*n).map(|i| format!("::serde::Deserialize::from_content(&s[{i}])?")).collect();
            format!(
                "{vn:?} => {{ let s = inner.as_seq().ok_or_else(|| \
                 ::serde::DeError::expected(\"array\", inner))?; \
                 if s.len() != {n} {{ return Err(::serde::DeError(format!(\"expected {n} \
                 elements for `{vn}`, got {{}}\", s.len()))); }} \
                 Ok({ty}::{vn}({})) }}",
                elems.join(", ")
            )
        }
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(::serde::map_get(fm, {f:?})?)?"
                    )
                })
                .collect();
            format!(
                "{vn:?} => {{ let fm = inner.as_map().ok_or_else(|| \
                 ::serde::DeError::expected(\"object\", inner))?; \
                 Ok({ty}::{vn} {{ {} }}) }}",
                inits.join(", ")
            )
        }
    }
}

fn parse_input(input: TokenStream) -> (String, Data) {
    let mut toks = input.into_iter().peekable();
    let kind = loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute (including converted doc comments): skip `#` and
                // the following bracket group.
                toks.next();
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
            }
            Some(_) => {}
            None => panic!("derive input ended before `struct`/`enum`"),
        }
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name after `{kind}`, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("the serde stand-in derives do not support generic types ({name})");
        }
    }
    let data = if kind == "struct" {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Shape::Named(named_field_names(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Shape::Tuple(tuple_arity(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Struct(Shape::Unit),
            other => panic!("unexpected struct body for {name}: {other:?}"),
        }
    } else {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body for {name}: {other:?}"),
        }
    };
    (name, data)
}

/// Extracts field names from the token stream of a braced field list.
/// Commas inside parens/brackets are invisible (token groups); commas
/// inside generic arguments are skipped by tracking `<`/`>` depth.
fn named_field_names(stream: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut toks = stream.into_iter().peekable();
    'fields: loop {
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                _ => break,
            }
        }
        let is_pub = matches!(toks.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub");
        if is_pub {
            toks.next();
            if let Some(TokenTree::Group(g)) = toks.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    toks.next();
                }
            }
        }
        match toks.next() {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            None => break 'fields,
            other => panic!("expected field name, got {other:?}"),
        }
        let mut angle = 0i32;
        loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => continue 'fields,
                    _ => {}
                },
                Some(_) => {}
                None => break 'fields,
            }
        }
    }
    names
}

/// Counts the fields of a tuple struct/variant by splitting its paren
/// group on top-level commas (tolerating a trailing comma).
fn tuple_arity(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut in_segment = false;
    let mut angle = 0i32;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    angle += 1;
                    in_segment = true;
                }
                '>' => {
                    angle -= 1;
                    in_segment = true;
                }
                ',' if angle == 0 => {
                    arity += 1;
                    in_segment = false;
                }
                _ => in_segment = true,
            },
            _ => in_segment = true,
        }
    }
    if in_segment {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                _ => break,
            }
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = g.stream();
                toks.next();
                Shape::Named(named_field_names(s))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = g.stream();
                toks.next();
                Shape::Tuple(tuple_arity(s))
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the separating comma.
        let mut angle = 0i32;
        loop {
            let at_comma = match toks.peek() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => {
                        angle += 1;
                        false
                    }
                    '>' => {
                        angle -= 1;
                        false
                    }
                    ',' if angle == 0 => true,
                    _ => false,
                },
                Some(_) => false,
                None => break,
            };
            toks.next();
            if at_comma {
                break;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}
