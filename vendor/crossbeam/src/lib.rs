//! Offline stand-in for `crossbeam`, covering the scoped-thread API the
//! workspace uses. `crossbeam::thread::scope` maps directly onto
//! `std::thread::scope` (stabilised after crossbeam's scope predated it),
//! wrapped in `Ok` to keep crossbeam's `Result` return shape.

pub mod thread {
    //! Scoped threads.

    pub use std::thread::{Scope, ScopedJoinHandle};

    /// Runs `f` with a scope in which borrowing spawns are allowed; all
    /// spawned threads are joined before `scope` returns.
    ///
    /// # Errors
    ///
    /// Never fails (panics in spawned threads propagate on join, matching
    /// std semantics); the `Result` shell mirrors crossbeam's signature.
    pub fn scope<'env, F, T>(f: F) -> std::thread::Result<T>
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(f))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|c| s.spawn(move || c.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().expect("join")).sum()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }
}
