//! Offline stand-in for `serde_json`: renders the vendored serde
//! [`Content`] tree to JSON text and parses JSON back into it.
//! Output conventions match upstream closely enough for this workspace:
//! compact `to_string`, two-space-indented `to_string_pretty`, `\uXXXX`
//! escapes for control characters, and shortest round-trip float text.

use serde::{Content, Deserialize, Serialize};

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.0)
    }
}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the supported data model; the `Result` mirrors the
/// upstream signature so `?` keeps working at call sites.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_content(), &mut out);
    Ok(out)
}

/// Serializes `value` as compact JSON into a caller-provided buffer,
/// appending to whatever it already holds. Lets hot serialization loops
/// reuse one allocation across records instead of building a fresh
/// `String` per call.
///
/// # Errors
///
/// Infallible for the supported data model (see [`to_string`]).
pub fn to_string_into<T: Serialize + ?Sized>(value: &T, out: &mut String) -> Result<(), Error> {
    write_compact(&value.to_content(), out);
    Ok(())
}

/// Serializes `value` as two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the supported data model (see [`to_string`]).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_content(), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_content(&content)?)
}

fn write_compact(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(c: &Content, indent: usize, out: &mut String) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no NaN/Infinity; upstream refuses them, we degrade to null.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep a trailing `.0` so the value reads back as a float, matching
        // serde_json's formatting of whole floats.
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&v.to_string());
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Content::Null),
            Some(b't') => self.keyword("true", Content::Bool(true)),
            Some(b'f') => self.keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error(format!("unexpected byte `{}` at {}", b as char, self.pos))),
            None => Err(Error("unexpected end of input".to_string())),
        }
    }

    fn keyword(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".to_string()))?;
        if is_float {
            let v: f64 = text.parse().map_err(|_| Error(format!("invalid number `{text}`")))?;
            Ok(Content::F64(v))
        } else if let Some(stripped) = text.strip_prefix('-') {
            let _: u64 = stripped.parse().map_err(|_| Error(format!("invalid number `{text}`")))?;
            let v: i64 =
                text.parse().map_err(|_| Error(format!("number out of range `{text}`")))?;
            Ok(Content::I64(v))
        } else {
            let v: u64 =
                text.parse().map_err(|_| Error(format!("number out of range `{text}`")))?;
            Ok(Content::U64(v))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| {
                                Error(format!("invalid \\u escape at byte {}", self.pos))
                            })?);
                            continue;
                        }
                        _ => return Err(Error(format!("invalid escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8 in string".to_string()))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        // Called with `pos` at the first hex digit (after `\u`).
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".to_string()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".to_string()))?;
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| Error(format!("invalid \\u escape `{hex}`")))?;
        self.pos += 4;
        Ok(cp)
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
    }

    #[test]
    fn round_trip_string_escapes() {
        let s = "line1\nline\\2 \"quoted\" \t ünïcode \u{1}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn round_trip_nested() {
        let v: Vec<(String, Option<Vec<u8>>)> =
            vec![("a".into(), Some(vec![1, 2])), ("b".into(), None)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, r#"[["a",[1,2]],["b",null]]"#);
        let back: Vec<(String, Option<Vec<u8>>)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn to_string_into_appends_and_matches_to_string() {
        let v: Vec<(String, u32)> = vec![("a".into(), 1), ("b".into(), 2)];
        let mut buf = String::from("prefix:");
        to_string_into(&v, &mut buf).unwrap();
        assert_eq!(buf, format!("prefix:{}", to_string(&v).unwrap()));
        buf.clear();
        to_string_into(&42u8, &mut buf).unwrap();
        assert_eq!(buf, "42");
    }

    #[test]
    fn pretty_prints_indented() {
        let v = vec![1u8, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("4 4").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }

    #[test]
    fn unicode_escape_surrogate_pair() {
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
        assert_eq!(from_str::<String>(r#""é""#).unwrap(), "é");
    }
}
