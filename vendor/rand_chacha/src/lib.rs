//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 stream cipher used
//! as a cryptographically-strong deterministic RNG, implementing the local
//! `rand` traits. Streams are stable per seed across runs and platforms
//! (little/big endian make no difference: state is kept as native u32 words
//! and emitted word-wise), but are **not** bit-identical to upstream
//! `rand_chacha`; the workspace only relies on per-seed determinism.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// The ChaCha stream cipher with 8 rounds, exposed as an RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// Current keystream block.
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf` (BLOCK_WORDS = exhausted).
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    /// Builds the generator from a 256-bit key.
    pub fn from_key(key: [u32; 8]) -> ChaCha8Rng {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        state[4..12].copy_from_slice(&key);
        // words 12..13: 64-bit block counter; 14..15: nonce (zero).
        ChaCha8Rng { state, buf: [0; BLOCK_WORDS], idx: BLOCK_WORDS }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Two ChaCha rounds (column + diagonal) per loop: 8 rounds total.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buf.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *out = w.wrapping_add(*s);
        }
        // Advance the 64-bit counter in words 12/13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        // Expand the 64-bit seed into a 256-bit key (same approach as
        // upstream rand: SplitMix64 over the seed).
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut sm);
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        ChaCha8Rng::from_key(key)
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniformish_bits() {
        // Crude sanity: ones density of 64k bits within 2% of half.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1024).map(|_| rng.next_u64().count_ones()).sum();
        let density = ones as f64 / (1024.0 * 64.0);
        assert!((density - 0.5).abs() < 0.02, "density {density}");
    }

    #[test]
    fn float_mean_is_centred() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mean: f64 = (0..4096).map(|_| rng.random::<f64>()).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
