//! The int8 acceptance gate: quantized decoding must preserve eval
//! *quality*, not eval bits.
//!
//! A `QuantizedInt8` session legitimately samples different token ids
//! than f32 — per-row absmax quantization perturbs every logit — so the
//! parity contract is pinned at the metric level: on the standard n = 10
//! pass@k workload over a fine-tuned model, int8 pass@k and syntax rate
//! must stay within a small band of the f32 session's. CI runs this gate
//! in release mode; a quantization regression (bad scales, broken i32
//! accumulation, transposed-storage indexing bugs) shows up here as a
//! collapsed pass@k or syntax rate long before it would be visible in
//! wall-time benches.

use pyranet::eval::{evaluate, machine_split, EvalOptions, EvalResult};
use pyranet::experiment::Recipe;
use pyranet::model::{KernelMode, ModelConfig, TransformerLm};
use pyranet::train::TrainConfig;
use pyranet::{BuildOptions, Experiment, ExperimentOptions, PyraNetBuilder};

/// Max allowed |int8 − f32| gap, in percentage points, for each pass@k
/// and for the syntax rate. One sample flipping on one problem moves
/// pass@10 by 100/n_problems points, so the band tolerates one problem's
/// worth of drift but fails on any systematic collapse.
const TOLERANCE_POINTS: f64 = 25.0;

/// Pretrain + fine-tune the CI-sized model exactly like the end-to-end
/// suite does — the micro budget that reliably lifts syntax rate above
/// the word-salad floor, so the parity band compares real signal.
fn trained_model() -> (TransformerLm, pyranet::model::Tokenizer) {
    let built = PyraNetBuilder::new(BuildOptions {
        scraped_files: 300,
        seed: 77,
        ..BuildOptions::default()
    })
    .build();
    let experiment = Experiment::new(built.dataset);
    let opts = ExperimentOptions {
        train: TrainConfig {
            epochs: 2,
            batch_size: 8,
            max_examples_per_phase: Some(60),
            ..TrainConfig::default()
        },
        eval: EvalOptions::default(),
    };
    let cfg = ModelConfig {
        name: "quant-parity".into(),
        d_model: 32,
        n_layers: 2,
        n_heads: 2,
        d_ff: 64,
        max_seq: 256,
        learning_rate: 3e-3,
        seed: 0x7B00,
    };
    let base = experiment.pretrain_base(&cfg, &opts);
    let tuned = experiment.run(&base, Recipe::PyraNetDataset, &opts);
    let tk = experiment.tokenizer;
    (tuned.model, tk)
}

fn eval_with(
    lm: &TransformerLm,
    tk: &pyranet::model::Tokenizer,
    kernel: KernelMode,
    threads: usize,
) -> EvalResult {
    let problems: Vec<_> = machine_split().into_iter().take(4).collect();
    let opts = EvalOptions {
        samples_per_problem: 10,
        max_new_tokens: 90,
        threads,
        kernel,
        ..EvalOptions::default()
    };
    evaluate(lm, tk, &problems, &opts)
}

#[test]
fn int8_pass_at_k_stays_within_parity_band_of_f32() {
    let (lm, tk) = trained_model();
    let f32_result = eval_with(&lm, &tk, KernelMode::Blocked, 0);
    let int8_result = eval_with(&lm, &tk, KernelMode::QuantizedInt8, 0);
    eprintln!(
        "f32:  pass@1 {:.1} pass@5 {:.1} pass@10 {:.1} syntax {:.1}",
        f32_result.pass_at(1),
        f32_result.pass_at(5),
        f32_result.pass_at(10),
        f32_result.syntax_rate()
    );
    eprintln!(
        "int8: pass@1 {:.1} pass@5 {:.1} pass@10 {:.1} syntax {:.1}",
        int8_result.pass_at(1),
        int8_result.pass_at(5),
        int8_result.pass_at(10),
        int8_result.syntax_rate()
    );
    for k in [1u32, 5, 10] {
        let gap = (int8_result.pass_at(k) - f32_result.pass_at(k)).abs();
        assert!(
            gap <= TOLERANCE_POINTS,
            "pass@{k} parity broken: int8 {:.1}% vs f32 {:.1}% (gap {gap:.1} > {TOLERANCE_POINTS})",
            int8_result.pass_at(k),
            f32_result.pass_at(k),
        );
    }
    let syntax_gap = (int8_result.syntax_rate() - f32_result.syntax_rate()).abs();
    assert!(
        syntax_gap <= TOLERANCE_POINTS,
        "syntax-rate parity broken: int8 {:.1}% vs f32 {:.1}%",
        int8_result.syntax_rate(),
        f32_result.syntax_rate(),
    );
    // The gate must bite on real signal: the f32 baseline of the briefly
    // fine-tuned model has to produce *some* syntactically plausible
    // output, otherwise both sides are comparing garbage to garbage.
    assert!(
        f32_result.syntax_rate() > 0.0 || f32_result.pass_at(10) > 0.0,
        "f32 baseline produced no signal; the parity band is vacuous"
    );
}

#[test]
fn int8_eval_is_byte_identical_across_thread_counts() {
    // Not bit-parity with f32 — parity with *itself*: i32 accumulation
    // has no ordering freedom, so the quantized eval is exactly
    // reproducible at any thread count.
    let (lm, tk) = trained_model();
    let reference =
        serde_json::to_string(&eval_with(&lm, &tk, KernelMode::QuantizedInt8, 1)).unwrap();
    for threads in [2usize, 8] {
        let result =
            serde_json::to_string(&eval_with(&lm, &tk, KernelMode::QuantizedInt8, threads))
                .unwrap();
        assert_eq!(result, reference, "threads = {threads}");
    }
}
