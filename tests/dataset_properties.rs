//! Property-style invariants over real pipeline outputs (the DESIGN.md
//! invariant list).

use pyranet::pipeline::erroneous::shuffle_labels;
use pyranet::{BuildOptions, Layer, PyraNetBuilder, PyraNetDataset};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn build(seed: u64, n: usize) -> PyraNetDataset {
    PyraNetBuilder::new(BuildOptions {
        scraped_files: n,
        seed,
        llm_generation: false,
        ..BuildOptions::default()
    })
    .build()
    .dataset
}

#[test]
fn funnel_accounts_for_every_collected_sample() {
    // Conservation across the curation funnel: collected = sum of the four
    // rejection classes + curated, for varying pools. `Pipeline::run` also
    // asserts this internally; checking it here pins the invariant against
    // real end-to-end builds (including the metrics-counter export, which
    // mirrors these exact fields).
    for (seed, n) in [(1u64, 120usize), (7, 250), (42, 400)] {
        let built = PyraNetBuilder::new(BuildOptions {
            scraped_files: n,
            seed,
            llm_generation: false,
            ..BuildOptions::default()
        })
        .build();
        let f = built.funnel;
        assert!(f.is_consistent(), "seed {seed}: lossy funnel {f:?}");
        assert_eq!(f.collected, n, "seed {seed}: pool size mismatch");
        assert_eq!(f.curated, built.dataset.len(), "seed {seed}");
    }
}

#[test]
fn layer_assignment_is_a_partition() {
    for seed in [1u64, 2, 3] {
        let ds = build(seed, 250);
        let counts = ds.layer_counts();
        assert_eq!(counts.iter().sum::<usize>(), ds.len(), "seed {seed}");
        for s in ds.iter() {
            // band membership matches the stored layer
            let expected = Layer::assign(s.rank, s.dependency_issue);
            assert_eq!(s.layer, expected, "sample {}", s.id);
        }
    }
}

#[test]
fn rank_bands_respected_within_layers() {
    let ds = build(5, 300);
    for s in ds.iter() {
        if s.dependency_issue {
            assert_eq!(s.layer, Layer::L6);
            continue;
        }
        match s.layer.rank_band() {
            Some((lo, hi)) => {
                assert!(
                    (lo..=hi).contains(&s.rank.value()),
                    "rank {} outside {:?} for {}",
                    s.rank.value(),
                    (lo, hi),
                    s.layer
                );
            }
            None => assert_eq!(s.rank.value(), 0),
        }
    }
}

#[test]
fn curriculum_is_sorted_by_layer_then_tier() {
    let ds = build(6, 300);
    let order = ds.curriculum();
    for pair in order.windows(2) {
        let a = (pair[0].layer, pair[0].tier);
        let b = (pair[1].layer, pair[1].tier);
        assert!(a <= b, "curriculum out of order: {a:?} then {b:?}");
    }
}

#[test]
fn jsonl_round_trip_is_lossless_for_real_data() {
    let ds = build(7, 250);
    let mut buf = Vec::new();
    ds.to_jsonl(&mut buf).expect("serialize");
    let back = PyraNetDataset::from_jsonl(&buf[..]).expect("deserialize");
    assert_eq!(ds, back);
}

#[test]
fn shuffling_preserves_marginals_but_breaks_joints() {
    let ds = build(8, 300);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let bad = shuffle_labels(&ds, &mut rng);
    assert_eq!(bad.len(), ds.len());
    // marginal rank histogram unchanged
    let hist = |d: &PyraNetDataset| {
        let mut h = [0usize; 21];
        for s in d.iter() {
            h[s.rank.value() as usize] += 1;
        }
        h
    };
    assert_eq!(hist(&ds), hist(&bad));
    // but the (code → rank) joint is broken for a solid majority of rows
    let orig_rank: std::collections::HashMap<u64, u8> =
        ds.iter().map(|s| (s.id, s.rank.value())).collect();
    let moved = bad.iter().filter(|s| orig_rank[&s.id] != s.rank.value()).count();
    assert!(moved * 3 > ds.len(), "only {moved}/{} rows changed rank", ds.len());
}

#[test]
fn pipeline_is_deterministic_across_runs() {
    let a = build(9, 200);
    let b = build(9, 200);
    assert_eq!(a, b);
}

#[test]
fn larger_pools_curate_more_samples() {
    let small = build(10, 150);
    let large = build(10, 500);
    assert!(large.len() > small.len());
}

#[test]
fn l1_is_never_the_largest_compilable_layer_band() {
    // Paper Fig. 1-a: the apex (rank exactly 20) is far smaller than the
    // L2/L3 bulk. With style-varied corpora, rank-20-perfect files are rare.
    let ds = build(11, 600);
    let counts = ds.layer_counts();
    let l1 = counts[0];
    let bulk = counts[1].max(counts[2]);
    assert!(l1 <= bulk, "L1 ({l1}) should not out-size the L2/L3 bulk ({bulk}); counts {counts:?}");
}
