//! Incremental ≡ from-scratch: the content-addressed curation cache must
//! be invisible in the output. A warm `cache_dir` rebuild — after any
//! corpus mutation, at any thread count — produces a byte-identical
//! curated dataset to a cold, uncached run; corrupted artifacts degrade
//! to recompute, never to a wrong verdict.

use proptest::prelude::*;
use pyranet::corpus::{CorpusBuilder, RawSample};
use pyranet::pipeline::persist::{fnv1a64, format_checksum};
use pyranet::pipeline::Pipeline;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("pyranet-inc-{tag}-{}-{n}", std::process::id()))
}

/// FNV digest of the dataset's serialized JSONL bytes — the byte-identity
/// witness used throughout.
fn dataset_digest(ds: &pyranet::PyraNetDataset) -> String {
    let mut buf = Vec::new();
    ds.to_jsonl(&mut buf).expect("serialize dataset");
    format_checksum(fnv1a64(&buf))
}

/// A synthetic scraped pool (no LLM generation, for speed).
fn pool(seed: u64, files: usize) -> Vec<RawSample> {
    CorpusBuilder::new(seed).scraped_files(files).llm_generation(false).build().samples
}

/// Applies `mutations` random edits to the pool: source tweaks (comment
/// prepends, whitespace, body edits) that change content hashes without
/// any coordination with the cache.
fn mutate(pool: &mut [RawSample], seed: u64, mutations: usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for _ in 0..mutations {
        if pool.is_empty() {
            return;
        }
        let victim = &mut pool[rng.random_range(0..pool.len())];
        match rng.random_range(0..4u32) {
            0 => victim.source = format!("// edited\n{}", victim.source),
            1 => victim.source.push_str("\n// trailing note\n"),
            2 => victim.source = victim.source.replace("assign", "assign "),
            _ => victim.source = String::new(), // now empty/broken
        }
    }
}

#[test]
fn warm_rebuild_is_byte_identical_to_cold_across_mutations_and_threads() {
    let base = pool(41, 260);
    let mut mutated = base.clone();
    mutate(&mut mutated, 7, base.len() / 20);

    for generation in [&base, &mutated] {
        // Reference: cold, uncached run.
        let reference = Pipeline::new().run(generation.clone());
        let want = dataset_digest(&reference.dataset);
        let cache = temp_dir("warm");
        for pass in 0..2 {
            // pass 0 populates the store, pass 1 is fully warm.
            for threads in THREAD_COUNTS {
                let outcome = Pipeline::new()
                    .threads(threads)
                    .cache_dir(cache.clone())
                    .run(generation.clone());
                assert_eq!(
                    dataset_digest(&outcome.dataset),
                    want,
                    "pass {pass}, threads {threads}: cached output drifted"
                );
                assert_eq!(outcome.funnel, reference.funnel, "pass {pass}, threads {threads}");
            }
        }
        std::fs::remove_dir_all(&cache).ok();
    }
}

#[test]
fn mutated_then_reverted_corpus_reuses_the_original_artifacts() {
    let base = pool(43, 200);
    let cache = temp_dir("revert");
    let reference = Pipeline::new().run(base.clone());
    let want = dataset_digest(&reference.dataset);

    // Populate, mutate, then revert: the third run must match the first
    // byte-for-byte — the mutated generation's artifacts are unreachable
    // under the original content hashes.
    let run = |p: &Vec<RawSample>| Pipeline::new().cache_dir(cache.clone()).run(p.clone());
    assert_eq!(dataset_digest(&run(&base).dataset), want, "populate");
    let mut mutated = base.clone();
    mutate(&mut mutated, 11, 9);
    let mutated_outcome = run(&mutated);
    assert_eq!(
        dataset_digest(&mutated_outcome.dataset),
        dataset_digest(&Pipeline::new().run(mutated.clone()).dataset),
        "mutated cached run must match mutated cold run"
    );
    assert_eq!(dataset_digest(&run(&base).dataset), want, "reverted");
    std::fs::remove_dir_all(&cache).ok();
}

#[test]
fn corrupted_artifacts_degrade_to_recompute_never_a_wrong_verdict() {
    let base = pool(47, 150);
    let cache = temp_dir("corrupt");
    let reference = Pipeline::new().run(base.clone());
    let want = dataset_digest(&reference.dataset);
    assert_eq!(
        dataset_digest(&Pipeline::new().cache_dir(cache.clone()).run(base.clone()).dataset),
        want,
        "populate"
    );

    // Flip one byte in every stored artifact (header and payload lines
    // alike, position varies per file).
    let objects = cache.join("objects");
    let mut corrupted = 0usize;
    for bucket in std::fs::read_dir(&objects).expect("objects dir") {
        for entry in std::fs::read_dir(bucket.expect("bucket").path()).expect("bucket dir") {
            let path = entry.expect("entry").path();
            let mut bytes = std::fs::read(&path).expect("read artifact");
            let pos = (fnv1a64(path.as_os_str().as_encoded_bytes()) as usize) % bytes.len();
            bytes[pos] ^= 0x11;
            std::fs::write(&path, &bytes).expect("rewrite artifact");
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "the store must hold artifacts after a populate run");

    // Every lookup now fails verification; the build recomputes and still
    // produces the reference bytes — and heals the store for a third run.
    let outcome = Pipeline::new().cache_dir(cache.clone()).run(base.clone());
    assert_eq!(dataset_digest(&outcome.dataset), want, "corrupted store must recompute");
    assert_eq!(outcome.funnel, reference.funnel);
    let healed = Pipeline::new().cache_dir(cache.clone()).run(base.clone());
    assert_eq!(dataset_digest(&healed.dataset), want, "store heals after recompute");
    std::fs::remove_dir_all(&cache).ok();
}

#[test]
fn knob_changes_produce_the_same_output_as_uncached_runs() {
    // Changing the jaccard threshold between warm runs must re-run only
    // the join — and still match the uncached outcome for the new
    // threshold exactly.
    let base = pool(53, 180);
    let cache = temp_dir("knob");
    for threshold in [0.85, 0.7, 0.85] {
        let cached =
            Pipeline::new().jaccard_threshold(threshold).cache_dir(cache.clone()).run(base.clone());
        let cold = Pipeline::new().jaccard_threshold(threshold).run(base.clone());
        assert_eq!(
            dataset_digest(&cached.dataset),
            dataset_digest(&cold.dataset),
            "threshold {threshold}"
        );
        assert_eq!(cached.funnel, cold.funnel, "threshold {threshold}");
    }
    std::fs::remove_dir_all(&cache).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For a random corpus and a random mutation set, a warm `cache_dir`
    /// rebuild produces a byte-identical dataset (FNV digest) to a cold
    /// run, at 1/2/8 threads.
    #[test]
    fn prop_warm_rebuild_matches_cold(
        seed in 0u64..1_000,
        files in 60usize..160,
        mutation_seed in 0u64..1_000,
        mutations in 0usize..12,
    ) {
        let mut corpus = pool(seed, files);
        let cache = temp_dir("prop");
        // Populate from the unmutated corpus, then mutate: the warm run
        // sees a mix of hits (unchanged samples) and misses (edited ones).
        Pipeline::new().cache_dir(cache.clone()).run(corpus.clone());
        mutate(&mut corpus, mutation_seed, mutations);
        let want = dataset_digest(&Pipeline::new().run(corpus.clone()).dataset);
        for threads in THREAD_COUNTS {
            let outcome = Pipeline::new()
                .threads(threads)
                .cache_dir(cache.clone())
                .run(corpus.clone());
            prop_assert_eq!(
                dataset_digest(&outcome.dataset),
                want.clone(),
                "threads {}", threads
            );
        }
        std::fs::remove_dir_all(&cache).ok();
    }
}
