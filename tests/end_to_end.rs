//! End-to-end integration: corpus synthesis → curation → fine-tuning →
//! evaluation, checking the qualitative shapes the paper reports.

use pyranet::eval::EvalOptions;
use pyranet::experiment::{evaluate_model, Recipe};
use pyranet::train::TrainConfig;
use pyranet::{BuildOptions, Experiment, ExperimentOptions, ModelConfig, PyraNetBuilder};

fn small_experiment() -> Experiment {
    let built = PyraNetBuilder::new(BuildOptions {
        scraped_files: 300,
        seed: 77,
        ..BuildOptions::default()
    })
    .build();
    assert!(built.dataset.len() > 100, "need a usable dataset, got {}", built.dataset.len());
    Experiment::new(built.dataset)
}

fn quick_options() -> ExperimentOptions {
    ExperimentOptions {
        train: TrainConfig {
            epochs: 2,
            batch_size: 8,
            max_examples_per_phase: Some(60),
            ..TrainConfig::default()
        },
        eval: EvalOptions {
            samples_per_problem: 3,
            max_new_tokens: 90,
            temperature: 0.4,
            ..EvalOptions::default()
        },
    }
}

fn small_base() -> ModelConfig {
    ModelConfig {
        name: "codeLlama-7B-analog".into(),
        d_model: 32,
        n_layers: 2,
        n_heads: 2,
        d_ff: 64,
        max_seq: 256,
        learning_rate: 3e-3,
        seed: 0x7B00,
    }
}

#[test]
fn finetuning_beats_the_untrained_model() {
    let experiment = small_experiment();
    let opts = quick_options();
    // A *completely untrained* model (no pretraining at all).
    let raw = pyranet::model::TransformerLm::new(small_base(), experiment.tokenizer.vocab_size());
    let raw_eval = evaluate_model(&raw, &experiment.tokenizer, &opts.eval);

    let base = experiment.pretrain_base(&small_base(), &opts);
    let tuned = experiment.run(&base, Recipe::PyraNetDataset, &opts);
    let tuned_eval = evaluate_model(&tuned.model, &experiment.tokenizer, &opts.eval);

    // The untrained model produces word salad (syntax rate ~0%); even the
    // micro-budget fine-tune must beat it. The margin is small here because
    // the CI-sized model/budget is a fraction of the bench scale.
    assert!(
        tuned_eval.machine.syntax_rate() > raw_eval.machine.syntax_rate(),
        "tuned syntax {:.1}% vs raw {:.1}%",
        tuned_eval.machine.syntax_rate(),
        raw_eval.machine.syntax_rate()
    );
    assert!(
        tuned_eval.machine.pass_at(3) >= raw_eval.machine.pass_at(3),
        "tuned {:.1} vs raw {:.1}",
        tuned_eval.machine.pass_at(3),
        raw_eval.machine.pass_at(3)
    );
}

#[test]
fn machine_split_is_not_harder_than_human_for_tuned_models() {
    // Table I: every fine-tuned model scores higher on Machine than Human
    // (in-distribution phrasing is easier). Check the tuned model follows.
    let experiment = small_experiment();
    let opts = quick_options();
    let base = experiment.pretrain_base(&small_base(), &opts);
    let tuned = experiment.run(&base, Recipe::PyraNetDataset, &opts);
    let e = evaluate_model(&tuned.model, &experiment.tokenizer, &opts.eval);
    assert!(
        e.machine.pass_at(3) >= e.human.pass_at(3),
        "machine {:.1} vs human {:.1}",
        e.machine.pass_at(3),
        e.human.pass_at(3)
    );
}

#[test]
fn pyranet_architecture_trains_more_phases_than_sft() {
    let experiment = small_experiment();
    let opts = quick_options();
    let base = experiment.pretrain_base(&small_base(), &opts);
    let sft = experiment.run(&base, Recipe::PyraNetDataset, &opts);
    let pyra = experiment.run(&base, Recipe::PyraNetArchitecture, &opts);
    assert_eq!(sft.report.phases.len(), 1);
    assert!(pyra.report.phases.len() >= 6, "one phase per populated layer×tier group");
    // Weights follow the pyramid downwards.
    let first = pyra.report.phases.first().expect("phases");
    let last = pyra.report.phases.last().expect("phases");
    assert!(first.loss_weight > last.loss_weight);
}

#[test]
fn erroneous_dataset_degrades_training_signal() {
    // Table IV's mechanism: with shuffled labels the description no longer
    // predicts the code, so the conditional model cannot fit — its training
    // loss stays higher than on the correct dataset.
    let experiment = small_experiment();
    let opts = ExperimentOptions {
        train: TrainConfig {
            epochs: 2,
            max_examples_per_phase: Some(60),
            ..TrainConfig::default()
        },
        ..quick_options()
    };
    let base = experiment.pretrain_base(&small_base(), &opts);
    let good = experiment.run(&base, Recipe::PyraNetDataset, &opts);
    let bad = experiment.run(&base, Recipe::Erroneous, &opts);
    let good_last = good.report.phases[0].last_loss;
    let bad_last = bad.report.phases[0].last_loss;
    assert!(
        bad_last > good_last,
        "shuffled labels should be harder to fit: correct {good_last} vs erroneous {bad_last}"
    );
}
