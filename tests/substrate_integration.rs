//! Cross-crate substrate checks: every corpus generator's output must
//! survive the whole front end (parse, check, lint, simulate) and the
//! golden testbench must accept its own designs under any style.

use pyranet::corpus::families::DesignFamily;
use pyranet::corpus::gen::generate;
use pyranet::corpus::style::{NamingScheme, StyleOptions};
use pyranet::eval::testbench::{check_functional, golden_source};
use pyranet::eval::{human_split, machine_split};
use pyranet::verilog::{check_source, parse};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn every_eval_problem_has_a_self_consistent_golden_model() {
    for p in machine_split().iter().chain(human_split().iter()) {
        let golden = golden_source(&p.family);
        assert!(check_source(&golden).is_clean(), "{}: golden not clean", p.id);
        let v = check_functional(&golden, &p.family);
        assert!(v.is_pass(), "{}: golden fails its own testbench: {v:?}", p.id);
    }
}

#[test]
fn catalog_designs_pass_their_family_testbench_under_every_naming_scheme() {
    // A correct implementation must pass no matter how its ports are named
    // (VerilogEval does not prescribe internal naming either).
    let mut rng = ChaCha8Rng::seed_from_u64(0xCAFE);
    for p in machine_split() {
        for scheme in [NamingScheme::Terse, NamingScheme::Descriptive, NamingScheme::Prefixed] {
            let style = StyleOptions { naming: scheme, ..StyleOptions::clean() };
            let d = generate(&p.family, &style, &mut rng);
            let v = check_functional(&d.source, &p.family);
            assert!(v.is_pass(), "{} under {scheme:?}: {v:?}\n{}", p.id, d.source);
        }
    }
}

#[test]
fn sloppy_but_correct_designs_still_pass_functionally() {
    // Style sloppiness must cost rank, not functional correctness — the
    // whole premise of quality tiers is that lower tiers still *work*.
    let mut rng = ChaCha8Rng::seed_from_u64(0xFADE);
    let families = [
        DesignFamily::HalfAdder,
        DesignFamily::BehavioralAdder { width: 8 },
        DesignFamily::Mux { sel_width: 2, width: 8 },
        DesignFamily::Parity { width: 8, even: true },
    ];
    for family in families {
        let style = StyleOptions::sampled(0.9, &mut rng);
        let d = generate(&family, &style, &mut rng);
        let v = check_functional(&d.source, &family);
        assert!(v.is_pass(), "{family:?}: {v:?}\n{}", d.source);
    }
}

#[test]
fn pretty_printed_catalog_reparses_identically() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBEEF);
    for family in DesignFamily::catalog() {
        let d = generate(&family, &StyleOptions::clean(), &mut rng);
        let mut original = parse(&d.source).expect("parse original");
        let printed = pyranet::verilog::pretty::print_file(&original);
        let mut reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("{family:?}: reprint failed to parse: {e}\n{printed}"));
        original.strip_lines();
        reparsed.strip_lines();
        assert_eq!(original, reparsed, "{family:?}");
    }
}

#[test]
fn tokenizer_round_trip_preserves_parseability_for_catalog() {
    // Generation emits token streams that are decoded with single spaces;
    // the decoded text must still parse for every clean catalog design.
    let mut rng = ChaCha8Rng::seed_from_u64(0xDEED);
    let designs: Vec<_> = DesignFamily::catalog()
        .into_iter()
        .map(|f| generate(&f, &StyleOptions::clean(), &mut rng))
        .collect();
    let tk = pyranet::model::Tokenizer::build(designs.iter().map(|d| d.source.as_str()), 1);
    for d in &designs {
        let ids = tk.encode(&d.source);
        let text = tk.decode(&ids);
        assert!(parse(&text).is_ok(), "{:?}: decoded text does not parse:\n{text}", d.family);
    }
}

#[test]
fn curated_dataset_samples_all_reparse() {
    let built = pyranet::PyraNetBuilder::new(pyranet::BuildOptions {
        scraped_files: 200,
        seed: 4,
        llm_generation: false,
        ..pyranet::BuildOptions::default()
    })
    .build();
    for s in built.dataset.iter() {
        assert!(
            check_source(&s.source).is_compilable(),
            "curated sample {} does not compile",
            s.id
        );
    }
}
