//! Property-based fuzzing across the substrate boundaries: random
//! parameters into the generators, random stimulus into paired
//! simulations, random pools into the pipeline.

use proptest::prelude::*;
use pyranet::corpus::families::DesignFamily;
use pyranet::corpus::gen::generate;
use pyranet::corpus::style::StyleOptions;
use pyranet::verilog::{check_source, parse, Simulator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any parameterisation of the width-generic families yields clean,
    /// parseable, checkable Verilog.
    #[test]
    fn arbitrary_widths_generate_clean_code(
        width in 2u32..12,
        seed in 0u64..1_000,
    ) {
        let families = [
            DesignFamily::BehavioralAdder { width },
            DesignFamily::Comparator { width },
            DesignFamily::Counter { width },
            DesignFamily::ShiftRegister { width },
            DesignFamily::Parity { width, even: seed % 2 == 0 },
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for family in families {
            let d = generate(&family, &StyleOptions::clean(), &mut rng);
            prop_assert!(check_source(&d.source).is_clean(), "{family:?}\n{}", d.source);
        }
    }

    /// The behavioural adder simulates exactly like Rust integer addition
    /// for every width and operand pair.
    #[test]
    fn adder_matches_rust_arithmetic(
        width in 2u32..16,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        cin in 0u64..=1,
    ) {
        let mask = (1u64 << width) - 1;
        let (a, b) = (a & mask, b & mask);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d = generate(
            &DesignFamily::BehavioralAdder { width },
            &StyleOptions::clean(),
            &mut rng,
        );
        let mut sim = Simulator::from_source(&d.source, &format!("adder_{width}"))
            .expect("build adder");
        sim.set("a", a).expect("set");
        sim.set("b", b).expect("set");
        sim.set("cin", cin).expect("set");
        let sum = sim.get("sum").expect("get").as_u64();
        let cout = sim.get("cout").expect("get").as_u64();
        prop_assert_eq!((cout << width) | sum, a + b + cin);
    }

    /// The comparator agrees with Rust's ordering for all operands.
    #[test]
    fn comparator_matches_rust_ordering(
        width in 2u32..16,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
    ) {
        let mask = (1u64 << width) - 1;
        let (a, b) = (a & mask, b & mask);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let d = generate(&DesignFamily::Comparator { width }, &StyleOptions::clean(), &mut rng);
        let mut sim = Simulator::from_source(&d.source, &format!("comparator_{width}"))
            .expect("build comparator");
        sim.set("a", a).expect("set");
        sim.set("b", b).expect("set");
        prop_assert_eq!(sim.get("lt").expect("get").as_u64(), u64::from(a < b));
        prop_assert_eq!(sim.get("eq").expect("get").as_u64(), u64::from(a == b));
        prop_assert_eq!(sim.get("gt").expect("get").as_u64(), u64::from(a > b));
    }

    /// A counter clocked n times from reset reads n mod 2^width.
    #[test]
    fn counter_counts_any_number_of_cycles(
        width in 2u32..10,
        cycles in 0usize..40,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let d = generate(&DesignFamily::Counter { width }, &StyleOptions::clean(), &mut rng);
        let mut sim = Simulator::from_source(&d.source, &format!("counter_{width}"))
            .expect("build counter");
        sim.set("rst", 1).expect("set");
        sim.clock("clk").expect("clock");
        sim.set("rst", 0).expect("set");
        sim.set("en", 1).expect("set");
        for _ in 0..cycles {
            sim.clock("clk").expect("clock");
        }
        let mask = (1u64 << width) - 1;
        prop_assert_eq!(sim.get("count").expect("get").as_u64(), cycles as u64 & mask);
    }

    /// Pretty-print round trip holds for every generated design at any
    /// seed/style combination.
    #[test]
    fn print_parse_roundtrip_under_random_styles(
        seed in 0u64..500,
        sloppiness in 0.0f64..1.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let catalog = DesignFamily::catalog();
        let family = &catalog[(seed as usize) % catalog.len()];
        let style = StyleOptions::sampled(sloppiness, &mut rng);
        let d = generate(family, &style, &mut rng);
        let mut original = parse(&d.source).expect("parse");
        let printed = pyranet::verilog::pretty::print_file(&original);
        let mut reparsed = parse(&printed).expect("reparse");
        original.strip_lines();
        reparsed.strip_lines();
        prop_assert_eq!(original, reparsed);
    }

    /// The ranking judge is deterministic and bounded for arbitrary
    /// generated samples.
    #[test]
    fn rank_is_deterministic_and_bounded(seed in 0u64..500, sloppiness in 0.0f64..1.0) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let catalog = DesignFamily::catalog();
        let family = &catalog[(seed as usize) % catalog.len()];
        let style = StyleOptions::sampled(sloppiness, &mut rng);
        let d = generate(family, &style, &mut rng);
        let module = pyranet::verilog::parse_module(&d.source).expect("parse");
        let r1 = pyranet::pipeline::rank::rank_sample(&module, &d.source);
        let r2 = pyranet::pipeline::rank::rank_sample(&module, &d.source);
        prop_assert_eq!(r1, r2);
        prop_assert!(r1.value() >= 1 && r1.value() <= 20);
    }

    /// The compiled bytecode VM scores every corpus-generated design
    /// exactly like the event-driven reference interpreter under random
    /// stimulus — same outputs bit for bit (value and width), or the same
    /// error string at the same step.
    #[test]
    fn sim_backends_agree_on_corpus_designs(
        seed in 0u64..500,
        sloppiness in 0.0f64..1.0,
        steps in 1usize..24,
    ) {
        use pyranet::verilog::{SimDesign, SimMode};
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let catalog = DesignFamily::catalog();
        let family = &catalog[(seed as usize) % catalog.len()];
        let style = StyleOptions::sampled(sloppiness, &mut rng);
        let d = generate(family, &style, &mut rng);
        let top = d.module.name.clone();
        let build =
            |mode| SimDesign::build(&d.source, &top, mode).and_then(|des| des.instantiate());
        match (build(SimMode::Compiled), build(SimMode::Reference)) {
            (Err(c), Err(r)) => prop_assert_eq!(c.to_string(), r.to_string()),
            (Ok(c), Err(r)) => prop_assert!(false, "compiled built, reference failed: {r} ({:?})", c.outputs()),
            (Err(c), Ok(_)) => prop_assert!(false, "reference built, compiled failed: {c}"),
            (Ok(mut c), Ok(mut r)) => {
                let inputs = r.inputs().to_vec();
                let outputs = r.outputs().to_vec();
                let clock = d.port("clock").map(str::to_owned);
                'drive: for step in 0..steps {
                    for name in &inputs {
                        if Some(name.as_str()) == clock.as_deref() {
                            continue;
                        }
                        let v = rng.random::<u64>();
                        let cr = c.set(name, v).map_err(|e| e.to_string());
                        let rr = r.set(name, v).map_err(|e| e.to_string());
                        prop_assert_eq!(&cr, &rr, "set {} at step {}", name, step);
                        if cr.is_err() {
                            break 'drive;
                        }
                    }
                    if let Some(clk) = &clock {
                        let cr = c.clock(clk).map_err(|e| e.to_string());
                        let rr = r.clock(clk).map_err(|e| e.to_string());
                        prop_assert_eq!(&cr, &rr, "clock at step {}", step);
                        if cr.is_err() {
                            break 'drive;
                        }
                    }
                    for name in &outputs {
                        let cv = c.get(name).expect("compiled get");
                        let rv = r.get(name).expect("reference get");
                        prop_assert_eq!(&cv, &rv, "output {} at step {}", name, step);
                    }
                }
            }
        }
    }

    /// MinHash/LSH dedup never removes both members down to zero and never
    /// keeps exact duplicates at threshold < 1.
    #[test]
    fn dedup_properties_on_random_pools(seed in 0u64..200, n in 2usize..30) {
        use pyranet::corpus::{Origin, RawSample, TruthLabel};
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let catalog = DesignFamily::catalog();
        let mut pool = Vec::new();
        for i in 0..n {
            let family = &catalog[(seed as usize + i) % 7];
            let d = generate(family, &StyleOptions::clean(), &mut rng);
            pool.push(RawSample::new(i as u64, d.source, "", Origin::Scraped, TruthLabel::Clean));
        }
        // duplicate the first entry verbatim
        let dup = RawSample::new(999, pool[0].source.clone(), "", Origin::Scraped, TruthLabel::Duplicate);
        pool.push(dup);
        let out = pyranet::pipeline::dedup::dedup(pool, 0.95);
        prop_assert!(!out.is_empty());
        prop_assert!(!out.iter().any(|s| s.id == 999), "verbatim duplicate must be removed");
    }
}
