//! Thread-count invariance of the parallelised hot paths.
//!
//! The `pyranet-exec` contract is that `par_map` preserves input order and
//! that every RNG-consuming work item derives its stream from stable keys,
//! never from execution order. These tests pin that contract end to end:
//! the corpus pool, the curated dataset, and the evaluation pass@k must be
//! byte-identical whether the work runs on one thread or many.

use pyranet::corpus::CorpusBuilder;
use pyranet::eval::{evaluate, machine_split, EvalOptions};
use pyranet::model::{ModelConfig, Tokenizer, TransformerLm};
use pyranet::pipeline::Pipeline;
use pyranet::{BuildOptions, PyraNetBuilder};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn corpus_pool_is_identical_at_any_thread_count() {
    let build = |threads| {
        CorpusBuilder::new(11).scraped_files(300).llm_generation(true).threads(threads).build()
    };
    let reference = build(1);
    for threads in THREAD_COUNTS {
        let pool = build(threads);
        assert_eq!(pool.samples, reference.samples, "threads = {threads}");
        assert_eq!(pool.gen_funnel, reference.gen_funnel, "threads = {threads}");
    }
}

#[test]
fn pipeline_outcome_is_identical_at_any_thread_count() {
    let pool = CorpusBuilder::new(12).scraped_files(400).llm_generation(false).build();
    let run = |threads| Pipeline::new().threads(threads).run(pool.samples.clone());
    let reference = run(1);
    for threads in THREAD_COUNTS {
        let outcome = run(threads);
        assert_eq!(outcome.dataset, reference.dataset, "threads = {threads}");
        assert_eq!(outcome.funnel, reference.funnel, "threads = {threads}");
    }
}

#[test]
fn full_build_is_identical_at_any_thread_count() {
    let build = |threads| {
        PyraNetBuilder::new(BuildOptions {
            scraped_files: 250,
            seed: 13,
            llm_generation: false,
            threads,
            ..BuildOptions::default()
        })
        .build()
    };
    let reference = build(1);
    for threads in THREAD_COUNTS {
        let built = build(threads);
        assert_eq!(built.dataset, reference.dataset, "threads = {threads}");
        assert_eq!(built.funnel, reference.funnel, "threads = {threads}");
    }
}

#[test]
fn metrics_recording_does_not_perturb_outputs() {
    // The observability layer is passive: with the global registry
    // recording every stage, outputs stay byte-identical at any thread
    // count while the counters demonstrably advance. Counters are
    // compared as *deltas with slack* because the registry is
    // process-global and other tests in this binary record concurrently.
    use pyranet::obs::{global, SnapshotValue};

    let hist_count = |name: &str| match global().snapshot().get(name) {
        Some(SnapshotValue::Histogram { count, .. }) => *count,
        _ => 0,
    };
    let collected_before = global().snapshot().counter("pipeline.funnel.collected").unwrap_or(0);
    let runs_before = hist_count("pipeline.run.seconds");

    let build = |threads| {
        PyraNetBuilder::new(BuildOptions {
            scraped_files: 220,
            seed: 29,
            llm_generation: false,
            threads,
            ..BuildOptions::default()
        })
        .build()
    };
    let reference = build(1);
    for threads in THREAD_COUNTS {
        let built = build(threads);
        assert_eq!(built.dataset, reference.dataset, "threads = {threads}");
        assert_eq!(built.funnel, reference.funnel, "threads = {threads}");
    }

    let n_runs = 1 + THREAD_COUNTS.len() as u64;
    let collected_after = global().snapshot().counter("pipeline.funnel.collected").unwrap_or(0);
    assert!(
        collected_after >= collected_before + n_runs * 220,
        "funnel counters must record every run: {collected_before} -> {collected_after}"
    );
    assert!(hist_count("pipeline.run.seconds") >= runs_before + n_runs, "span must time each run");
}

#[test]
fn sharded_export_is_identical_at_any_thread_count() {
    use pyranet::pipeline::persist::{fnv1a64, format_checksum};
    use pyranet::pipeline::ShardSpec;

    let ds = PyraNetBuilder::new(BuildOptions {
        scraped_files: 250,
        seed: 13,
        llm_generation: false,
        ..BuildOptions::default()
    })
    .build()
    .dataset;

    for (tag, spec) in [("layer", ShardSpec::PerLayer), ("fixed", ShardSpec::MaxSamples(64))] {
        let export = |threads: usize| {
            let dir = std::env::temp_dir()
                .join(format!("pyranet-determinism-{tag}-{threads}-{}", std::process::id()));
            let exec = pyranet_exec::ExecConfig::new().threads(threads);
            let manifest = ds.to_shards(&dir, spec, &exec).expect("export");
            let files: Vec<(String, Vec<u8>)> =
                std::iter::once((
                    "manifest.json".to_owned(),
                    std::fs::read(dir.join("manifest.json")).expect("read manifest"),
                ))
                .chain(manifest.shards.iter().map(|s| {
                    (s.file.clone(), std::fs::read(dir.join(&s.file)).expect("read shard"))
                }))
                .collect();
            let back = pyranet::PyraNetDataset::from_shards(&dir, &exec).expect("import");
            std::fs::remove_dir_all(&dir).ok();
            (files, back)
        };
        let (reference_files, reference_back) = export(1);
        for threads in THREAD_COUNTS {
            let (files, back) = export(threads);
            assert_eq!(files, reference_files, "{tag} shards, threads = {threads}");
            assert_eq!(back, reference_back, "{tag} import, threads = {threads}");
        }
        if let ShardSpec::MaxSamples(_) = spec {
            assert_eq!(reference_back, ds, "fixed-size import is bit-identical to the source");
        }

        // Digest pin: the exact bytes of the sharded export (file names
        // included) for this builder seed. Catches any unintended change
        // to the serialization format, shard naming, or shard assignment.
        // Re-pinned when manifest format_version 2 added the funnel and
        // provenance fields.
        let mut digest_input = Vec::new();
        for (name, bytes) in &reference_files {
            digest_input.extend_from_slice(name.as_bytes());
            digest_input.extend_from_slice(bytes);
        }
        let digest = format_checksum(fnv1a64(&digest_input));
        let expected = match tag {
            "layer" => "fc18aa14fee70ccd",
            _ => "02ccffbe4c3e87a5",
        };
        assert_eq!(digest, expected, "{tag} export digest drifted");
    }
}

fn tiny_model() -> (TransformerLm, Tokenizer) {
    let tk = Tokenizer::build(
        [
            "module m ( input a , input b , output y ) ; assign y = a & b ; endmodule",
            "module c ( input clk , output reg [ 3 : 0 ] q ) ; always @ ( posedge clk ) q <= q + 1 ; endmodule",
        ]
        .iter()
        .copied(),
        1,
    );
    let cfg = ModelConfig {
        name: "determinism-tiny".into(),
        d_model: 16,
        n_layers: 1,
        n_heads: 2,
        d_ff: 32,
        max_seq: 64,
        learning_rate: 1e-3,
        seed: 7,
    };
    let lm = TransformerLm::new(cfg, tk.vocab_size());
    (lm, tk)
}

#[test]
fn eval_pass_at_k_is_identical_at_any_thread_count() {
    let (lm, tk) = tiny_model();
    let problems: Vec<_> = machine_split().into_iter().take(4).collect();
    let run = |threads| {
        let opts = EvalOptions {
            samples_per_problem: 3,
            max_new_tokens: 16,
            threads,
            ..EvalOptions::default()
        };
        evaluate(&lm, &tk, &problems, &opts)
    };
    let reference = run(1);
    for threads in THREAD_COUNTS {
        let result = run(threads);
        assert_eq!(result, reference, "threads = {threads}");
    }
}

#[test]
fn batched_sft_training_is_identical_at_any_thread_count() {
    // Per-example gradients are computed in parallel but folded in example
    // order, so the trained weights must be byte-identical at any thread
    // count (`TrainConfig::threads` only changes wall time, never output).
    let pool = CorpusBuilder::new(14).scraped_files(150).llm_generation(false).build();
    let ds = Pipeline::new().run(pool.samples).dataset;
    let tk = pyranet::train::build_tokenizer(ds.iter());
    let cfg = ModelConfig {
        name: "determinism-train".into(),
        d_model: 16,
        n_layers: 1,
        n_heads: 2,
        d_ff: 32,
        max_seq: 128,
        learning_rate: 3e-3,
        seed: 7,
    };
    let run = |threads| {
        let mut lm = TransformerLm::new(cfg.clone(), tk.vocab_size());
        let tcfg = pyranet::TrainConfig {
            epochs: 2,
            batch_size: 8,
            max_examples_per_phase: Some(16),
            threads,
            ..pyranet::TrainConfig::default()
        };
        let report = pyranet::train::SftTrainer::run(&mut lm, &tk, &ds, &tcfg);
        (lm, report)
    };
    let (ref_lm, ref_report) = run(1);
    for threads in THREAD_COUNTS {
        let (lm, report) = run(threads);
        assert_eq!(
            report.phases[0].last_loss.to_bits(),
            ref_report.phases[0].last_loss.to_bits(),
            "threads = {threads}"
        );
        assert_eq!(lm, ref_lm, "threads = {threads}");
    }
}

#[test]
fn eval_engines_are_byte_identical_at_any_thread_count() {
    // The acceptance pin for the decode engine: the batched session path
    // (shared prefill + lock-step decode) and the retained per-sample
    // legacy loop must produce *byte-identical* serialized EvalResults at
    // every thread count. Batching is a throughput knob, never a semantic
    // one.
    use pyranet::eval::EngineMode;
    let (lm, tk) = tiny_model();
    let problems: Vec<_> = machine_split().into_iter().take(4).collect();
    let run = |engine, threads| {
        let opts = EvalOptions {
            samples_per_problem: 3,
            max_new_tokens: 16,
            threads,
            engine,
            ..EvalOptions::default()
        };
        serde_json::to_string(&evaluate(&lm, &tk, &problems, &opts)).expect("serialize EvalResult")
    };
    let reference = run(EngineMode::PerSample, 1);
    for engine in [EngineMode::Session, EngineMode::PerSample] {
        for threads in THREAD_COUNTS {
            assert_eq!(run(engine, threads), reference, "engine = {engine:?}, threads = {threads}");
        }
    }
}

#[test]
fn simd_kernel_eval_is_byte_identical_to_blocked() {
    // The acceptance pin for the vectorized kernel family: a `simd`
    // session decodes through the order-preserving forward matmul plus
    // scalar attention/layer-norm sweeps, so pass@k results must be
    // *byte-identical* to the blocked (and reference) families at every
    // thread count. The lane-split trades live only on the training
    // backward path, never on decode.
    use pyranet::model::KernelMode;
    let (lm, tk) = tiny_model();
    let problems: Vec<_> = machine_split().into_iter().take(4).collect();
    let run = |kernel, threads| {
        let opts = EvalOptions {
            samples_per_problem: 3,
            max_new_tokens: 16,
            threads,
            kernel,
            ..EvalOptions::default()
        };
        serde_json::to_string(&evaluate(&lm, &tk, &problems, &opts)).expect("serialize EvalResult")
    };
    let reference = run(KernelMode::Blocked, 1);
    for kernel in [KernelMode::Simd, KernelMode::Reference, KernelMode::Blocked] {
        for threads in THREAD_COUNTS {
            assert_eq!(run(kernel, threads), reference, "kernel = {kernel}, threads = {threads}");
        }
    }
}

#[test]
fn sim_backends_are_byte_identical_at_any_thread_count() {
    // The acceptance pin for the compiled simulation VM: scoring with the
    // bytecode backend and with the event-driven reference interpreter
    // must produce *byte-identical* serialized EvalResults at every thread
    // count. `SimMode` is a throughput knob, never a semantic one.
    use pyranet::eval::SimMode;
    let (lm, tk) = tiny_model();
    let problems: Vec<_> = machine_split().into_iter().take(4).collect();
    let run = |sim, threads| {
        let opts = EvalOptions {
            samples_per_problem: 3,
            max_new_tokens: 16,
            threads,
            sim,
            ..EvalOptions::default()
        };
        serde_json::to_string(&evaluate(&lm, &tk, &problems, &opts)).expect("serialize EvalResult")
    };
    let reference = run(SimMode::Reference, 1);
    for sim in [SimMode::Compiled, SimMode::Reference] {
        for threads in THREAD_COUNTS {
            assert_eq!(run(sim, threads), reference, "sim = {sim}, threads = {threads}");
        }
    }
}

#[test]
fn equivalence_check_eval_is_byte_identical_at_any_thread_count_and_order() {
    // The acceptance pin for equivalence-mode scoring: the exhaustive
    // sweep is an ascending counter over the input bits (no RNG at all)
    // and the fallback path reuses the seeded stimulus stream, so
    // serialized EvalResults must be *byte-identical* at every thread
    // count, and shuffled problem arrival must only permute the
    // per-problem rows.
    use pyranet::eval::{CheckMode, Problem};
    let (lm, tk) = tiny_model();
    let problems: Vec<_> = machine_split().into_iter().take(4).collect();
    let run = |problems: &[Problem], threads| {
        let opts = EvalOptions {
            samples_per_problem: 3,
            max_new_tokens: 16,
            threads,
            check: CheckMode::Equivalence,
            ..EvalOptions::default()
        };
        evaluate(&lm, &tk, problems, &opts)
    };
    let reference = run(&problems, 1);
    let reference_bytes = serde_json::to_string(&reference).expect("serialize EvalResult");
    for threads in THREAD_COUNTS {
        let bytes = serde_json::to_string(&run(&problems, threads)).expect("serialize EvalResult");
        assert_eq!(bytes, reference_bytes, "threads = {threads}");
    }
    let mut reversed = problems.clone();
    reversed.reverse();
    let backward = run(&reversed, 8);
    let mut forward_sorted = reference.problems.clone();
    forward_sorted.sort_by(|a, b| a.id.cmp(&b.id));
    let mut backward_sorted = backward.problems.clone();
    backward_sorted.sort_by(|a, b| a.id.cmp(&b.id));
    assert_eq!(forward_sorted, backward_sorted, "arrival order must only permute rows");
}

#[test]
fn eval_is_independent_of_problem_order() {
    // Each problem's sampling stream is keyed by (seed, problem id), so
    // shuffling the split must only permute the per-problem results.
    let (lm, tk) = tiny_model();
    let problems: Vec<_> = machine_split().into_iter().take(4).collect();
    let mut reversed = problems.clone();
    reversed.reverse();
    let opts = EvalOptions { samples_per_problem: 2, max_new_tokens: 16, ..EvalOptions::default() };
    let forward = evaluate(&lm, &tk, &problems, &opts);
    let backward = evaluate(&lm, &tk, &reversed, &opts);
    let mut forward_sorted = forward.problems.clone();
    forward_sorted.sort_by(|a, b| a.id.cmp(&b.id));
    let mut backward_sorted = backward.problems.clone();
    backward_sorted.sort_by(|a, b| a.id.cmp(&b.id));
    assert_eq!(forward_sorted, backward_sorted);
}

#[test]
fn serve_completions_are_identical_across_arrival_orders_batches_and_threads() {
    // The serve engine's contract: each request's sampler is keyed by
    // (seed, request id) and the lock-step forward is row-independent,
    // so a completion is a pure function of the request — whatever
    // arrival order the queue saw, however wide the continuous batch
    // ran, and however many threads tokenized the stream.
    use pyranet::serve::{replay, ServeConfig, ServeRequest, ServeResponse};

    let (lm, tk) = tiny_model();
    let requests: Vec<ServeRequest> = (0..12)
        .map(|i| ServeRequest {
            id: format!("req-{i}"),
            prompt: if i % 3 == 0 { "binary counter".into() } else { format!("mux {i}") },
            max_new_tokens: 4 + (i * 7) % 12,
            temperature: 0.3 + 0.2 * (i % 3) as f32,
        })
        .collect();
    let by_id = |mut rs: Vec<ServeResponse>| {
        rs.sort_by(|a, b| a.id.cmp(&b.id));
        rs
    };
    let cfg = |max_batch, threads| ServeConfig { max_batch, threads, ..ServeConfig::default() };

    let reference = by_id(replay(&lm, &tk, cfg(1, 1), &requests).responses);
    assert_eq!(reference.len(), requests.len());

    // Three shuffled arrival orders: reversed, interleaved (evens then
    // odds), and rotated — all deterministic permutations.
    let mut reversed = requests.clone();
    reversed.reverse();
    let interleaved: Vec<ServeRequest> = (0..requests.len())
        .step_by(2)
        .chain((1..requests.len()).step_by(2))
        .map(|i| requests[i].clone())
        .collect();
    let mut rotated = requests.clone();
    rotated.rotate_left(5);

    for order in [&requests, &reversed, &interleaved, &rotated] {
        for max_batch in [1usize, 2, 8] {
            for threads in THREAD_COUNTS {
                let got = by_id(replay(&lm, &tk, cfg(max_batch, threads), order).responses);
                assert_eq!(got, reference, "max_batch = {max_batch}, threads = {threads}");
            }
        }
    }
}
