//! # pyranet-eval
//!
//! The VerilogEval-substitute benchmark (paper §IV: "we employed the
//! VerilogEval platform to assess the performance of the models across all
//! experiments").
//!
//! VerilogEval scores a model by sampling `n` completions per problem,
//! simulating each against a golden testbench, and reporting the unbiased
//! pass@k estimator. This crate rebuilds that loop on our substrate:
//!
//! * [`problems`] — two splits mirroring VerilogEval-Machine (machine-
//!   generated descriptions) and VerilogEval-Human (hand-written
//!   descriptions of the same circuits, phrased independently);
//! * [`testbench`] — functional equivalence via the `pyranet-verilog`
//!   simulator: the candidate and the golden reference are driven with the
//!   same stimulus (combinational sweeps or clocked sequences) and their
//!   outputs compared positionally;
//! * [`passk`] — the unbiased pass@k estimator
//!   `1 − C(n−c, k)/C(n, k)` (Chen et al., 2021 — the estimator VerilogEval
//!   uses);
//! * [`harness`] — the sampling loop: prompt → n generations → syntax +
//!   functional check → pass@k rows.

pub mod harness;
pub mod passk;
pub mod problems;
pub mod testbench;

pub use harness::{evaluate, sample_temperature, CheckMode, EngineMode, EvalOptions, EvalResult};
pub use passk::pass_at_k;
pub use problems::{human_split, machine_split, Problem, Split};
pub use pyranet_verilog::SimMode;
pub use testbench::{
    check_functional, check_functional_with, CheckStrategy, FunctionalVerdict, ProblemBench,
    SimStats, DEFAULT_MAX_EQ_INPUTS,
};
