//! The unbiased pass@k estimator (Chen et al. 2021, used by VerilogEval).

/// Unbiased pass@k: `1 − C(n−c, k)/C(n, k)` where `n` samples were drawn
/// and `c` passed.
///
/// # Panics
///
/// Panics when `c > n` or `k == 0`.
///
/// ```
/// use pyranet_eval::pass_at_k;
/// assert_eq!(pass_at_k(10, 10, 1), 1.0);
/// assert_eq!(pass_at_k(10, 0, 5), 0.0);
/// assert!((pass_at_k(10, 1, 1) - 0.1).abs() < 1e-12);
/// ```
pub fn pass_at_k(n: u32, c: u32, k: u32) -> f64 {
    assert!(c <= n, "passes {c} exceed samples {n}");
    assert!(k >= 1, "k must be positive");
    if n == 0 {
        return 0.0;
    }
    let k = k.min(n);
    if c == 0 {
        return 0.0;
    }
    if n - c < k {
        return 1.0;
    }
    // product form of 1 - C(n-c,k)/C(n,k): prod_{i=n-c+1-k+? } … use the
    // standard stable loop: 1 - prod_{i=n-c-k+1..=n-c} i / prod_{i=n-k+1..=n} i
    let mut ratio = 1.0f64;
    for i in 0..k {
        ratio *= f64::from(n - c - i) / f64::from(n - i);
    }
    1.0 - ratio
}

/// Brute-force reference: enumerate all C(n,k) subsets (tiny n only; used
/// by tests and the property suite).
pub fn pass_at_k_bruteforce(n: u32, c: u32, k: u32) -> f64 {
    assert!(n <= 20, "bruteforce is exponential");
    let k = k.min(n) as usize;
    let n = n as usize;
    let c = c as usize;
    // items 0..c pass
    let mut subsets_total = 0u64;
    let mut subsets_hit = 0u64;
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        subsets_total += 1;
        if idx.iter().any(|&i| i < c) {
            subsets_hit += 1;
        }
        // next combination
        let mut i = k;
        loop {
            if i == 0 {
                return subsets_hit as f64 / subsets_total as f64;
            }
            i -= 1;
            if idx[i] != i + n - k {
                idx[i] += 1;
                for j in i + 1..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn boundary_cases() {
        assert_eq!(pass_at_k(10, 0, 1), 0.0);
        assert_eq!(pass_at_k(10, 10, 1), 1.0);
        assert_eq!(pass_at_k(1, 1, 1), 1.0);
        assert_eq!(pass_at_k(0, 0, 5), 0.0);
        // k > n clamps to n
        assert_eq!(pass_at_k(3, 1, 10), 1.0);
    }

    #[test]
    fn known_values() {
        assert!((pass_at_k(10, 1, 1) - 0.1).abs() < 1e-12);
        assert!((pass_at_k(10, 5, 1) - 0.5).abs() < 1e-12);
        // 1 - C(9,5)/C(10,5) = 1 - 126/252 = 0.5
        assert!((pass_at_k(10, 1, 5) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "passes 5 exceed samples 3")]
    fn c_above_n_panics() {
        let _ = pass_at_k(3, 5, 1);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = pass_at_k(3, 1, 0);
    }

    proptest! {
        #[test]
        fn matches_bruteforce(n in 1u32..12, c_frac in 0u32..=100, k in 1u32..8) {
            let c = (n * c_frac / 100).min(n);
            let fast = pass_at_k(n, c, k);
            let slow = pass_at_k_bruteforce(n, c, k);
            prop_assert!((fast - slow).abs() < 1e-9, "n={n} c={c} k={k}: {fast} vs {slow}");
        }

        #[test]
        fn monotone_in_c(n in 2u32..15, k in 1u32..6) {
            let mut prev = -1.0;
            for c in 0..=n {
                let v = pass_at_k(n, c, k);
                prop_assert!(v >= prev);
                prev = v;
            }
        }

        #[test]
        fn monotone_in_k(n in 2u32..15, c_frac in 0u32..=100) {
            let c = (n * c_frac / 100).min(n);
            let mut prev = -1.0;
            for k in 1..=n {
                let v = pass_at_k(n, c, k);
                prop_assert!(v >= prev, "k={k}");
                prev = v;
            }
        }

        #[test]
        fn bounded_zero_one(n in 1u32..30, c_frac in 0u32..=100, k in 1u32..10) {
            let c = (n * c_frac / 100).min(n);
            let v = pass_at_k(n, c, k);
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }
}
