//! Benchmark problem sets.
//!
//! VerilogEval has two splits: *Machine* (GPT-generated descriptions of
//! HDLBits problems) and *Human* (the original human-written ones). Our
//! splits mirror that: the Machine split uses the corpus generators' own
//! template descriptions (in-distribution for a model fine-tuned on the
//! corpus), the Human split describes the same circuit families in
//! independently-written prose (out-of-distribution phrasing, which is why
//! Human scores are uniformly lower in Table I).

use pyranet_corpus::families::DesignFamily;
use serde::{Deserialize, Serialize};

/// Benchmark split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Split {
    /// Machine-generated descriptions (in-distribution phrasing).
    Machine,
    /// Human-written descriptions (independent phrasing).
    Human,
}

impl std::fmt::Display for Split {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Split::Machine => f.write_str("Verilog-Machine"),
            Split::Human => f.write_str("Verilog-Human"),
        }
    }
}

/// One benchmark problem.
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    /// Stable id, e.g. `"machine/counter_8"`.
    pub id: String,
    /// The task description.
    pub description: String,
    /// Golden circuit family (drives testbench synthesis).
    pub family: DesignFamily,
    /// Which split this problem belongs to.
    pub split: Split,
}

impl Problem {
    /// The golden module's interface line (`module name(ports…);`).
    pub fn header(&self) -> String {
        let golden = crate::testbench::golden_source(&self.family);
        pyranet_verilog::parse_module(&golden)
            .map(|m| pyranet_verilog::pretty::interface_line(&m))
            .unwrap_or_default()
    }

    /// The full prompt: description plus the golden module's interface line
    /// (VerilogEval supplies the module header and asks for the body; so do
    /// we).
    pub fn prompt(&self) -> String {
        let header = self.header();
        if header.is_empty() {
            self.description.clone()
        } else {
            format!("{} Interface: {header}", self.description)
        }
    }
}

/// The families every split evaluates (a spread over combinational,
/// sequential, FSM and memory designs).
fn eval_families() -> Vec<DesignFamily> {
    use DesignFamily::*;
    vec![
        HalfAdder,
        FullAdder,
        BehavioralAdder { width: 8 },
        AddSub { width: 8 },
        Multiplier { width: 4 },
        Comparator { width: 8 },
        Mux { sel_width: 2, width: 8 },
        Decoder { width: 3 },
        Parity { width: 8, even: true },
        Alu { width: 8 },
        Counter { width: 8 },
        UpDownCounter { width: 4 },
        ModCounter { modulus: 10 },
        Dff,
        ShiftRegister { width: 8 },
        EdgeDetector,
        BinToGray { width: 4 },
        GrayCounter { width: 4 },
        SequenceDetector { pattern: vec![true, false, true] },
        Ram { addr_width: 3, data_width: 8 },
    ]
}

/// The Machine split: template descriptions (the phrasing the corpus
/// generators produce, with a fixed seed so prompts are stable).
pub fn machine_split() -> Vec<Problem> {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xE7A1);
    eval_families()
        .into_iter()
        .map(|family| {
            let description = pyranet_corpus::describe::describe(&family, &[], &mut rng);
            Problem {
                id: format!("machine/{}", family.module_name()),
                description,
                family,
                split: Split::Machine,
            }
        })
        .collect()
}

/// The Human split: independently-phrased descriptions of the same
/// circuits.
pub fn human_split() -> Vec<Problem> {
    use DesignFamily::*;
    let texts: Vec<(DesignFamily, &str)> = vec![
        (HalfAdder, "Build a circuit that adds two single bits and reports the carry separately from the sum."),
        (FullAdder, "I need a one-bit adder stage: three inputs including the incoming carry, producing the sum bit and the outgoing carry."),
        (BehavioralAdder { width: 8 }, "Give me an eight bit wide addition unit. It should take a carry in, produce the eight bit total, and flag overflow on a carry out pin."),
        (AddSub { width: 8 }, "A combined add and subtract block, eight bits wide. When the mode pin is low the result is the sum; when it is high the second operand is subtracted from the first."),
        (Multiplier { width: 4 }, "Multiply two four bit unsigned numbers and give the full eight bit product."),
        (Comparator { width: 8 }, "Compare two unsigned bytes. Drive one of three flags depending on whether the first is smaller, the same, or bigger."),
        (Mux { sel_width: 2, width: 8 }, "Route one of four byte-wide inputs to the output according to a two bit select code."),
        (Decoder { width: 3 }, "Turn a three bit address into a one-hot pattern across eight output lines, but only while the enable pin is asserted; otherwise drive all zeros."),
        (Parity { width: 8, even: true }, "Compute a parity bit for a byte so that the flag is high exactly when the byte holds an odd number of ones."),
        (Alu { width: 8 }, "An eight bit arithmetic logic unit. Opcode 0 adds, 1 subtracts, 2 ands, 3 ors, 4 xors, 5 is unsigned set-less-than, 6 shifts left, 7 shifts right; also raise a flag whenever the result is all zeros."),
        (Counter { width: 8 }, "A byte-wide counter that steps up by one on each rising clock edge while enabled, and clears synchronously when reset is high."),
        (UpDownCounter { width: 4 }, "A four bit counter whose direction pin makes it climb when high and descend when low, with a synchronous clear."),
        (ModCounter { modulus: 10 }, "A decade counter: counts 0 through 9 and rolls over, raising a terminal-count strobe on 9."),
        (Dff, "A single data flip flop that loads on the clock edge only when its enable is high, and clears immediately whenever the asynchronous reset fires."),
        (ShiftRegister { width: 8 }, "An eight stage shift register: each clock pushes the serial input bit in at the bottom while everything else moves one place up; all eight bits are visible in parallel."),
        (EdgeDetector, "Watch a slow signal and emit a single-cycle pulse whenever it goes from low to high."),
        (BinToGray { width: 4 }, "Convert a four bit binary number into its Gray code equivalent, purely combinationally."),
        (GrayCounter { width: 4 }, "A four bit counter whose output sequence is Gray coded, so exactly one output bit flips per clock."),
        (SequenceDetector { pattern: vec![true, false, true] }, "Monitor a serial bit stream and raise the hit flag whenever the last three bits seen were one, zero, one; overlapping occurrences count."),
        (Ram { addr_width: 3, data_width: 8 }, "A small synchronous memory of eight bytes with one port: writes happen on the clock when write-enable is set, and reads are registered."),
    ];
    texts
        .into_iter()
        .map(|(family, text)| Problem {
            id: format!("human/{}", family.module_name()),
            description: text.to_owned(),
            family,
            split: Split::Human,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_cover_same_families() {
        let m: Vec<String> = machine_split().iter().map(|p| p.family.module_name()).collect();
        let h: Vec<String> = human_split().iter().map(|p| p.family.module_name()).collect();
        assert_eq!(m, h, "both splits evaluate the same circuits");
        assert_eq!(m.len(), 20);
    }

    #[test]
    fn descriptions_differ_between_splits() {
        for (mp, hp) in machine_split().iter().zip(human_split().iter()) {
            assert_ne!(
                mp.description, hp.description,
                "human phrasing must be independent: {}",
                mp.id
            );
        }
    }

    #[test]
    fn ids_are_unique_and_prefixed() {
        let mut all: Vec<String> =
            machine_split().into_iter().chain(human_split()).map(|p| p.id).collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(n, all.len());
    }

    #[test]
    fn machine_split_is_deterministic() {
        let a: Vec<String> = machine_split().into_iter().map(|p| p.description).collect();
        let b: Vec<String> = machine_split().into_iter().map(|p| p.description).collect();
        assert_eq!(a, b);
    }
}
