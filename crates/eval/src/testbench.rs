//! Golden-model testbench synthesis and functional checking.
//!
//! VerilogEval decides correctness by simulating the candidate against a
//! reference testbench. We regenerate the golden module for the problem's
//! family (clean style, fixed seed), then drive *both* designs with the
//! same stimulus and compare outputs **positionally** (i-th non-clock input
//! to i-th non-clock input, i-th output to i-th output), so candidates are
//! free to choose their own port names — as VerilogEval candidates are free
//! to choose internal structure.

use pyranet_corpus::families::{Category, DesignFamily};
use pyranet_corpus::gen::generate;
use pyranet_corpus::style::StyleOptions;
use pyranet_verilog::ast::PortDir;
use pyranet_verilog::{parse, Simulator};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Outcome of a functional check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FunctionalVerdict {
    /// All stimulus vectors matched.
    Pass,
    /// Candidate failed to parse or elaborate.
    BuildFailure(String),
    /// Candidate's interface cannot be matched to the golden one.
    InterfaceMismatch(String),
    /// Outputs diverged from the golden model.
    Mismatch {
        /// Stimulus index of the first divergence.
        vector: usize,
        /// Output position that diverged.
        output: usize,
    },
    /// Candidate simulation errored mid-run (oscillation, runaway loop).
    RuntimeFailure(String),
}

impl FunctionalVerdict {
    /// True for [`FunctionalVerdict::Pass`].
    pub fn is_pass(&self) -> bool {
        *self == FunctionalVerdict::Pass
    }
}

/// Port classification for stimulus generation.
#[derive(Debug, Clone)]
struct Interface {
    clock: Option<String>,
    reset: Option<String>,
    /// (name, width) of data inputs in declaration order.
    inputs: Vec<(String, u32)>,
    /// names of outputs in declaration order.
    outputs: Vec<String>,
}

fn is_clock_name(n: &str) -> bool {
    let n = n.to_ascii_lowercase();
    n == "clk" || n == "clock" || n.ends_with("_clk") || n.starts_with("clk_")
}

fn is_reset_name(n: &str) -> bool {
    let n = n.to_ascii_lowercase();
    n == "rst" || n == "reset" || n == "rst_n" || n.ends_with("_rst") || n.starts_with("rst_")
}

fn classify(src: &str, sequential: bool) -> Result<(Interface, String), String> {
    let file = parse(src).map_err(|e| e.to_string())?;
    let module = file.modules.first().ok_or("no module")?;
    let mut iface = Interface { clock: None, reset: None, inputs: Vec::new(), outputs: Vec::new() };
    for p in &module.ports {
        let width = p.range.as_ref().and_then(const_range_width).unwrap_or(1);
        match p.dir {
            PortDir::Input => {
                if sequential && iface.clock.is_none() && is_clock_name(&p.name) {
                    iface.clock = Some(p.name.clone());
                } else if sequential && iface.reset.is_none() && is_reset_name(&p.name) {
                    iface.reset = Some(p.name.clone());
                } else {
                    iface.inputs.push((p.name.clone(), width));
                }
            }
            PortDir::Output => iface.outputs.push(p.name.clone()),
            PortDir::Inout => return Err("inout ports are not supported by the bench".into()),
        }
    }
    Ok((iface, module.name.clone()))
}

fn const_range_width(r: &pyranet_verilog::ast::Range) -> Option<u32> {
    use pyranet_verilog::ast::{BinaryOp, Expr};
    fn cv(e: &Expr) -> Option<i64> {
        match e {
            Expr::Literal { value, .. } => Some(*value as i64),
            Expr::Binary(BinaryOp::Sub, a, b) => Some(cv(a)? - cv(b)?),
            Expr::Binary(BinaryOp::Add, a, b) => Some(cv(a)? + cv(b)?),
            _ => None,
        }
    }
    Some((cv(&r.msb)? - cv(&r.lsb)?).unsigned_abs() as u32 + 1)
}

/// The golden reference source for a family (clean terse style, fixed
/// seed, so it is identical across calls).
pub fn golden_source(family: &DesignFamily) -> String {
    let mut rng = ChaCha8Rng::seed_from_u64(0x601D);
    generate(family, &StyleOptions::clean(), &mut rng).source
}

/// Number of stimulus vectors per check.
const VECTORS: usize = 48;

/// Checks `candidate_src` against the golden model of `family`.
///
/// The candidate may name its module and ports freely; interfaces are
/// matched positionally and must agree in input count and widths and in
/// output count.
pub fn check_functional(candidate_src: &str, family: &DesignFamily) -> FunctionalVerdict {
    let sequential = family.category() == Category::Sequential;
    let golden_src = golden_source(family);
    let (gold_iface, gold_top) = match classify(&golden_src, sequential) {
        Ok(x) => x,
        Err(e) => return FunctionalVerdict::BuildFailure(format!("golden: {e}")),
    };
    let (cand_iface, cand_top) = match classify(candidate_src, sequential) {
        Ok(x) => x,
        Err(e) => return FunctionalVerdict::BuildFailure(e),
    };
    if cand_iface.inputs.len() != gold_iface.inputs.len() {
        return FunctionalVerdict::InterfaceMismatch(format!(
            "expected {} data inputs, found {}",
            gold_iface.inputs.len(),
            cand_iface.inputs.len()
        ));
    }
    for (i, ((_, gw), (cn, cw))) in gold_iface.inputs.iter().zip(&cand_iface.inputs).enumerate() {
        if gw != cw {
            return FunctionalVerdict::InterfaceMismatch(format!(
                "input {i} (`{cn}`) is {cw} bits, expected {gw}"
            ));
        }
    }
    if cand_iface.outputs.len() != gold_iface.outputs.len() {
        return FunctionalVerdict::InterfaceMismatch(format!(
            "expected {} outputs, found {}",
            gold_iface.outputs.len(),
            cand_iface.outputs.len()
        ));
    }
    if sequential && cand_iface.clock.is_none() {
        return FunctionalVerdict::InterfaceMismatch("no clock input found".into());
    }
    if gold_iface.reset.is_some() && sequential && cand_iface.reset.is_none() {
        return FunctionalVerdict::InterfaceMismatch("no reset input found".into());
    }

    let mut gold = match Simulator::from_source(&golden_src, &gold_top) {
        Ok(s) => s,
        Err(e) => return FunctionalVerdict::BuildFailure(format!("golden: {e}")),
    };
    let mut cand = match Simulator::from_source(candidate_src, &cand_top) {
        Ok(s) => s,
        Err(e) => return FunctionalVerdict::BuildFailure(e.to_string()),
    };

    let mut rng = ChaCha8Rng::seed_from_u64(0x57EE7);
    // reset pulse for sequential designs
    if sequential {
        let pulse = |sim: &mut Simulator, iface: &Interface| -> Result<(), String> {
            if let Some(r) = &iface.reset {
                sim.set(r, 1).map_err(|e| e.to_string())?;
            }
            if let Some(c) = &iface.clock {
                sim.clock(c).map_err(|e| e.to_string())?;
            }
            if let Some(r) = &iface.reset {
                sim.set(r, 0).map_err(|e| e.to_string())?;
            }
            Ok(())
        };
        if let Err(e) = pulse(&mut gold, &gold_iface) {
            return FunctionalVerdict::BuildFailure(format!("golden reset: {e}"));
        }
        if let Err(e) = pulse(&mut cand, &cand_iface) {
            return FunctionalVerdict::RuntimeFailure(format!("reset: {e}"));
        }
    }

    for v in 0..VECTORS {
        // one stimulus for both designs
        let values: Vec<u64> = gold_iface
            .inputs
            .iter()
            .map(|(_, w)| rng.random::<u64>() & pyranet_verilog::Value::mask(*w))
            .collect();
        for ((gn, _), val) in gold_iface.inputs.iter().zip(&values) {
            if let Err(e) = gold.set(gn, *val) {
                return FunctionalVerdict::BuildFailure(format!("golden drive: {e}"));
            }
        }
        for ((cn, _), val) in cand_iface.inputs.iter().zip(&values) {
            if let Err(e) = cand.set(cn, *val) {
                return FunctionalVerdict::RuntimeFailure(format!("drive `{cn}`: {e}"));
            }
        }
        if sequential {
            if let Some(c) = &gold_iface.clock {
                if let Err(e) = gold.clock(c) {
                    return FunctionalVerdict::BuildFailure(format!("golden clock: {e}"));
                }
            }
            if let Some(c) = &cand_iface.clock {
                if let Err(e) = cand.clock(c) {
                    return FunctionalVerdict::RuntimeFailure(format!("clock: {e}"));
                }
            }
        }
        for (o, (gn, cn)) in gold_iface.outputs.iter().zip(&cand_iface.outputs).enumerate() {
            let gv = match gold.get(gn) {
                Ok(v) => v,
                Err(e) => return FunctionalVerdict::BuildFailure(format!("golden read: {e}")),
            };
            let cv = match cand.get(cn) {
                Ok(v) => v,
                Err(e) => return FunctionalVerdict::RuntimeFailure(format!("read `{cn}`: {e}")),
            };
            // compare at the golden width (a wider candidate output is
            // tolerated if the low bits agree and the rest are zero)
            let w = gv.width();
            if gv.as_u64() != (cv.as_u64() & pyranet_verilog::Value::mask(w))
                || cv.as_u64() >> w.min(63) != 0
            {
                return FunctionalVerdict::Mismatch { vector: v, output: o };
            }
        }
    }
    FunctionalVerdict::Pass
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyranet_corpus::style::{NamingScheme, StyleOptions};

    #[test]
    fn golden_passes_against_itself() {
        for family in [
            DesignFamily::HalfAdder,
            DesignFamily::Counter { width: 8 },
            DesignFamily::Alu { width: 8 },
            DesignFamily::Ram { addr_width: 3, data_width: 8 },
            DesignFamily::SequenceDetector { pattern: vec![true, false, true] },
        ] {
            let src = golden_source(&family);
            let v = check_functional(&src, &family);
            assert!(v.is_pass(), "{family:?}: {v:?}");
        }
    }

    #[test]
    fn renamed_ports_still_pass() {
        // A correct implementation under a different naming scheme passes:
        // matching is positional.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for family in [DesignFamily::HalfAdder, DesignFamily::Counter { width: 8 }] {
            let style = StyleOptions { naming: NamingScheme::Prefixed, ..StyleOptions::clean() };
            let d = generate(&family, &style, &mut rng);
            let v = check_functional(&d.source, &family);
            assert!(v.is_pass(), "{family:?}: {v:?}");
        }
    }

    #[test]
    fn wrong_logic_fails() {
        // A half adder with OR instead of XOR
        let bad = "module ha(input a, input b, output s, output c);\n\
                   assign s = a | b;\n  assign c = a & b;\nendmodule";
        let v = check_functional(bad, &DesignFamily::HalfAdder);
        assert!(matches!(v, FunctionalVerdict::Mismatch { .. }), "{v:?}");
    }

    #[test]
    fn syntax_error_is_build_failure() {
        let v = check_functional("module oops(", &DesignFamily::HalfAdder);
        assert!(matches!(v, FunctionalVerdict::BuildFailure(_)), "{v:?}");
    }

    #[test]
    fn wrong_interface_is_mismatch() {
        let v = check_functional(
            "module m(input a, output y); assign y = a; endmodule",
            &DesignFamily::HalfAdder,
        );
        assert!(matches!(v, FunctionalVerdict::InterfaceMismatch(_)), "{v:?}");
    }

    #[test]
    fn wrong_width_is_interface_mismatch() {
        let v = check_functional(
            "module add(input [3:0] a, input [3:0] b, input cin, output [7:0] s, output co);\n\
             assign {co, s} = a + b + cin;\nendmodule",
            &DesignFamily::BehavioralAdder { width: 8 },
        );
        assert!(matches!(v, FunctionalVerdict::InterfaceMismatch(_)), "{v:?}");
    }

    #[test]
    fn missing_clock_is_interface_mismatch() {
        let v = check_functional(
            "module c(input [7:0] d, output [7:0] q); assign q = d; endmodule",
            &DesignFamily::Counter { width: 8 },
        );
        assert!(matches!(v, FunctionalVerdict::InterfaceMismatch(_)), "{v:?}");
    }

    #[test]
    fn off_by_one_counter_fails() {
        let bad = "module counter(input clk, input rst, input en, output reg [7:0] q);\n\
                   always @(posedge clk) begin\n\
                     if (rst) q <= 8'd0; else if (en) q <= q + 8'd2;\n\
                   end\nendmodule";
        let v = check_functional(bad, &DesignFamily::Counter { width: 8 });
        assert!(matches!(v, FunctionalVerdict::Mismatch { .. }), "{v:?}");
    }

    #[test]
    fn verdict_is_pass_helper() {
        assert!(FunctionalVerdict::Pass.is_pass());
        assert!(!FunctionalVerdict::BuildFailure("x".into()).is_pass());
    }
}
