//! Golden-model testbench synthesis and functional checking.
//!
//! VerilogEval decides correctness by simulating the candidate against a
//! reference testbench. We regenerate the golden module for the problem's
//! family (clean style, fixed seed), then drive *both* designs with the
//! same stimulus and compare outputs **positionally** (i-th non-clock input
//! to i-th non-clock input, i-th output to i-th output), so candidates are
//! free to choose their own port names — as VerilogEval candidates are free
//! to choose internal structure.
//!
//! Simulation runs through [`pyranet_verilog::SimDesign`]: the golden model
//! is parsed, elaborated and (by default) compiled to bytecode **once per
//! [`ProblemBench`]**, then cheaply re-instantiated for every candidate
//! check; each candidate is compiled once and driven for all vectors. The
//! compiled and reference backends are pinned bit-identical, so
//! [`SimMode`] never changes a verdict — only how fast it arrives.

use pyranet_corpus::families::{Category, DesignFamily};
use pyranet_corpus::gen::generate;
use pyranet_corpus::style::StyleOptions;
use pyranet_verilog::ast::PortDir;
use pyranet_verilog::sim::exhaustive_assignments;
use pyranet_verilog::{parse, SimDesign, SimInstance, SimMode};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

/// Outcome of a functional check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FunctionalVerdict {
    /// All stimulus vectors matched.
    Pass,
    /// Candidate failed to parse or elaborate.
    BuildFailure(String),
    /// Candidate's interface cannot be matched to the golden one.
    InterfaceMismatch(String),
    /// Outputs diverged from the golden model.
    Mismatch {
        /// Stimulus index of the first divergence.
        vector: usize,
        /// Output position that diverged.
        output: usize,
    },
    /// Candidate simulation errored mid-run (oscillation, runaway loop).
    RuntimeFailure(String),
}

impl FunctionalVerdict {
    /// True for [`FunctionalVerdict::Pass`].
    pub fn is_pass(&self) -> bool {
        *self == FunctionalVerdict::Pass
    }
}

/// How a candidate's outputs are compared against the golden model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckStrategy {
    /// Drive both designs with 48 fixed pseudo-random stimulus vectors (the
    /// historical check).
    Stimulus,
    /// Exhaustive equivalence check: for combinational designs whose total
    /// input width fits in the bit cap, sweep *every* input assignment in
    /// ascending order — a pass means the candidate matches the golden
    /// truth table everywhere. Designs over the cap, and all sequential
    /// designs, fall back to the stimulus vectors.
    Equivalence {
        /// Maximum total input bits swept exhaustively (2^bits vectors).
        max_input_bits: u32,
    },
}

/// Default input-bit cap for [`CheckStrategy::Equivalence`] (2^12 = 4096
/// assignments at most — milliseconds on the bytecode VM).
pub const DEFAULT_MAX_EQ_INPUTS: u32 = 12;

/// Simulation-work counters accumulated by a [`ProblemBench`], reported
/// into the `sim.*` metrics by the eval harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Designs prepared (golden + candidates; compile-once each).
    pub programs: u64,
    /// Stimulus vectors driven.
    pub vectors: u64,
    /// Individual `set`/`clock` operations applied across both designs.
    pub steps: u64,
    /// Wall time spent parsing/elaborating/compiling designs.
    pub compile_time: Duration,
    /// Wall time spent driving vectors.
    pub run_time: Duration,
    /// Candidate checks scored by an exhaustive input sweep
    /// ([`CheckStrategy::Equivalence`] within the bit cap).
    pub exhaustive_checks: u64,
    /// Equivalence-mode checks that fell back to stimulus vectors
    /// (sequential design or inputs over the cap).
    pub fallback_checks: u64,
}

impl SimStats {
    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &SimStats) {
        self.programs += other.programs;
        self.vectors += other.vectors;
        self.steps += other.steps;
        self.compile_time += other.compile_time;
        self.run_time += other.run_time;
        self.exhaustive_checks += other.exhaustive_checks;
        self.fallback_checks += other.fallback_checks;
    }
}

/// Port classification for stimulus generation.
#[derive(Debug, Clone)]
struct Interface {
    clock: Option<String>,
    reset: Option<String>,
    /// (name, width) of data inputs in declaration order.
    inputs: Vec<(String, u32)>,
    /// names of outputs in declaration order.
    outputs: Vec<String>,
}

fn is_clock_name(n: &str) -> bool {
    let n = n.to_ascii_lowercase();
    n == "clk" || n == "clock" || n.ends_with("_clk") || n.starts_with("clk_")
}

fn is_reset_name(n: &str) -> bool {
    let n = n.to_ascii_lowercase();
    n == "rst" || n == "reset" || n == "rst_n" || n.ends_with("_rst") || n.starts_with("rst_")
}

fn classify(src: &str, sequential: bool) -> Result<(Interface, String), String> {
    let file = parse(src).map_err(|e| e.to_string())?;
    let module = file.modules.first().ok_or("no module")?;
    let mut iface = Interface { clock: None, reset: None, inputs: Vec::new(), outputs: Vec::new() };
    for p in &module.ports {
        let width = p.range.as_ref().and_then(const_range_width).unwrap_or(1);
        match p.dir {
            PortDir::Input => {
                if sequential && iface.clock.is_none() && is_clock_name(&p.name) {
                    iface.clock = Some(p.name.clone());
                } else if sequential && iface.reset.is_none() && is_reset_name(&p.name) {
                    iface.reset = Some(p.name.clone());
                } else {
                    iface.inputs.push((p.name.clone(), width));
                }
            }
            PortDir::Output => iface.outputs.push(p.name.clone()),
            PortDir::Inout => return Err("inout ports are not supported by the bench".into()),
        }
    }
    Ok((iface, module.name.clone()))
}

fn const_range_width(r: &pyranet_verilog::ast::Range) -> Option<u32> {
    use pyranet_verilog::ast::{BinaryOp, Expr};
    fn cv(e: &Expr) -> Option<i64> {
        match e {
            Expr::Literal { value, .. } => Some(*value as i64),
            Expr::Binary(BinaryOp::Sub, a, b) => Some(cv(a)? - cv(b)?),
            Expr::Binary(BinaryOp::Add, a, b) => Some(cv(a)? + cv(b)?),
            _ => None,
        }
    }
    Some((cv(&r.msb)? - cv(&r.lsb)?).unsigned_abs() as u32 + 1)
}

/// The golden reference source for a family (clean terse style, fixed
/// seed, so it is identical across calls).
pub fn golden_source(family: &DesignFamily) -> String {
    let mut rng = ChaCha8Rng::seed_from_u64(0x601D);
    generate(family, &StyleOptions::clean(), &mut rng).source
}

/// Number of stimulus vectors per check.
const VECTORS: usize = 48;

/// Golden-side preparation shared across all candidate checks of a problem.
struct Prepared {
    gold_iface: Interface,
    /// Parse/elab (and compile) the golden source once; errors are deferred
    /// to check time so the verdict ordering matches the historical
    /// single-shot path (interface mismatches win over golden failures).
    golden: Result<SimDesign, String>,
}

/// A problem's testbench, with the golden model prepared once.
///
/// `check` may be called for any number of candidates; each pays only its
/// own front-end cost plus a cheap golden re-instantiation.
pub struct ProblemBench {
    mode: SimMode,
    check: CheckStrategy,
    sequential: bool,
    prep: Result<Prepared, FunctionalVerdict>,
    /// Simulation-work counters across all checks so far.
    pub stats: SimStats,
}

impl ProblemBench {
    /// Prepares the golden model of `family` under `mode`, scoring with
    /// stimulus vectors.
    pub fn new(family: &DesignFamily, mode: SimMode) -> ProblemBench {
        ProblemBench::new_with_check(family, mode, CheckStrategy::Stimulus)
    }

    /// Prepares the golden model of `family` under `mode` with an explicit
    /// check strategy.
    pub fn new_with_check(
        family: &DesignFamily,
        mode: SimMode,
        check: CheckStrategy,
    ) -> ProblemBench {
        let mut stats = SimStats::default();
        let sequential = family.category() == Category::Sequential;
        let golden_src = golden_source(family);
        let started = Instant::now();
        let prep = match classify(&golden_src, sequential) {
            Ok((gold_iface, gold_top)) => {
                let golden =
                    SimDesign::build(&golden_src, &gold_top, mode).map_err(|e| e.to_string());
                if golden.is_ok() {
                    stats.programs += 1;
                }
                Ok(Prepared { gold_iface, golden })
            }
            Err(e) => Err(FunctionalVerdict::BuildFailure(format!("golden: {e}"))),
        };
        stats.compile_time += started.elapsed();
        ProblemBench { mode, check, sequential, prep, stats }
    }

    /// Checks `candidate_src` against the prepared golden model.
    ///
    /// The candidate may name its module and ports freely; interfaces are
    /// matched positionally and must agree in input count and widths and in
    /// output count.
    pub fn check(&mut self, candidate_src: &str) -> FunctionalVerdict {
        let prep = match &self.prep {
            Ok(p) => p,
            Err(v) => return v.clone(),
        };
        let (cand_iface, cand_top) = match classify(candidate_src, self.sequential) {
            Ok(x) => x,
            Err(e) => return FunctionalVerdict::BuildFailure(e),
        };
        // Small clone so `drive` can take `&mut self` for stats counting.
        let gold_iface = prep.gold_iface.clone();
        let gold_iface = &gold_iface;
        if cand_iface.inputs.len() != gold_iface.inputs.len() {
            return FunctionalVerdict::InterfaceMismatch(format!(
                "expected {} data inputs, found {}",
                gold_iface.inputs.len(),
                cand_iface.inputs.len()
            ));
        }
        for (i, ((_, gw), (cn, cw))) in gold_iface.inputs.iter().zip(&cand_iface.inputs).enumerate()
        {
            if gw != cw {
                return FunctionalVerdict::InterfaceMismatch(format!(
                    "input {i} (`{cn}`) is {cw} bits, expected {gw}"
                ));
            }
        }
        if cand_iface.outputs.len() != gold_iface.outputs.len() {
            return FunctionalVerdict::InterfaceMismatch(format!(
                "expected {} outputs, found {}",
                gold_iface.outputs.len(),
                cand_iface.outputs.len()
            ));
        }
        if self.sequential && cand_iface.clock.is_none() {
            return FunctionalVerdict::InterfaceMismatch("no clock input found".into());
        }
        if gold_iface.reset.is_some() && self.sequential && cand_iface.reset.is_none() {
            return FunctionalVerdict::InterfaceMismatch("no reset input found".into());
        }

        let mut gold = match &prep.golden {
            Ok(design) => match design.instantiate() {
                Ok(s) => s,
                Err(e) => return FunctionalVerdict::BuildFailure(format!("golden: {e}")),
            },
            Err(e) => return FunctionalVerdict::BuildFailure(format!("golden: {e}")),
        };
        let compile_started = Instant::now();
        let cand_design = match SimDesign::build(candidate_src, &cand_top, self.mode) {
            Ok(d) => d,
            Err(e) => {
                self.stats.compile_time += compile_started.elapsed();
                return FunctionalVerdict::BuildFailure(e.to_string());
            }
        };
        self.stats.programs += 1;
        self.stats.compile_time += compile_started.elapsed();
        let mut cand = match cand_design.instantiate() {
            Ok(s) => s,
            Err(e) => return FunctionalVerdict::BuildFailure(e.to_string()),
        };

        let run_started = Instant::now();
        let verdict = self.drive(&mut gold, gold_iface, &mut cand, &cand_iface);
        self.stats.run_time += run_started.elapsed();
        verdict
    }

    fn drive(
        &mut self,
        gold: &mut SimInstance,
        gold_iface: &Interface,
        cand: &mut SimInstance,
        cand_iface: &Interface,
    ) -> FunctionalVerdict {
        // Exhaustive equivalence path: combinational and within the bit cap.
        // No reset, no clock, no RNG — just every assignment in ascending
        // order, so the verdict is deterministic by construction.
        if let CheckStrategy::Equivalence { max_input_bits } = self.check {
            if !self.sequential {
                let widths: Vec<u32> = gold_iface.inputs.iter().map(|(_, w)| *w).collect();
                if let Some(sweep) = exhaustive_assignments(&widths, max_input_bits) {
                    self.stats.exhaustive_checks += 1;
                    for (v, values) in sweep.enumerate() {
                        self.stats.vectors += 1;
                        if let Some(verdict) =
                            self.step_and_compare(gold, gold_iface, cand, cand_iface, v, &values)
                        {
                            return verdict;
                        }
                    }
                    return FunctionalVerdict::Pass;
                }
            }
            // Over the cap or sequential: same stimulus vectors as
            // `CheckStrategy::Stimulus`.
            self.stats.fallback_checks += 1;
        }

        let mut rng = ChaCha8Rng::seed_from_u64(0x57EE7);
        // reset pulse for sequential designs
        if self.sequential {
            let pulse = |sim: &mut SimInstance, iface: &Interface| -> Result<u64, String> {
                let mut steps = 0u64;
                if let Some(r) = &iface.reset {
                    sim.set(r, 1).map_err(|e| e.to_string())?;
                    steps += 1;
                }
                if let Some(c) = &iface.clock {
                    sim.clock(c).map_err(|e| e.to_string())?;
                    steps += 1;
                }
                if let Some(r) = &iface.reset {
                    sim.set(r, 0).map_err(|e| e.to_string())?;
                    steps += 1;
                }
                Ok(steps)
            };
            match pulse(gold, gold_iface) {
                Ok(steps) => self.stats.steps += steps,
                Err(e) => return FunctionalVerdict::BuildFailure(format!("golden reset: {e}")),
            }
            match pulse(cand, cand_iface) {
                Ok(steps) => self.stats.steps += steps,
                Err(e) => return FunctionalVerdict::RuntimeFailure(format!("reset: {e}")),
            }
        }

        for v in 0..VECTORS {
            self.stats.vectors += 1;
            // one stimulus for both designs
            let values: Vec<u64> = gold_iface
                .inputs
                .iter()
                .map(|(_, w)| rng.random::<u64>() & pyranet_verilog::Value::mask(*w))
                .collect();
            if let Some(verdict) =
                self.step_and_compare(gold, gold_iface, cand, cand_iface, v, &values)
            {
                return verdict;
            }
        }
        FunctionalVerdict::Pass
    }

    /// Applies one input assignment to both designs (clocking sequential
    /// ones) and compares outputs positionally. `Some(verdict)` on failure.
    fn step_and_compare(
        &mut self,
        gold: &mut SimInstance,
        gold_iface: &Interface,
        cand: &mut SimInstance,
        cand_iface: &Interface,
        v: usize,
        values: &[u64],
    ) -> Option<FunctionalVerdict> {
        for ((gn, _), val) in gold_iface.inputs.iter().zip(values) {
            self.stats.steps += 1;
            if let Err(e) = gold.set(gn, *val) {
                return Some(FunctionalVerdict::BuildFailure(format!("golden drive: {e}")));
            }
        }
        for ((cn, _), val) in cand_iface.inputs.iter().zip(values) {
            self.stats.steps += 1;
            if let Err(e) = cand.set(cn, *val) {
                return Some(FunctionalVerdict::RuntimeFailure(format!("drive `{cn}`: {e}")));
            }
        }
        if self.sequential {
            if let Some(c) = &gold_iface.clock {
                self.stats.steps += 1;
                if let Err(e) = gold.clock(c) {
                    return Some(FunctionalVerdict::BuildFailure(format!("golden clock: {e}")));
                }
            }
            if let Some(c) = &cand_iface.clock {
                self.stats.steps += 1;
                if let Err(e) = cand.clock(c) {
                    return Some(FunctionalVerdict::RuntimeFailure(format!("clock: {e}")));
                }
            }
        }
        for (o, (gn, cn)) in gold_iface.outputs.iter().zip(&cand_iface.outputs).enumerate() {
            let gv = match gold.get(gn) {
                Ok(v) => v,
                Err(e) => {
                    return Some(FunctionalVerdict::BuildFailure(format!("golden read: {e}")))
                }
            };
            let cv = match cand.get(cn) {
                Ok(v) => v,
                Err(e) => {
                    return Some(FunctionalVerdict::RuntimeFailure(format!("read `{cn}`: {e}")))
                }
            };
            // compare at the golden width (a wider candidate output is
            // tolerated if the low bits agree and the rest are zero)
            let w = gv.width();
            if gv.as_u64() != (cv.as_u64() & pyranet_verilog::Value::mask(w))
                || cv.as_u64() >> w.min(63) != 0
            {
                return Some(FunctionalVerdict::Mismatch { vector: v, output: o });
            }
        }
        None
    }
}

/// Checks `candidate_src` against the golden model of `family` under the
/// default (compiled) backend.
pub fn check_functional(candidate_src: &str, family: &DesignFamily) -> FunctionalVerdict {
    check_functional_with(candidate_src, family, SimMode::default())
}

/// Checks `candidate_src` against the golden model of `family` under an
/// explicit simulation backend. Verdicts are identical across modes (the
/// backends are pinned bit-identical); use [`ProblemBench`] directly to
/// amortise golden preparation over many candidates.
pub fn check_functional_with(
    candidate_src: &str,
    family: &DesignFamily,
    mode: SimMode,
) -> FunctionalVerdict {
    ProblemBench::new(family, mode).check(candidate_src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyranet_corpus::style::{NamingScheme, StyleOptions};

    #[test]
    fn golden_passes_against_itself() {
        for family in [
            DesignFamily::HalfAdder,
            DesignFamily::Counter { width: 8 },
            DesignFamily::Alu { width: 8 },
            DesignFamily::Ram { addr_width: 3, data_width: 8 },
            DesignFamily::SequenceDetector { pattern: vec![true, false, true] },
        ] {
            let src = golden_source(&family);
            let v = check_functional(&src, &family);
            assert!(v.is_pass(), "{family:?}: {v:?}");
        }
    }

    #[test]
    fn renamed_ports_still_pass() {
        // A correct implementation under a different naming scheme passes:
        // matching is positional.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for family in [DesignFamily::HalfAdder, DesignFamily::Counter { width: 8 }] {
            let style = StyleOptions { naming: NamingScheme::Prefixed, ..StyleOptions::clean() };
            let d = generate(&family, &style, &mut rng);
            let v = check_functional(&d.source, &family);
            assert!(v.is_pass(), "{family:?}: {v:?}");
        }
    }

    #[test]
    fn wrong_logic_fails() {
        // A half adder with OR instead of XOR
        let bad = "module ha(input a, input b, output s, output c);\n\
                   assign s = a | b;\n  assign c = a & b;\nendmodule";
        let v = check_functional(bad, &DesignFamily::HalfAdder);
        assert!(matches!(v, FunctionalVerdict::Mismatch { .. }), "{v:?}");
    }

    #[test]
    fn syntax_error_is_build_failure() {
        let v = check_functional("module oops(", &DesignFamily::HalfAdder);
        assert!(matches!(v, FunctionalVerdict::BuildFailure(_)), "{v:?}");
    }

    #[test]
    fn wrong_interface_is_mismatch() {
        let v = check_functional(
            "module m(input a, output y); assign y = a; endmodule",
            &DesignFamily::HalfAdder,
        );
        assert!(matches!(v, FunctionalVerdict::InterfaceMismatch(_)), "{v:?}");
    }

    #[test]
    fn wrong_width_is_interface_mismatch() {
        let v = check_functional(
            "module add(input [3:0] a, input [3:0] b, input cin, output [7:0] s, output co);\n\
             assign {co, s} = a + b + cin;\nendmodule",
            &DesignFamily::BehavioralAdder { width: 8 },
        );
        assert!(matches!(v, FunctionalVerdict::InterfaceMismatch(_)), "{v:?}");
    }

    #[test]
    fn missing_clock_is_interface_mismatch() {
        let v = check_functional(
            "module c(input [7:0] d, output [7:0] q); assign q = d; endmodule",
            &DesignFamily::Counter { width: 8 },
        );
        assert!(matches!(v, FunctionalVerdict::InterfaceMismatch(_)), "{v:?}");
    }

    #[test]
    fn off_by_one_counter_fails() {
        let bad = "module counter(input clk, input rst, input en, output reg [7:0] q);\n\
                   always @(posedge clk) begin\n\
                     if (rst) q <= 8'd0; else if (en) q <= q + 8'd2;\n\
                   end\nendmodule";
        let v = check_functional(bad, &DesignFamily::Counter { width: 8 });
        assert!(matches!(v, FunctionalVerdict::Mismatch { .. }), "{v:?}");
    }

    #[test]
    fn verdict_is_pass_helper() {
        assert!(FunctionalVerdict::Pass.is_pass());
        assert!(!FunctionalVerdict::BuildFailure("x".into()).is_pass());
    }

    #[test]
    fn modes_agree_on_every_verdict_class() {
        // One candidate per verdict class, checked under both backends:
        // the mode must never change the verdict.
        let candidates = [
            golden_source(&DesignFamily::HalfAdder),
            "module ha(input a, input b, output s, output c);\n\
             assign s = a | b; assign c = a & b; endmodule"
                .to_owned(),
            "module oops(".to_owned(),
            "module m(input a, output y); assign y = a; endmodule".to_owned(),
        ];
        for family in [
            DesignFamily::HalfAdder,
            DesignFamily::Counter { width: 8 },
            DesignFamily::Alu { width: 8 },
        ] {
            let mut compiled = ProblemBench::new(&family, SimMode::Compiled);
            let mut reference = ProblemBench::new(&family, SimMode::Reference);
            for cand in &candidates {
                assert_eq!(
                    compiled.check(cand),
                    reference.check(cand),
                    "{family:?} verdict diverges on:\n{cand}"
                );
            }
        }
    }

    #[test]
    fn problem_bench_amortises_and_counts() {
        let family = DesignFamily::Counter { width: 8 };
        let mut bench = ProblemBench::new(&family, SimMode::Compiled);
        assert_eq!(bench.stats.programs, 1, "golden prepared once");
        let golden = golden_source(&family);
        for _ in 0..3 {
            assert!(bench.check(&golden).is_pass());
        }
        assert_eq!(bench.stats.programs, 4, "one program per candidate check");
        assert_eq!(bench.stats.vectors, 3 * 48);
        assert!(bench.stats.steps > bench.stats.vectors, "steps include drives and clocks");
    }

    fn eq_bench(family: &DesignFamily) -> ProblemBench {
        ProblemBench::new_with_check(
            family,
            SimMode::Compiled,
            CheckStrategy::Equivalence { max_input_bits: DEFAULT_MAX_EQ_INPUTS },
        )
    }

    #[test]
    fn equivalence_sweeps_every_assignment_within_cap() {
        // HalfAdder: 2 input bits -> exactly 4 vectors, exhaustive.
        let family = DesignFamily::HalfAdder;
        let mut bench = eq_bench(&family);
        assert!(bench.check(&golden_source(&family)).is_pass());
        assert_eq!(bench.stats.exhaustive_checks, 1);
        assert_eq!(bench.stats.fallback_checks, 0);
        assert_eq!(bench.stats.vectors, 4);
    }

    #[test]
    fn equivalence_falls_back_over_cap_and_for_sequential() {
        // BehavioralAdder{8}: 8+8+1 = 17 input bits > 12 -> stimulus fallback.
        let wide = DesignFamily::BehavioralAdder { width: 8 };
        let mut bench = eq_bench(&wide);
        assert!(bench.check(&golden_source(&wide)).is_pass());
        assert_eq!(bench.stats.exhaustive_checks, 0);
        assert_eq!(bench.stats.fallback_checks, 1);
        assert_eq!(bench.stats.vectors, 48, "fallback drives the stimulus vectors");

        // Sequential designs always use stimulus, whatever their width.
        let seq = DesignFamily::Dff;
        let mut bench = eq_bench(&seq);
        assert!(bench.check(&golden_source(&seq)).is_pass());
        assert_eq!(bench.stats.exhaustive_checks, 0);
        assert_eq!(bench.stats.fallback_checks, 1);
    }

    /// Builds a parity candidate that is correct everywhere except at one
    /// 8-bit input value chosen to dodge the 48 fixed stimulus vectors.
    fn parity_counterexample() -> String {
        // Replicate the stimulus stream (seed 0x57EE7, one 8-bit input per
        // vector) and pick the smallest value it never drives.
        let mut rng = ChaCha8Rng::seed_from_u64(0x57EE7);
        let driven: std::collections::HashSet<u64> =
            (0..VECTORS).map(|_| rng.random::<u64>() & 0xFF).collect();
        let magic = (0..256u64).find(|v| !driven.contains(v)).expect("48 vectors < 256 values");
        format!(
            "module even_parity_8(input [7:0] data, output y);\n  \
             assign y = (^data) ^ (data == 8'd{magic});\nendmodule\n"
        )
    }

    #[test]
    fn equivalence_is_strictly_stronger_than_stimulus() {
        // The crafted candidate is wrong at exactly one of 256 assignments:
        // the fixed stimulus vectors miss it, the exhaustive sweep cannot.
        let family = DesignFamily::Parity { width: 8, even: true };
        let cand = parity_counterexample();
        let mut stim = ProblemBench::new(&family, SimMode::Compiled);
        assert!(stim.check(&cand).is_pass(), "counterexample must sneak past stimulus vectors");
        let mut eq = eq_bench(&family);
        let v = eq.check(&cand);
        assert!(matches!(v, FunctionalVerdict::Mismatch { .. }), "{v:?}");
    }

    #[test]
    fn equivalence_verdicts_agree_across_sim_modes() {
        let family = DesignFamily::Parity { width: 8, even: true };
        let cand = parity_counterexample();
        let strategy = CheckStrategy::Equivalence { max_input_bits: DEFAULT_MAX_EQ_INPUTS };
        let mut compiled = ProblemBench::new_with_check(&family, SimMode::Compiled, strategy);
        let mut reference = ProblemBench::new_with_check(&family, SimMode::Reference, strategy);
        assert_eq!(compiled.check(&cand), reference.check(&cand));
        assert_eq!(
            compiled.check(&golden_source(&family)),
            reference.check(&golden_source(&family))
        );
    }

    #[test]
    fn equivalence_mismatch_reports_the_exact_assignment() {
        // Majority voter: 3 input bits a,b,c (a = LSB of the sweep counter).
        // A candidate wrong only at a=1,b=1,c=0 (counter value 3) must be
        // reported at exactly that vector index.
        let bad = "module majority3(input a, input b, input c, output y);\n  \
                   assign y = ((a & b) | (a & c) | (b & c)) ^ (a & b & ~c);\nendmodule\n";
        let mut bench = eq_bench(&DesignFamily::Majority);
        assert_eq!(bench.check(bad), FunctionalVerdict::Mismatch { vector: 3, output: 0 });
    }

    #[test]
    fn check_functional_with_matches_default() {
        let src = golden_source(&DesignFamily::HalfAdder);
        assert_eq!(
            check_functional(&src, &DesignFamily::HalfAdder),
            check_functional_with(&src, &DesignFamily::HalfAdder, SimMode::Reference),
        );
    }
}
