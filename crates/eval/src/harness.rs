//! The evaluation loop: sample `n` completions per problem, check each,
//! report pass@k.

use crate::passk::pass_at_k;
use crate::problems::{Problem, Split};
use crate::testbench::{
    CheckStrategy, FunctionalVerdict, ProblemBench, SimStats, DEFAULT_MAX_EQ_INPUTS,
};
use pyranet_exec::{par_map, stream_seed_str, ExecConfig};
use pyranet_model::decode::{DecodeSession, PromptPlan};
use pyranet_model::{KernelMode, SampleOptions, Tokenizer, TransformerLm};
use pyranet_verilog::SimMode;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which inference path drives the per-problem sampling.
///
/// Both modes draw each sample `i` from its own RNG stream keyed
/// `(seed, problem id, i)` and are **bit-identical** to each other (pinned
/// in `tests/determinism.rs`) — batching is a throughput knob, never a
/// semantic one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EngineMode {
    /// [`DecodeSession`]: one shared prompt prefill per problem, KV cache
    /// forked across the n samples, all live sequences decoded in
    /// lock-step batches through the blocked kernels.
    #[default]
    Session,
    /// The retained legacy loop: every sample re-prefills the prompt and
    /// decodes alone. Kept as the reference path for equivalence pins and
    /// the `bench_eval` baseline.
    PerSample,
}

/// Functional-check strategy for the harness (`--check` on the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CheckMode {
    /// Fixed pseudo-random stimulus vectors (the historical check).
    #[default]
    Stimulus,
    /// Exhaustive equivalence sweep for small combinational problems,
    /// bounded by [`EvalOptions::max_eq_inputs`]; problems over the cap and
    /// sequential problems fall back to stimulus vectors. Strictly stronger
    /// than stimulus scoring, still RNG-free and deterministic.
    Equivalence,
}

impl std::fmt::Display for CheckMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CheckMode::Stimulus => "stimulus",
            CheckMode::Equivalence => "equivalence",
        })
    }
}

impl std::str::FromStr for CheckMode {
    type Err = String;

    fn from_str(s: &str) -> Result<CheckMode, String> {
        match s {
            "stimulus" => Ok(CheckMode::Stimulus),
            "equivalence" => Ok(CheckMode::Equivalence),
            other => Err(format!("unknown check mode `{other}` (expected stimulus|equivalence)")),
        }
    }
}

/// Evaluation options.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalOptions {
    /// Samples per problem (VerilogEval uses n ≥ k; the paper reports
    /// pass@1/5/10, so n = 10 is the default).
    pub samples_per_problem: u32,
    /// ks to report.
    pub ks: Vec<u32>,
    /// Maximum new tokens per completion.
    pub max_new_tokens: usize,
    /// Sampling temperature.
    pub temperature: f32,
    /// RNG seed. Each sample derives its own stream from
    /// `(seed, problem id, sample index)`, so results are independent of
    /// problem order, of the executor's thread count, and of whether
    /// samples decode batched or one at a time.
    pub seed: u64,
    /// Worker threads for the per-problem fan-out (`0` = auto).
    pub threads: usize,
    /// Inference path (defaults to the batched session engine).
    pub engine: EngineMode,
    /// Simulation backend for the functional checks (defaults to the
    /// compiled bytecode VM; the reference engine is pinned bit-identical,
    /// so this is a throughput knob, never a semantic one).
    pub sim: SimMode,
    /// Kernel family for the session engine (`--kernel` on the CLI).
    /// `Blocked`/`Reference`/`Simd` sessions are bit-identical to each
    /// other; `QuantizedInt8` quantizes the effective weights at session
    /// build and is gated by a pass@k parity test against f32. The legacy
    /// per-sample engine ignores this and always decodes in f32.
    pub kernel: KernelMode,
    /// Functional-check strategy (`--check` on the CLI).
    pub check: CheckMode,
    /// Input-bit cap for the exhaustive equivalence sweep
    /// (`--max-eq-inputs`): combinational problems whose total input width
    /// fits are swept over all `2^bits` assignments; the rest use stimulus
    /// vectors. Ignored under [`CheckMode::Stimulus`].
    pub max_eq_inputs: u32,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            samples_per_problem: 10,
            ks: vec![1, 5, 10],
            max_new_tokens: 160,
            temperature: 0.5,
            seed: 0xEA_11,
            threads: 0,
            engine: EngineMode::default(),
            sim: SimMode::default(),
            kernel: KernelMode::default(),
            check: CheckMode::default(),
            max_eq_inputs: DEFAULT_MAX_EQ_INPUTS,
        }
    }
}

/// Result for one problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProblemResult {
    /// Problem id.
    pub id: String,
    /// Samples drawn.
    pub n: u32,
    /// Samples that passed the functional check.
    pub passed: u32,
    /// Samples that at least parsed + checked syntactically.
    pub syntactically_valid: u32,
    /// Prompt tokens dropped from the head to fit the model's context
    /// window (0 when the prompt fits; the forced module header is the
    /// prompt tail, so it always survives a clamp).
    pub prompt_dropped_tokens: u32,
}

/// Aggregated evaluation result for one split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Split evaluated.
    pub split_name: String,
    /// Per-problem details.
    pub problems: Vec<ProblemResult>,
    /// ks the aggregate was computed over.
    pub ks: Vec<u32>,
}

impl EvalResult {
    /// Mean pass@k across problems (as a percentage, like Table I).
    pub fn pass_at(&self, k: u32) -> f64 {
        if self.problems.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.problems.iter().map(|p| pass_at_k(p.n, p.passed, k)).sum();
        100.0 * sum / self.problems.len() as f64
    }

    /// Mean syntax-validity rate in percent.
    pub fn syntax_rate(&self) -> f64 {
        let (mut ok, mut total) = (0u64, 0u64);
        for p in &self.problems {
            ok += u64::from(p.syntactically_valid);
            total += u64::from(p.n);
        }
        if total == 0 {
            0.0
        } else {
            100.0 * ok as f64 / total as f64
        }
    }
}

/// FNV-1a over a candidate source and its problem id — the verdict-cache
/// key (distinct problems check the same source against different goldens).
fn fnv1a64(source: &[u8], problem_id: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h = OFFSET;
    for chunk in [source, b"\x00", problem_id.as_bytes()] {
        for &b in chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Saturating `usize → u32` for token counts surfaced in
/// [`ProblemResult`]: a pathological prompt that drops more than
/// `u32::MAX` tokens reports the ceiling instead of silently wrapping
/// (the old `as u32` cast truncated — 2^32 dropped tokens reported as 0).
pub(crate) fn saturating_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Near-greedy floor of the per-problem temperature cycle.
const TEMPERATURE_FLOOR: f64 = 0.05;

/// Temperature for sample `i` of `n`: linear from [`TEMPERATURE_FLOOR`]
/// at `i = 0` to **exactly** `ceiling` at `i = n - 1` (a single sample
/// stays near-greedy). The interpolation runs in `f64` — `u32 → f64` is
/// exact for every `i`/`n`, so there is no lossy narrowing even for huge
/// sample counts — and only the final value narrows to `f32`.
pub fn sample_temperature(i: u32, n: u32, ceiling: f32) -> f32 {
    if n <= 1 || i == 0 {
        return TEMPERATURE_FLOOR as f32;
    }
    if i >= n - 1 {
        // Pin the endpoint: the documented ceiling is reached exactly,
        // free of round-trip error through the interpolation arithmetic.
        return ceiling;
    }
    let frac = f64::from(i) / f64::from(n - 1);
    (TEMPERATURE_FLOOR + frac * (f64::from(ceiling) - TEMPERATURE_FLOOR)) as f32
}

/// Evaluates `lm` on `problems`.
pub fn evaluate(
    lm: &TransformerLm,
    tk: &Tokenizer,
    problems: &[Problem],
    opts: &EvalOptions,
) -> EvalResult {
    let _span = pyranet_obs::global().span("eval.run");
    let split_name =
        problems.first().map(|p| p.split.to_string()).unwrap_or_else(|| Split::Machine.to_string());
    // Problems are independent: sample i of a problem derives its RNG
    // stream from (seed, problem id, i), so the fan-out is a pure
    // per-problem map and pass@k is identical at any thread count, under
    // any problem ordering, and on either engine.
    let exec = ExecConfig::new().threads(opts.threads);
    let out = par_map(&exec, problems.iter().collect(), |problem: &Problem| {
        // VerilogEval hands the model the module header and scores the body
        // completion; we do the same — the header tokens are forced as a
        // generation prefix and prepended to the decoded candidate.
        let header = problem.header();
        let header_ids = tk.encode(&header);
        let mut prompt = tk.encode_prompt(&problem.prompt());
        prompt.extend_from_slice(&header_ids);
        let n = opts.samples_per_problem;
        // Temperature cycles from near-greedy up to `opts.temperature`
        // across the n samples (mirroring the paper's multi-temperature
        // querying) so pass@1 rewards confidence and pass@10 diversity.
        let sample_opts: Vec<SampleOptions> = (0..n)
            .map(|i| SampleOptions {
                temperature: sample_temperature(i, n, opts.temperature),
                top_k: 0,
            })
            .collect();
        let mut rngs: Vec<ChaCha8Rng> = (0..n)
            .map(|i| {
                ChaCha8Rng::seed_from_u64(stream_seed_str(
                    opts.seed,
                    &format!("{}#{i}", problem.id),
                ))
            })
            .collect();
        let (bodies, dropped): (Vec<Vec<usize>>, u32) = match opts.engine {
            EngineMode::Session => {
                // One prefill for the whole problem; the KV cache is forked
                // (borrowed, not copied) across all n samples, which then
                // decode together in lock-step batches.
                let mut session = DecodeSession::new_with(lm, opts.kernel);
                let prefix = session.prefill(&prompt, opts.max_new_tokens);
                let dropped = saturating_u32(prefix.dropped_prompt_tokens());
                let gens =
                    session.decode_batch(&prefix, opts.max_new_tokens, &sample_opts, &mut rngs);
                (gens.into_iter().map(|g| g.ids).collect(), dropped)
            }
            EngineMode::PerSample => {
                let plan = PromptPlan::new(prompt.len(), opts.max_new_tokens, lm.cfg.max_seq);
                let bodies = sample_opts
                    .iter()
                    .zip(rngs.iter_mut())
                    .map(|(so, rng)| lm.generate_legacy(&prompt, opts.max_new_tokens, so, rng))
                    .collect();
                (bodies, saturating_u32(plan.dropped_prompt_tokens))
            }
        };
        let mut passed = 0u32;
        let mut valid = 0u32;
        // The golden model is prepared (and, in compiled mode, lowered to
        // bytecode) once per problem and reused across all n samples.
        let strategy = match opts.check {
            CheckMode::Stimulus => CheckStrategy::Stimulus,
            CheckMode::Equivalence => {
                CheckStrategy::Equivalence { max_input_bits: opts.max_eq_inputs }
            }
        };
        let mut bench = ProblemBench::new_with_check(&problem.family, opts.sim, strategy);
        // Identical completions are common at low temperature; their
        // verdicts are deduplicated by content hash so each distinct
        // candidate is simulated exactly once.
        let mut verdicts: HashMap<u64, FunctionalVerdict> = HashMap::new();
        let mut cache_hits = 0u64;
        for body in &bodies {
            let mut ids = header_ids.clone();
            ids.extend_from_slice(body);
            let text = tk.decode(&ids);
            if pyranet_verilog::check_source(&text).is_compilable() {
                valid += 1;
            }
            let key = fnv1a64(text.as_bytes(), &problem.id);
            let verdict = match verdicts.get(&key) {
                Some(v) => {
                    cache_hits += 1;
                    v.clone()
                }
                None => {
                    let v = bench.check(&text);
                    verdicts.insert(key, v.clone());
                    v
                }
            };
            if verdict.is_pass() {
                passed += 1;
            }
        }
        let result = ProblemResult {
            id: problem.id.clone(),
            n,
            passed,
            syntactically_valid: valid,
            prompt_dropped_tokens: dropped,
        };
        (result, bench.stats, cache_hits)
    });
    // Aggregate into the metrics registry once, after the fan-out, so the
    // hot per-problem path stays free of registry traffic.
    let mut sim_stats = SimStats::default();
    let mut cache_hits = 0u64;
    let out: Vec<ProblemResult> = out
        .into_iter()
        .map(|(result, stats, hits)| {
            sim_stats.merge(&stats);
            cache_hits += hits;
            result
        })
        .collect();
    let obs = pyranet_obs::global();
    obs.counter(&format!("eval.kernel.{}", opts.kernel)).inc();
    obs.counter("eval.problems").add(out.len() as u64);
    obs.counter("eval.samples").add(out.iter().map(|p| u64::from(p.n)).sum());
    obs.counter("eval.passed").add(out.iter().map(|p| u64::from(p.passed)).sum());
    obs.counter("eval.syntax_valid")
        .add(out.iter().map(|p| u64::from(p.syntactically_valid)).sum());
    obs.counter("sim.programs").add(sim_stats.programs);
    obs.counter("sim.cache_hits").add(cache_hits);
    obs.counter("sim.vectors").add(sim_stats.vectors);
    obs.counter("sim.steps").add(sim_stats.steps);
    if opts.check == CheckMode::Equivalence {
        obs.counter("eval.equivalence.exhaustive").add(sim_stats.exhaustive_checks);
        obs.counter("eval.equivalence.fallback").add(sim_stats.fallback_checks);
        obs.counter("eval.equivalence.vectors").add(sim_stats.vectors);
    }
    obs.histogram("sim.compile.seconds", &pyranet_obs::DURATION_BUCKETS)
        .observe(sim_stats.compile_time.as_secs_f64());
    obs.histogram("sim.run.seconds", &pyranet_obs::DURATION_BUCKETS)
        .observe(sim_stats.run_time.as_secs_f64());
    EvalResult { split_name, problems: out, ks: opts.ks.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::machine_split;

    fn fake_result(counts: &[(u32, u32)]) -> EvalResult {
        EvalResult {
            split_name: "Verilog-Machine".into(),
            problems: counts
                .iter()
                .enumerate()
                .map(|(i, (n, c))| ProblemResult {
                    id: format!("p{i}"),
                    n: *n,
                    passed: *c,
                    syntactically_valid: *c,
                    prompt_dropped_tokens: 0,
                })
                .collect(),
            ks: vec![1, 5, 10],
        }
    }

    #[test]
    fn dropped_token_counts_saturate_instead_of_wrapping() {
        assert_eq!(saturating_u32(0), 0);
        assert_eq!(saturating_u32(41), 41);
        assert_eq!(saturating_u32(u32::MAX as usize), u32::MAX);
        // The old `as u32` cast wrapped these to 0 and 5 respectively.
        assert_eq!(saturating_u32(u32::MAX as usize + 1), u32::MAX);
        assert_eq!(saturating_u32(u32::MAX as usize + 6), u32::MAX);
        assert_eq!(saturating_u32(usize::MAX), u32::MAX);
    }

    #[test]
    fn aggregate_pass_at_k() {
        let r = fake_result(&[(10, 10), (10, 0)]);
        assert!((r.pass_at(1) - 50.0).abs() < 1e-9);
        assert!((r.pass_at(10) - 50.0).abs() < 1e-9);
        let r = fake_result(&[(10, 1)]);
        assert!((r.pass_at(1) - 10.0).abs() < 1e-9);
        assert!((r.pass_at(10) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn pass_at_k_monotone_in_k_aggregate() {
        let r = fake_result(&[(10, 2), (10, 5), (10, 0), (10, 9)]);
        assert!(r.pass_at(1) <= r.pass_at(5));
        assert!(r.pass_at(5) <= r.pass_at(10));
    }

    #[test]
    fn empty_result_is_zero() {
        let r = fake_result(&[]);
        assert_eq!(r.pass_at(1), 0.0);
        assert_eq!(r.syntax_rate(), 0.0);
    }

    #[test]
    fn temperature_cycle_spans_floor_to_ceiling_exactly() {
        let t = 0.5f32;
        for n in [2u32, 3, 10, 1_000_003] {
            assert_eq!(sample_temperature(0, n, t).to_bits(), 0.05f32.to_bits(), "n={n}");
            // The documented ceiling is reached *exactly* at the last
            // sample — the pre-fix schedule overshot to `t + 0.05`.
            assert_eq!(sample_temperature(n - 1, n, t).to_bits(), t.to_bits(), "n={n}");
        }
        // A single sample stays near-greedy.
        assert_eq!(sample_temperature(0, 1, t).to_bits(), 0.05f32.to_bits());
        assert_eq!(sample_temperature(0, 0, t).to_bits(), 0.05f32.to_bits());
    }

    #[test]
    fn temperature_cycle_is_monotone_and_bounded() {
        let t = 0.7f32;
        let n = 64u32;
        let mut prev = f32::MIN;
        for i in 0..n {
            let temp = sample_temperature(i, n, t);
            assert!(temp >= prev, "i={i}: {temp} < {prev}");
            assert!((0.05..=t).contains(&temp), "i={i}: {temp} outside [0.05, {t}]");
            prev = temp;
        }
        // Counts beyond u16 (the old lossy cast) interpolate cleanly.
        let big = u32::MAX;
        assert!(sample_temperature(big / 2, big, t) > 0.05);
        assert!(sample_temperature(big / 2, big, t) < t);
    }

    #[test]
    fn untrained_model_scores_near_zero() {
        // A fresh random model emits garbage; the harness must survive and
        // report ~0 without panicking.
        let tk = pyranet_model::Tokenizer::build(
            ["module m ( input a , output y ) ; assign y = a ; endmodule"].iter().copied(),
            1,
        );
        let cfg = pyranet_model::ModelConfig {
            name: "tiny".into(),
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            d_ff: 32,
            max_seq: 64,
            learning_rate: 1e-3,
            seed: 3,
        };
        let lm = pyranet_model::TransformerLm::new(cfg, tk.vocab_size());
        let problems: Vec<_> = machine_split().into_iter().take(2).collect();
        let opts =
            EvalOptions { samples_per_problem: 2, max_new_tokens: 24, ..EvalOptions::default() };
        let r = evaluate(&lm, &tk, &problems, &opts);
        assert_eq!(r.problems.len(), 2);
        assert!(r.pass_at(1) < 50.0, "random model should not pass");
    }
}
