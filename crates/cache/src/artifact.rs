//! The on-disk content-addressed artifact store.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/objects/<hh>/<16-hex object id>.art   one (sample, stage) artifact
//! <root>/tmp/<pid>-<seq>-<16-hex>              in-flight writes (crash residue)
//! <root>/cache-manifest.json                   stage provenance (see `manifest`)
//! ```
//!
//! Every entry is written to `tmp/` first and published with an atomic
//! `rename`, so a crash mid-build never leaves a half-written object —
//! the next run simply resumes from whatever was published. Entries are
//! self-verifying: a header line carries the full [`StageKey`] parts and
//! an FNV-1a checksum of the payload, and [`ArtifactStore::get`] checks
//! all of them before trusting the payload. Any mismatch — truncation, a
//! flipped byte, a 64-bit object-id collision — degrades to
//! [`Lookup::Invalid`] (callers recompute), never to a wrong verdict.
//!
//! The store records `cache.{hits,misses,writes,invalidated,write_errors}`
//! counters and a `cache.lookup.seconds` histogram into the process-global
//! `pyranet-obs` registry. Recording is passive: compute paths never read
//! a metric back.

use crate::hasher::{format_hash, hash_bytes, StageKey};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Subdirectory holding published artifacts.
const OBJECTS_DIR: &str = "objects";
/// Subdirectory holding in-flight writes.
const TMP_DIR: &str = "tmp";
/// Artifact file extension.
const ART_EXT: &str = "art";

/// Outcome of a cache lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup<T> {
    /// Entry present, verified, and decoded.
    Hit(T),
    /// No entry under this key.
    Miss,
    /// An entry exists but failed verification (corruption, truncation,
    /// key collision, undecodable payload) — treat as a miss and
    /// recompute; the stale entry will be overwritten.
    Invalid,
}

impl<T> Lookup<T> {
    /// The hit payload, if any.
    pub fn hit(self) -> Option<T> {
        match self {
            Lookup::Hit(v) => Some(v),
            _ => None,
        }
    }
}

/// Entry header: the key parts plus the payload checksum, one JSON line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct EntryHeader {
    stage: String,
    content: String,
    config: String,
    checksum: String,
}

/// A content-addressed artifact store rooted at one directory.
///
/// Thread-safe by construction: lookups are independent file reads, and
/// concurrent writes of the same key publish byte-identical entries (the
/// payload is a pure function of the key), so whichever rename lands last
/// wins without changing the stored bytes.
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
    seq: AtomicU64,
    hits: pyranet_obs::Counter,
    misses: pyranet_obs::Counter,
    writes: pyranet_obs::Counter,
    invalidated: pyranet_obs::Counter,
    write_errors: pyranet_obs::Counter,
    lookup_seconds: pyranet_obs::Histogram,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store at `root` and sweeps crash
    /// residue out of `tmp/`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures (e.g. an unwritable root).
    pub fn open(root: &Path) -> io::Result<ArtifactStore> {
        std::fs::create_dir_all(root.join(OBJECTS_DIR))?;
        let tmp = root.join(TMP_DIR);
        std::fs::create_dir_all(&tmp)?;
        // Tmp entries are abandoned in-flight writes from a crashed run;
        // published objects are never in here, so sweeping is safe.
        if let Ok(entries) = std::fs::read_dir(&tmp) {
            for entry in entries.flatten() {
                std::fs::remove_file(entry.path()).ok();
            }
        }
        let obs = pyranet_obs::global();
        Ok(ArtifactStore {
            root: root.to_path_buf(),
            seq: AtomicU64::new(0),
            hits: obs.counter("cache.hits"),
            misses: obs.counter("cache.misses"),
            writes: obs.counter("cache.writes"),
            invalidated: obs.counter("cache.invalidated"),
            write_errors: obs.counter("cache.write_errors"),
            lookup_seconds: obs.histogram("cache.lookup.seconds", &pyranet_obs::DURATION_BUCKETS),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Published path of `key`'s entry: two-hex-digit bucket + object id.
    pub fn object_path(&self, key: &StageKey) -> PathBuf {
        let id = format_hash(key.object_id());
        self.root.join(OBJECTS_DIR).join(&id[..2]).join(format!("{id}.{ART_EXT}"))
    }

    /// Looks up `key`, verifying the entry header against the key and the
    /// payload against its checksum before decoding.
    pub fn get<T: Deserialize>(&self, key: &StageKey) -> Lookup<T> {
        let start = std::time::Instant::now();
        let out = self.get_unmetered(key);
        self.lookup_seconds.observe(start.elapsed().as_secs_f64());
        match &out {
            Lookup::Hit(_) => self.hits.inc(),
            Lookup::Miss => self.misses.inc(),
            Lookup::Invalid => self.invalidated.inc(),
        }
        out
    }

    fn get_unmetered<T: Deserialize>(&self, key: &StageKey) -> Lookup<T> {
        let bytes = match std::fs::read(self.object_path(key)) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Lookup::Miss,
            // Unreadable entry (permissions, I/O error): recompute.
            Err(_) => return Lookup::Invalid,
        };
        let Ok(text) = std::str::from_utf8(&bytes) else { return Lookup::Invalid };
        let Some((header_line, payload)) = text.split_once('\n') else { return Lookup::Invalid };
        let Ok(header) = serde_json::from_str::<EntryHeader>(header_line) else {
            return Lookup::Invalid;
        };
        // Key verification: a 64-bit object-id collision, or an entry
        // renamed into the wrong slot, must read as a miss.
        if header.stage != key.stage
            || header.content != format_hash(key.content)
            || header.config != format_hash(key.config)
        {
            return Lookup::Invalid;
        }
        if header.checksum != format_hash(hash_bytes(payload.as_bytes())) {
            return Lookup::Invalid;
        }
        match serde_json::from_str::<T>(payload) {
            Ok(v) => Lookup::Hit(v),
            Err(_) => Lookup::Invalid,
        }
    }

    /// Stores `value` under `key`: renders the checksummed entry, writes
    /// it to `tmp/`, and publishes it with an atomic rename.
    ///
    /// The cache is advisory — callers are expected to log-and-continue on
    /// failure (the error is also counted in `cache.write_errors`).
    ///
    /// # Errors
    ///
    /// Serialization and file-system failures.
    pub fn put<T: Serialize>(&self, key: &StageKey, value: &T) -> io::Result<()> {
        let result = self.put_inner(key, value);
        match &result {
            Ok(()) => self.writes.inc(),
            Err(_) => self.write_errors.inc(),
        }
        result
    }

    fn put_inner<T: Serialize>(&self, key: &StageKey, value: &T) -> io::Result<()> {
        let payload = serde_json::to_string(value)?;
        let header = EntryHeader {
            stage: key.stage.to_owned(),
            content: format_hash(key.content),
            config: format_hash(key.config),
            checksum: format_hash(hash_bytes(payload.as_bytes())),
        };
        let mut entry = serde_json::to_string(&header)?;
        entry.push('\n');
        entry.push_str(&payload);

        let id = format_hash(key.object_id());
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self.root.join(TMP_DIR).join(format!("{}-{seq}-{id}", std::process::id()));
        std::fs::write(&tmp, entry.as_bytes())?;
        let dst = self.object_path(key);
        if let Some(bucket) = dst.parent() {
            std::fs::create_dir_all(bucket)?;
        }
        // Atomic publish: concurrent writers of the same key rename
        // byte-identical files, so last-wins is harmless; a crash before
        // this point leaves only tmp residue, swept at the next open.
        std::fs::rename(&tmp, &dst)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hasher::{content_hash, Fingerprint};
    use std::sync::atomic::AtomicUsize;

    fn temp_root(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!("pyranet-cache-{tag}-{}-{n}", std::process::id()))
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Verdict {
        kept: bool,
        score: u32,
    }

    fn key(src: &str) -> StageKey {
        let fp = Fingerprint::stage("test", 1).knob("mode", "on").finish();
        StageKey::new("test", content_hash(src), fp)
    }

    #[test]
    fn round_trip_hit() {
        let root = temp_root("rt");
        let store = ArtifactStore::open(&root).unwrap();
        let k = key("module m; endmodule");
        assert_eq!(store.get::<Verdict>(&k), Lookup::Miss);
        let v = Verdict { kept: true, score: 17 };
        store.put(&k, &v).unwrap();
        assert_eq!(store.get::<Verdict>(&k), Lookup::Hit(v));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn different_content_or_config_misses() {
        let root = temp_root("keys");
        let store = ArtifactStore::open(&root).unwrap();
        let k = key("module a; endmodule");
        store.put(&k, &Verdict { kept: true, score: 1 }).unwrap();
        assert_eq!(store.get::<Verdict>(&key("module b; endmodule")), Lookup::Miss);
        let other_cfg = StageKey::new("test", k.content, k.config ^ 1);
        assert_eq!(store.get::<Verdict>(&other_cfg), Lookup::Miss);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn flipped_byte_reads_as_invalid_and_recovers_on_rewrite() {
        let root = temp_root("flip");
        let store = ArtifactStore::open(&root).unwrap();
        let k = key("module m(input a, output y); assign y = ~a; endmodule");
        let v = Verdict { kept: true, score: 20 };
        store.put(&k, &v).unwrap();
        let path = store.object_path(&k);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip every position in turn: header or payload, the entry must
        // never decode to a different verdict.
        for pos in 0..bytes.len() {
            bytes[pos] ^= 0x20;
            std::fs::write(&path, &bytes).unwrap();
            let got = store.get::<Verdict>(&k);
            assert!(
                got == Lookup::Invalid || got == Lookup::Hit(v.clone()),
                "pos {pos}: corrupted entry decoded to {got:?}"
            );
            bytes[pos] ^= 0x20;
        }
        // Recompute-and-rewrite heals the slot.
        std::fs::write(&path, b"garbage").unwrap();
        assert_eq!(store.get::<Verdict>(&k), Lookup::Invalid);
        store.put(&k, &v).unwrap();
        assert_eq!(store.get::<Verdict>(&k), Lookup::Hit(v));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn truncation_is_invalid() {
        let root = temp_root("trunc");
        let store = ArtifactStore::open(&root).unwrap();
        let k = key("module t; endmodule");
        store.put(&k, &Verdict { kept: false, score: 0 }).unwrap();
        let path = store.object_path(&k);
        let bytes = std::fs::read(&path).unwrap();
        for keep in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..keep]).unwrap();
            assert_eq!(store.get::<Verdict>(&k), Lookup::Invalid, "kept {keep} bytes");
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn colliding_slot_with_wrong_header_is_invalid() {
        // Simulate a 64-bit object-id collision: an entry for key A
        // sitting in key B's slot must verify-fail, not decode.
        let root = temp_root("collide");
        let store = ArtifactStore::open(&root).unwrap();
        let a = key("module a; endmodule");
        let b = key("module b; endmodule");
        store.put(&a, &Verdict { kept: true, score: 9 }).unwrap();
        let b_path = store.object_path(&b);
        std::fs::create_dir_all(b_path.parent().unwrap()).unwrap();
        std::fs::copy(store.object_path(&a), &b_path).unwrap();
        assert_eq!(store.get::<Verdict>(&b), Lookup::Invalid);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn reopen_sweeps_tmp_residue_and_keeps_objects() {
        let root = temp_root("sweep");
        let store = ArtifactStore::open(&root).unwrap();
        let k = key("module s; endmodule");
        store.put(&k, &Verdict { kept: true, score: 3 }).unwrap();
        // A crashed run leaves a half-written tmp file behind.
        std::fs::write(root.join(TMP_DIR).join("12345-0-deadbeef"), b"partial").unwrap();
        drop(store);
        let store = ArtifactStore::open(&root).unwrap();
        assert_eq!(
            std::fs::read_dir(root.join(TMP_DIR)).unwrap().count(),
            0,
            "tmp residue swept on open"
        );
        assert_eq!(
            store.get::<Verdict>(&k),
            Lookup::Hit(Verdict { kept: true, score: 3 }),
            "published objects survive reopen"
        );
        std::fs::remove_dir_all(&root).ok();
    }
}
