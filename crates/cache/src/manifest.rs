//! Stage provenance for a cache root.
//!
//! The [`CacheManifest`] sits next to `objects/` and records, per stage,
//! the artifact-format version and config fingerprint the store was last
//! written with. It is informational plus a fast staleness signal: keys
//! already embed the fingerprint, so a knob change makes old entries
//! unreachable whether or not the manifest is rewritten — but the
//! manifest lets tools (and the shard `manifest.json`, which embeds the
//! same [`StageProvenance`] records) report *which* stage configuration
//! produced a dataset.

use crate::hasher::format_hash;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// File name of the manifest inside a cache root.
pub const CACHE_MANIFEST_FILE: &str = "cache-manifest.json";

/// Manifest format version; bump on incompatible layout changes.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// One stage's provenance: name, artifact-format version, and the config
/// fingerprint (16 hex digits) its artifacts are keyed under.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageProvenance {
    pub stage: String,
    pub version: u32,
    pub fingerprint: String,
}

impl StageProvenance {
    /// Builds a record from a stage's raw fingerprint value.
    pub fn new(stage: &str, version: u32, fingerprint: u64) -> StageProvenance {
        StageProvenance { stage: stage.to_owned(), version, fingerprint: format_hash(fingerprint) }
    }
}

/// The cache root's provenance manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheManifest {
    pub format_version: u32,
    pub stages: Vec<StageProvenance>,
}

impl CacheManifest {
    /// A manifest over the given stage records.
    pub fn new(stages: Vec<StageProvenance>) -> CacheManifest {
        CacheManifest { format_version: CACHE_FORMAT_VERSION, stages }
    }

    /// Writes the manifest atomically (tmp + rename) into `root`.
    ///
    /// # Errors
    ///
    /// Serialization and file-system failures.
    pub fn save(&self, root: &Path) -> io::Result<()> {
        let text = serde_json::to_string_pretty(self)?;
        let tmp = root.join(format!("{CACHE_MANIFEST_FILE}.tmp-{}", std::process::id()));
        std::fs::write(&tmp, text.as_bytes())?;
        std::fs::rename(&tmp, root.join(CACHE_MANIFEST_FILE))?;
        Ok(())
    }

    /// Loads the manifest from `root`; `Ok(None)` when absent (fresh
    /// root) or unreadable/incompatible (the store still works — keys
    /// self-invalidate — so a bad manifest is not fatal).
    pub fn load(root: &Path) -> io::Result<Option<CacheManifest>> {
        let path = root.join(CACHE_MANIFEST_FILE);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        match serde_json::from_str::<CacheManifest>(&text) {
            Ok(m) if m.format_version == CACHE_FORMAT_VERSION => Ok(Some(m)),
            _ => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_root(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::SeqCst);
        let root =
            std::env::temp_dir().join(format!("pyranet-manifest-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&root).unwrap();
        root
    }

    #[test]
    fn save_load_round_trip() {
        let root = temp_root("rt");
        let m = CacheManifest::new(vec![
            StageProvenance::new("broken", 1, 0xdead_beef),
            StageProvenance::new("syntax_rank", 1, 0x1234),
        ]);
        m.save(&root).unwrap();
        assert_eq!(CacheManifest::load(&root).unwrap(), Some(m));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn absent_or_garbage_manifest_loads_as_none() {
        let root = temp_root("none");
        assert_eq!(CacheManifest::load(&root).unwrap(), None);
        std::fs::write(root.join(CACHE_MANIFEST_FILE), b"not json").unwrap();
        assert_eq!(CacheManifest::load(&root).unwrap(), None);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn wrong_format_version_loads_as_none() {
        let root = temp_root("ver");
        let mut m = CacheManifest::new(vec![]);
        m.format_version = CACHE_FORMAT_VERSION + 1;
        m.save(&root).unwrap();
        assert_eq!(CacheManifest::load(&root).unwrap(), None);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn fingerprint_renders_as_hex() {
        let p = StageProvenance::new("dedup_sig", 2, 0xaf);
        assert_eq!(p.fingerprint, "00000000000000af");
        assert_eq!(p.version, 2);
    }
}
