//! Stable key derivation for the content-addressed store.
//!
//! Every artifact is addressed by a [`StageKey`] — the triple of
//!
//! * **stage name** — which pipeline stage produced the artifact;
//! * **content hash** — FNV-1a 64 of the sample bytes the stage consumed;
//! * **config fingerprint** — FNV-1a 64 over the stage's knobs
//!   ([`Fingerprint`]), so changing a knob (jaccard threshold, sim mode,
//!   rank-judge version) invalidates exactly the stages that read it.
//!
//! The three parts fold into one 64-bit object id that names the on-disk
//! entry. A 64-bit id can collide in principle, so the store writes all
//! three parts into the entry header and verifies them on read — a
//! collision degrades to a cache miss (recompute), never a wrong verdict.

/// Streaming FNV-1a 64-bit hasher.
///
/// The same function family the shard manifest uses for checksums
/// (`pyranet-pipeline::persist::fnv1a64`), in streaming form so keys can
/// be derived over multiple fields without concatenating buffers.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// Fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Folds `bytes` into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Content hash of a sample's source text — the per-sample half of every
/// stage key.
pub fn content_hash(source: &str) -> u64 {
    hash_bytes(source.as_bytes())
}

/// Renders a hash the way keys, headers, and manifests store it: 16
/// lowercase hex digits.
pub fn format_hash(v: u64) -> String {
    format!("{v:016x}")
}

/// Builder for a stage's config fingerprint: an order-sensitive fold of
/// `name=value` knob pairs. Feed knobs in a fixed order — the fingerprint
/// is stable across runs and processes, and any value change (or version
/// bump) produces a different fingerprint.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint {
    h: Fnv64,
}

impl Fingerprint {
    /// Starts a fingerprint for `stage` at artifact-format `version`.
    /// The version participates in the fingerprint, so bumping it retires
    /// every previously stored artifact of the stage.
    pub fn stage(stage: &str, version: u32) -> Fingerprint {
        let mut h = Fnv64::new();
        h.write(stage.as_bytes());
        h.write_u64(u64::from(version));
        Fingerprint { h }
    }

    /// Folds one `name=value` knob pair.
    pub fn knob(mut self, name: &str, value: &str) -> Fingerprint {
        self.h.write(name.as_bytes());
        self.h.write(b"=");
        self.h.write(value.as_bytes());
        self.h.write(b";");
        Fingerprint { h: self.h }
    }

    /// Folds a numeric knob. `f64` knobs go through [`f64::to_bits`] so
    /// the fingerprint is exact (no formatting round-trip).
    pub fn knob_f64(self, name: &str, value: f64) -> Fingerprint {
        self.knob(name, &format_hash(value.to_bits()))
    }

    /// The finished 64-bit fingerprint.
    pub fn finish(&self) -> u64 {
        self.h.finish()
    }
}

/// The full address of one `(sample, stage)` artifact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StageKey {
    /// Stage name (e.g. `"syntax_rank"`).
    pub stage: &'static str,
    /// Content hash of the sample the stage consumed.
    pub content: u64,
    /// The stage's config fingerprint.
    pub config: u64,
}

impl StageKey {
    /// Builds a key.
    pub fn new(stage: &'static str, content: u64, config: u64) -> StageKey {
        StageKey { stage, content, config }
    }

    /// The 64-bit object id naming the on-disk entry: FNV-1a over all
    /// three parts. Collisions are tolerated — the store verifies the
    /// parts from the entry header on read.
    pub fn object_id(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write(self.stage.as_bytes());
        h.write_u64(self.content);
        h.write_u64(self.config);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors — same family as the shard
        // manifest checksums.
        assert_eq!(hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_bytes(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), hash_bytes(b"foobar"));
    }

    #[test]
    fn fingerprint_is_stable_and_knob_sensitive() {
        let base = Fingerprint::stage("dedup", 1).knob_f64("jaccard", 0.85).finish();
        let again = Fingerprint::stage("dedup", 1).knob_f64("jaccard", 0.85).finish();
        assert_eq!(base, again, "same knobs, same fingerprint");
        let threshold = Fingerprint::stage("dedup", 1).knob_f64("jaccard", 0.9).finish();
        assert_ne!(base, threshold, "knob value change must invalidate");
        let version = Fingerprint::stage("dedup", 2).knob_f64("jaccard", 0.85).finish();
        assert_ne!(base, version, "version bump must invalidate");
        let stage = Fingerprint::stage("rank", 1).knob_f64("jaccard", 0.85).finish();
        assert_ne!(base, stage, "stage name participates");
    }

    #[test]
    fn f64_knobs_are_bit_exact() {
        // 0.1 + 0.2 != 0.3 in f64; the fingerprint must see the
        // difference because it hashes the bit pattern, not a rendering.
        let a = Fingerprint::stage("s", 1).knob_f64("t", 0.1 + 0.2).finish();
        let b = Fingerprint::stage("s", 1).knob_f64("t", 0.3).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn object_id_depends_on_every_part() {
        let k = StageKey::new("syntax_rank", 1, 2);
        assert_ne!(k.object_id(), StageKey::new("syntax_rank", 1, 3).object_id());
        assert_ne!(k.object_id(), StageKey::new("syntax_rank", 2, 2).object_id());
        assert_ne!(k.object_id(), StageKey::new("dedup_sig", 1, 2).object_id());
        assert_eq!(k.object_id(), StageKey::new("syntax_rank", 1, 2).object_id());
    }

    #[test]
    fn format_hash_is_16_hex() {
        assert_eq!(format_hash(0xaf), "00000000000000af");
        assert_eq!(format_hash(u64::MAX), "ffffffffffffffff");
    }
}
