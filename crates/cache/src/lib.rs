//! # pyranet-cache — content-addressed incremental curation cache
//!
//! Turns `build-dataset` from a batch job into an incremental one: every
//! per-sample stage verdict (filter verdicts, MinHash signatures, syntax
//! and rank verdicts, sim verdicts) is stored under a key derived from
//! the sample's *content*, the *stage* that produced it, and a
//! *fingerprint* of the stage's configuration. A rebuild after editing 1%
//! of the corpus pays recompute for 1% of the samples; everything else is
//! a verified read.
//!
//! Three pieces:
//!
//! * [`hasher`] — [`Fnv64`]/[`Fingerprint`]/[`StageKey`]: stable FNV-1a
//!   key derivation. Changing a knob (jaccard threshold, sim mode,
//!   rank-judge version) changes the fingerprint of exactly the stages
//!   that read it, retiring their artifacts and nothing else.
//! * [`artifact`] — [`ArtifactStore`]: the on-disk CAS. Checksummed
//!   entries, atomic tmp+rename publishes, crash residue swept on open.
//!   Corruption or id collisions degrade to [`Lookup::Invalid`]
//!   (recompute), never a wrong verdict.
//! * [`manifest`] — [`CacheManifest`]/[`StageProvenance`]: records which
//!   stage configurations the store holds; the same records are embedded
//!   into the dataset shard `manifest.json` as provenance.
//!
//! Determinism: lookups are keyed by content, not by position or thread,
//! so a cached run produces byte-identical output to an uncached one at
//! any thread count. Only dedup's cross-sample LSH join re-runs every
//! time — on cached signatures — because its verdict for one sample
//! depends on every other sample.

pub mod artifact;
pub mod hasher;
pub mod manifest;

pub use artifact::{ArtifactStore, Lookup};
pub use hasher::{content_hash, format_hash, hash_bytes, Fingerprint, Fnv64, StageKey};
pub use manifest::{CacheManifest, StageProvenance, CACHE_FORMAT_VERSION, CACHE_MANIFEST_FILE};
