//! `pyranet` — command-line front end for the PyraNet reproduction.
//!
//! Subcommands mirror the curation pipeline's stages so each can be run on
//! real files:
//!
//! ```text
//! pyranet check <file.v>          # Icarus-substitute verdict
//! pyranet rank <file.v>           # 0–20 quality rank + findings
//! pyranet complexity <file.v>     # Basic/Intermediate/Advanced/Expert
//! pyranet sim <file.v> <top> ...  # drive a module interactively
//!                                 # [--backend compiled|reference]
//! pyranet build-dataset [--files N] [--seed S] [--threads T] [--out F.jsonl]
//!                       [--out-dir DIR] [--shard-size N]
//!                       [--sim-check [compiled|reference]]
//!                       [--cache-dir DIR]
//! pyranet stats <dataset.jsonl | shard-dir | manifest.json>
//!                                 # layer pyramid + funnel of a built dataset
//! pyranet train [--files N] [--batch-size B] [--epochs E] [--threads T]
//!               [--kernel reference|blocked|simd|int8]
//!               [--recipe sft|repair] [--repair-out FILE.jsonl]
//! pyranet eval [--split machine|human|both] [--samples N] [--max-new-tokens N]
//!              [--threads T] [--seed S] [--engine session|per-sample]
//!              [--kernel reference|blocked|simd|int8]
//!              [--sim compiled|reference] [--check stimulus|equivalence]
//!              [--max-eq-inputs N] [--files N] [--epochs E] [--json OUT]
//! pyranet serve --requests FILE.jsonl [--out FILE.jsonl] [--max-batch N]
//!               [--queue-depth N] [--prefix-cache N] [--seed S] [--threads T]
//!               [--kernel reference|blocked|simd|int8] [--files N] [--epochs E]
//!               [--shuffle-arrival S]
//! ```
//!
//! `build-dataset`, `train`, `eval`, and `serve` also accept
//! `--metrics OUT.json` (flush-checked JSON snapshot of the
//! process-global metrics registry) and `--verbose` (human-readable
//! metrics summary on stdout).

use pyranet::model::{ModelConfig, TransformerLm};
use pyranet::pipeline::rank::{rank_sample, render_response};
use pyranet::pipeline::ShardSpec;
use pyranet::train::{
    build_tokenizer, export_repair_jsonl, repair_pairs, RepairTrainer, SftTrainer,
};
use pyranet::verilog::lint::lint_module;
use pyranet::verilog::metrics::{measure, ComplexityTier};
use pyranet::verilog::{check_source, parse_module, SimDesign, SimMode, SyntaxVerdict};
use pyranet::{BuildOptions, Layer, PyraNetBuilder, TrainConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("rank") => cmd_rank(&args[1..]),
        Some("complexity") => cmd_complexity(&args[1..]),
        Some("sim") => cmd_sim(&args[1..]),
        Some("build-dataset") => cmd_build(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("eval") => cmd_eval(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}` (try `pyranet help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pyranet: {e}");
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        "pyranet — PyraNet dataset toolchain\n\n\
         USAGE:\n  pyranet check <file.v>\n  pyranet rank <file.v>\n  \
         pyranet complexity <file.v>\n  pyranet sim <file.v> <top> [name=value]... [--clock clk] [--cycles N]\n  \
        \x20            [--backend compiled|reference]\n  \
         pyranet build-dataset [--files N] [--seed S] [--threads T] [--out dataset.jsonl]\n  \
        \x20                     [--out-dir shards/] [--shard-size N] [--sim-check [compiled|reference]]\n  \
        \x20                     [--cache-dir DIR]\n  \
         pyranet stats <dataset.jsonl | shard-dir | manifest.json>\n  \
         pyranet train [--files N] [--seed S] [--threads T] [--batch-size B] [--epochs E] [--max-examples M]\n  \
        \x20            [--kernel reference|blocked|simd|int8] [--recipe sft|repair]\n  \
        \x20            [--repair-out FILE.jsonl]\n  \
         pyranet eval [--split machine|human|both] [--samples N] [--max-new-tokens N]\n  \
        \x20            [--threads T] [--seed S] [--engine session|per-sample]\n  \
        \x20            [--kernel reference|blocked|simd|int8] [--sim compiled|reference]\n  \
        \x20            [--check stimulus|equivalence] [--max-eq-inputs N]\n  \
        \x20            [--files N] [--epochs E] [--json OUT]\n  \
         pyranet serve --requests FILE.jsonl [--out FILE.jsonl] [--max-batch N]\n  \
        \x20            [--queue-depth N] [--prefix-cache N] [--seed S] [--threads T]\n  \
        \x20            [--kernel reference|blocked|simd|int8] [--files N] [--epochs E]\n  \
        \x20            [--shuffle-arrival S]\n\n\
         build-dataset, train, eval, and serve also accept:\n  \
         --metrics OUT.json   write a JSON snapshot of all recorded metrics\n  \
         --verbose            print a human-readable metrics summary"
    );
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// `--metrics OUT.json` / `--verbose` state shared by `build-dataset`,
/// `train`, and `eval`. Recording is always on (the registry is
/// process-global and costs a few atomic adds); these flags only control
/// whether the end-of-run snapshot is exported.
#[derive(Debug, Default)]
struct MetricsArgs {
    out: Option<String>,
    verbose: bool,
}

impl MetricsArgs {
    /// Snapshots the global registry: writes the JSON export (flush-checked,
    /// same discipline as the dataset writers) and/or prints the human
    /// summary.
    fn finish(&self) -> Result<(), String> {
        if self.out.is_none() && !self.verbose {
            return Ok(());
        }
        let snap = pyranet::obs::global().snapshot();
        if let Some(path) = &self.out {
            use std::io::Write;
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            let mut w = std::io::BufWriter::new(file);
            w.write_all(snap.to_json().as_bytes()).map_err(|e| format!("write failed: {e}"))?;
            w.write_all(b"\n").map_err(|e| format!("write failed: {e}"))?;
            // Explicit flush: BufWriter's Drop swallows errors.
            w.flush().map_err(|e| format!("write failed: {e}"))?;
            println!("wrote {} metric(s) to {path}", snap.entries.len());
        }
        if self.verbose {
            print!("{}", snap.render());
        }
        Ok(())
    }
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: pyranet check <file.v>")?;
    let src = read_file(path)?;
    match check_source(&src) {
        SyntaxVerdict::Clean => println!("{path}: clean"),
        SyntaxVerdict::DependencyIssue { missing_modules } => {
            println!(
                "{path}: compiles with dependency issues (missing: {})",
                missing_modules.join(", ")
            );
        }
        SyntaxVerdict::SyntaxError { line, message } => {
            println!("{path}:{line}: syntax error: {message}");
        }
    }
    Ok(())
}

fn cmd_rank(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: pyranet rank <file.v>")?;
    let src = read_file(path)?;
    let module = parse_module(&src).map_err(|e| e.to_string())?;
    let rank = rank_sample(&module, &src);
    println!("{}", render_response(rank));
    let report = lint_module(&module, &src);
    if report.findings.is_empty() {
        println!("no findings");
    } else {
        for f in &report.findings {
            println!("  line {:>4}: {:?} — {}", f.line, f.kind, f.message);
        }
    }
    Ok(())
}

fn cmd_complexity(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: pyranet complexity <file.v>")?;
    let src = read_file(path)?;
    let module = parse_module(&src).map_err(|e| e.to_string())?;
    let metrics = measure(&module);
    let score = metrics.score();
    println!("{} (score {score:.1})", ComplexityTier::classify(score));
    println!("{metrics:#?}");
    Ok(())
}

fn cmd_sim(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: pyranet sim <file.v> <top> [name=value]...")?;
    let top = args.get(1).ok_or("missing top module name")?;
    let src = read_file(path)?;
    let mut clock: Option<String> = None;
    let mut cycles = 1usize;
    let mut backend = SimMode::default();
    let mut sets: Vec<(String, u64)> = Vec::new();
    let mut it = args[2..].iter();
    while let Some(a) = it.next() {
        if a == "--clock" {
            clock = Some(it.next().ok_or("--clock needs a signal")?.clone());
        } else if a == "--cycles" {
            cycles = it
                .next()
                .ok_or("--cycles needs a number")?
                .parse()
                .map_err(|e| format!("bad cycle count: {e}"))?;
        } else if a == "--backend" {
            backend = it.next().ok_or("--backend needs compiled|reference")?.parse()?;
        } else if let Some((name, value)) = a.split_once('=') {
            sets.push((name.to_owned(), parse_value(value)?));
        } else {
            return Err(format!("unexpected argument `{a}`"));
        }
    }
    let design = SimDesign::build(&src, top, backend).map_err(|e| e.to_string())?;
    let mut sim = design.instantiate().map_err(|e| e.to_string())?;
    for (name, v) in &sets {
        sim.set(name, *v).map_err(|e| e.to_string())?;
    }
    if let Some(clk) = &clock {
        for _ in 0..cycles {
            sim.clock(clk).map_err(|e| e.to_string())?;
        }
    }
    for out in sim.outputs().to_vec() {
        let v = sim.get(&out).map_err(|e| e.to_string())?;
        println!("{out} = {v}");
    }
    Ok(())
}

fn parse_value(s: &str) -> Result<u64, String> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| format!("bad value {s}: {e}"))
    } else if let Some(bin) = s.strip_prefix("0b") {
        u64::from_str_radix(bin, 2).map_err(|e| format!("bad value {s}: {e}"))
    } else {
        s.parse().map_err(|e| format!("bad value {s}: {e}"))
    }
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let mut files = 1200usize;
    let mut seed = BuildOptions::default().seed;
    let mut threads = 0usize;
    let mut out: Option<String> = None;
    let mut out_dir: Option<String> = None;
    let mut shard_size: Option<usize> = None;
    let mut sim_check: Option<SimMode> = None;
    let mut cache_dir: Option<String> = None;
    let mut metrics = MetricsArgs::default();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--metrics" => metrics.out = Some(it.next().ok_or("--metrics needs a path")?.clone()),
            "--verbose" => metrics.verbose = true,
            "--sim-check" => {
                // The backend is optional: `--sim-check` alone uses the
                // default (compiled) backend.
                let explicit = it.peek().and_then(|n| n.parse::<SimMode>().ok());
                if explicit.is_some() {
                    it.next();
                }
                sim_check = Some(explicit.unwrap_or_default());
            }
            "--files" => {
                files = it
                    .next()
                    .ok_or("--files needs a number")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a number")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--threads" => {
                threads = it
                    .next()
                    .ok_or("--threads needs a number")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--out" => out = Some(it.next().ok_or("--out needs a path")?.clone()),
            "--out-dir" => out_dir = Some(it.next().ok_or("--out-dir needs a path")?.clone()),
            "--cache-dir" => {
                cache_dir = Some(it.next().ok_or("--cache-dir needs a path")?.clone());
            }
            "--shard-size" => {
                shard_size = Some(
                    it.next()
                        .ok_or("--shard-size needs a number")?
                        .parse()
                        .map_err(|e| format!("bad --shard-size: {e}"))?,
                );
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if shard_size.is_some() && out_dir.is_none() {
        return Err("--shard-size only applies to sharded output; add --out-dir".into());
    }
    if let Some(dir) = &cache_dir {
        // Pre-open to surface an unusable cache root as a clear CLI error;
        // the pipeline itself degrades silently to an uncached run.
        pyranet_cache::ArtifactStore::open(std::path::Path::new(dir))
            .map_err(|e| format!("cannot open cache dir {dir}: {e}"))?;
    }
    let built = PyraNetBuilder::new(BuildOptions {
        scraped_files: files,
        seed,
        threads,
        sim_check,
        cache_dir: cache_dir.as_ref().map(std::path::PathBuf::from),
        ..BuildOptions::default()
    })
    .build();
    println!("{}", built.funnel.render());
    if cache_dir.is_some() {
        // One-line cache summary from the process-global registry: this
        // process only ran one build, so the totals are this run's.
        let snap = pyranet::obs::global().snapshot();
        let count = |name: &str| snap.counter(name).unwrap_or(0);
        println!(
            "cache: {} hit(s), {} miss(es), {} write(s), {} invalidated",
            count("cache.hits"),
            count("cache.misses"),
            count("cache.writes"),
            count("cache.invalidated")
        );
    }
    if let Some(dir) = &out_dir {
        // Sharded export: per-layer shards by default, fixed-size when
        // --shard-size is given. Serialization fans out across --threads;
        // every shard and the manifest are flush-checked. The manifest
        // carries the run's funnel and stage provenance.
        let spec = match shard_size {
            Some(n) => ShardSpec::MaxSamples(n),
            None => ShardSpec::PerLayer,
        };
        let exec = pyranet_exec::ExecConfig::new().threads(threads);
        let meta = pyranet::pipeline::ExportMeta {
            funnel: Some(built.funnel),
            provenance: built.provenance.clone(),
        };
        let manifest = built
            .dataset
            .to_shards_with_meta(std::path::Path::new(dir), spec, &exec, meta)
            .map_err(|e| format!("sharded write failed: {e}"))?;
        println!(
            "wrote {} samples to {dir} ({} shard(s) + manifest.json)",
            built.dataset.len(),
            manifest.shards.len()
        );
    }
    if out.is_some() || out_dir.is_none() {
        let out = out.unwrap_or_else(|| "pyranet_dataset.jsonl".to_owned());
        let file = std::fs::File::create(&out).map_err(|e| format!("cannot create {out}: {e}"))?;
        // A sized writer keeps syscall count low even for large datasets;
        // each record is a single buffered `write_all` (see `to_jsonl`).
        let mut w = std::io::BufWriter::with_capacity(1 << 20, file);
        built.dataset.to_jsonl(&mut w).map_err(|e| format!("write failed: {e}"))?;
        // `to_jsonl` already flushed; this explicit flush is the
        // belt-and-braces guard that no failure can ever be deferred to
        // the BufWriter's error-swallowing `Drop`.
        use std::io::Write;
        w.flush().map_err(|e| format!("write failed: {e}"))?;
        println!("wrote {} samples to {out}", built.dataset.len());
    }
    metrics.finish()
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let mut files = 300usize;
    let mut seed = BuildOptions::default().seed;
    let mut cfg = TrainConfig::default();
    let mut metrics = MetricsArgs::default();
    let mut recipe = "sft".to_owned();
    let mut repair_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |flag: &str| -> Result<usize, String> {
            it.next()
                .ok_or(format!("{flag} needs a number"))?
                .parse()
                .map_err(|e| format!("bad {flag}: {e}"))
        };
        match a.as_str() {
            "--metrics" => {
                metrics.out = Some(it.next().ok_or("--metrics needs a path")?.clone());
            }
            "--verbose" => metrics.verbose = true,
            "--files" => files = num("--files")?,
            "--seed" => seed = num("--seed")? as u64,
            "--threads" => cfg.threads = num("--threads")?,
            "--batch-size" => cfg.batch_size = num("--batch-size")?.max(1),
            "--epochs" => cfg.epochs = num("--epochs")?.max(1),
            "--max-examples" => cfg.max_examples_per_phase = Some(num("--max-examples")?),
            "--kernel" => {
                cfg.kernel = it.next().ok_or("--kernel needs a kernel family")?.parse()?;
            }
            "--recipe" => {
                recipe = it.next().ok_or("--recipe needs sft|repair")?.clone();
                if recipe != "sft" && recipe != "repair" {
                    return Err(format!("bad --recipe `{recipe}` (sft|repair)"));
                }
            }
            "--repair-out" => {
                repair_out = Some(it.next().ok_or("--repair-out needs a path")?.clone());
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    cfg.seed = seed;
    if repair_out.is_some() && recipe != "repair" {
        return Err("--repair-out only applies to --recipe repair".into());
    }
    let built =
        PyraNetBuilder::new(BuildOptions { scraped_files: files, seed, ..BuildOptions::default() })
            .build();
    let tk = build_tokenizer(built.dataset.iter());
    let model_cfg = ModelConfig {
        name: "pyranet-cli".into(),
        d_model: 32,
        n_layers: 2,
        n_heads: 4,
        d_ff: 64,
        max_seq: 160,
        learning_rate: cfg.learning_rate,
        seed,
    };
    let mut lm = TransformerLm::new(model_cfg, tk.vocab_size());
    println!(
        "training on {} samples (recipe {recipe}, batch size {}, {} epoch(s), threads {})",
        built.dataset.len(),
        cfg.batch_size,
        cfg.epochs,
        if cfg.threads == 0 { "auto".to_owned() } else { cfg.threads.to_string() }
    );
    let report = if recipe == "repair" {
        if let Some(path) = &repair_out {
            let pairs = repair_pairs(&built.dataset, cfg.seed);
            export_repair_jsonl(&pairs, std::path::Path::new(path))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {} repair pair(s) to {path}", pairs.len());
        }
        RepairTrainer::run(&mut lm, &tk, &built.dataset, &cfg)
    } else {
        SftTrainer::run(&mut lm, &tk, &built.dataset, &cfg)
    };
    for p in &report.phases {
        println!(
            "  phase {:<12} {:>5} examples  {:>5} steps  loss {:.4} -> {:.4}",
            p.name, p.examples, p.steps, p.first_loss, p.last_loss
        );
    }
    metrics.finish()
}

fn cmd_eval(args: &[String]) -> Result<(), String> {
    use pyranet::eval::{evaluate, human_split, machine_split, EngineMode, EvalOptions};

    let mut split = "machine".to_owned();
    let mut files = 300usize;
    let mut epochs = 1usize;
    let mut json: Option<String> = None;
    let mut metrics = MetricsArgs::default();
    let mut opts = EvalOptions { samples_per_problem: 5, max_new_tokens: 48, ..Default::default() };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| it.next().ok_or(format!("{flag} needs a value")).cloned();
        let num = |flag: &str, v: Result<String, String>| -> Result<usize, String> {
            v?.parse().map_err(|e| format!("bad {flag}: {e}"))
        };
        match a.as_str() {
            "--metrics" => metrics.out = Some(val("--metrics")?),
            "--verbose" => metrics.verbose = true,
            "--split" => split = val("--split")?,
            "--samples" => {
                opts.samples_per_problem = num("--samples", val("--samples"))?.max(1) as u32;
            }
            "--max-new-tokens" => {
                opts.max_new_tokens = num("--max-new-tokens", val("--max-new-tokens"))?;
            }
            "--threads" => opts.threads = num("--threads", val("--threads"))?,
            "--seed" => opts.seed = num("--seed", val("--seed"))? as u64,
            "--engine" => {
                opts.engine = match val("--engine")?.as_str() {
                    "session" => EngineMode::Session,
                    "per-sample" => EngineMode::PerSample,
                    other => return Err(format!("bad --engine `{other}` (session|per-sample)")),
                };
            }
            "--kernel" => opts.kernel = val("--kernel")?.parse()?,
            "--sim" => opts.sim = val("--sim")?.parse()?,
            "--check" => opts.check = val("--check")?.parse()?,
            "--max-eq-inputs" => {
                opts.max_eq_inputs = num("--max-eq-inputs", val("--max-eq-inputs"))? as u32;
            }
            "--files" => files = num("--files", val("--files"))?,
            "--epochs" => epochs = num("--epochs", val("--epochs"))?.max(1),
            "--json" => json = Some(val("--json")?),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let splits: Vec<_> = match split.as_str() {
        "machine" => vec![machine_split()],
        "human" => vec![human_split()],
        "both" => vec![machine_split(), human_split()],
        other => return Err(format!("bad --split `{other}` (machine|human|both)")),
    };

    // Build + briefly fine-tune the small reference model, then score it.
    let built = PyraNetBuilder::new(BuildOptions {
        scraped_files: files,
        seed: opts.seed,
        threads: opts.threads,
        ..BuildOptions::default()
    })
    .build();
    let tk = build_tokenizer(built.dataset.iter());
    let model_cfg = ModelConfig {
        name: "pyranet-cli".into(),
        d_model: 32,
        n_layers: 2,
        n_heads: 4,
        d_ff: 64,
        max_seq: 160,
        learning_rate: TrainConfig::default().learning_rate,
        seed: opts.seed,
    };
    let mut lm = TransformerLm::new(model_cfg, tk.vocab_size());
    let tcfg = TrainConfig {
        epochs,
        threads: opts.threads,
        seed: opts.seed,
        kernel: opts.kernel,
        ..Default::default()
    };
    println!("training on {} samples ({} epoch(s))...", built.dataset.len(), epochs);
    SftTrainer::run(&mut lm, &tk, &built.dataset, &tcfg);

    let mut results = Vec::new();
    for problems in &splits {
        let r = evaluate(&lm, &tk, problems, &opts);
        println!(
            "{}: {} problems, n = {} — pass@1 {:.1}%  pass@5 {:.1}%  pass@10 {:.1}%  syntax {:.1}%",
            r.split_name,
            r.problems.len(),
            opts.samples_per_problem,
            r.pass_at(1),
            r.pass_at(5),
            r.pass_at(10),
            r.syntax_rate()
        );
        let truncated: u32 = r.problems.iter().map(|p| p.prompt_dropped_tokens).sum();
        if truncated > 0 {
            println!("  warning: {truncated} prompt token(s) dropped to fit the context window");
        }
        results.push(r);
    }

    if let Some(path) = &json {
        // Same flush-checked discipline as `build-dataset`: buffered
        // writes, then an explicit flush so no error can hide in the
        // BufWriter's error-swallowing `Drop`.
        use std::io::Write;
        let body = serde_json::to_string_pretty(&results).map_err(|e| format!("{e}"))?;
        let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        let mut w = std::io::BufWriter::new(file);
        w.write_all(body.as_bytes()).map_err(|e| format!("write failed: {e}"))?;
        w.write_all(b"\n").map_err(|e| format!("write failed: {e}"))?;
        w.flush().map_err(|e| format!("write failed: {e}"))?;
        println!("wrote {} result(s) to {path}", results.len());
    }
    metrics.finish()
}

/// `pyranet serve --requests FILE.jsonl`: offline replay of a request
/// file through the continuous-batching engine. Trains the same small
/// reference model as `eval`, then drives every request to completion
/// and writes responses sorted by id — so two runs with different
/// `--shuffle-arrival` seeds, `--max-batch` widths, or `--threads`
/// counts produce byte-identical output files.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use pyranet::serve::{read_requests_jsonl, replay, responses_to_jsonl, ServeConfig};

    let mut requests_path: Option<String> = None;
    let mut out: Option<String> = None;
    let mut files = 300usize;
    let mut epochs = 1usize;
    let mut shuffle_arrival: Option<u64> = None;
    let mut metrics = MetricsArgs::default();
    let mut cfg = ServeConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| it.next().ok_or(format!("{flag} needs a value")).cloned();
        let num = |flag: &str, v: Result<String, String>| -> Result<usize, String> {
            v?.parse().map_err(|e| format!("bad {flag}: {e}"))
        };
        match a.as_str() {
            "--metrics" => metrics.out = Some(val("--metrics")?),
            "--verbose" => metrics.verbose = true,
            "--requests" => requests_path = Some(val("--requests")?),
            "--out" => out = Some(val("--out")?),
            "--max-batch" => cfg.max_batch = num("--max-batch", val("--max-batch"))?.max(1),
            "--queue-depth" => cfg.queue_depth = num("--queue-depth", val("--queue-depth"))?.max(1),
            "--prefix-cache" => {
                cfg.prefix_cache_entries = num("--prefix-cache", val("--prefix-cache"))?;
            }
            "--seed" => cfg.seed = num("--seed", val("--seed"))? as u64,
            "--kernel" => cfg.kernel = val("--kernel")?.parse()?,
            "--threads" => cfg.threads = num("--threads", val("--threads"))?,
            "--files" => files = num("--files", val("--files"))?,
            "--epochs" => epochs = num("--epochs", val("--epochs"))?.max(1),
            "--shuffle-arrival" => {
                shuffle_arrival = Some(num("--shuffle-arrival", val("--shuffle-arrival"))? as u64);
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let requests_path =
        requests_path.ok_or("usage: pyranet serve --requests FILE.jsonl [--out FILE.jsonl]")?;
    let mut requests = read_requests_jsonl(&read_file(&requests_path)?)?;
    if requests.is_empty() {
        return Err(format!("{requests_path}: no requests"));
    }
    // Optional arrival-order scramble: determinism means the output file
    // must not change, whatever seed lands here.
    if let Some(seed) = shuffle_arrival {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        requests.shuffle(&mut rng);
    }

    // Build + briefly fine-tune the small reference model (same recipe
    // as `eval`, so completions are comparable across subcommands).
    let built = PyraNetBuilder::new(BuildOptions {
        scraped_files: files,
        seed: cfg.seed,
        threads: cfg.threads,
        ..BuildOptions::default()
    })
    .build();
    let tk = build_tokenizer(built.dataset.iter());
    let model_cfg = ModelConfig {
        name: "pyranet-cli".into(),
        d_model: 32,
        n_layers: 2,
        n_heads: 4,
        d_ff: 64,
        max_seq: 160,
        learning_rate: TrainConfig::default().learning_rate,
        seed: cfg.seed,
    };
    let mut lm = TransformerLm::new(model_cfg, tk.vocab_size());
    let tcfg = TrainConfig {
        epochs,
        threads: cfg.threads,
        seed: cfg.seed,
        kernel: cfg.kernel,
        ..Default::default()
    };
    println!("training on {} samples ({} epoch(s))...", built.dataset.len(), epochs);
    SftTrainer::run(&mut lm, &tk, &built.dataset, &tcfg);

    println!(
        "serving {} request(s): max_batch {} queue_depth {} prefix_cache {}",
        requests.len(),
        cfg.max_batch,
        cfg.queue_depth,
        cfg.prefix_cache_entries
    );
    let outcome = replay(&lm, &tk, cfg, &requests);
    let mut responses = outcome.responses;
    responses.sort_by(|a, b| a.id.cmp(&b.id));
    println!(
        "served {} response(s): {} token(s), {} step(s), {} resubmission(s); \
         prefix cache {} hit(s) / {} miss(es) / {} eviction(s)",
        responses.len(),
        outcome.decode_tokens,
        outcome.steps,
        outcome.resubmissions,
        outcome.cache.hits,
        outcome.cache.misses,
        outcome.cache.evictions
    );
    let body = responses_to_jsonl(&responses);
    match &out {
        Some(path) => {
            use std::io::Write;
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            let mut w = std::io::BufWriter::new(file);
            w.write_all(body.as_bytes()).map_err(|e| format!("write failed: {e}"))?;
            w.flush().map_err(|e| format!("write failed: {e}"))?;
            println!("wrote {} response(s) to {path}", responses.len());
        }
        None => print!("{body}"),
    }
    metrics.finish()
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: pyranet stats <dataset.jsonl | shard-dir>")?;
    // Accepts a single .jsonl file, a sharded export directory, or its
    // manifest.json; sharded imports are checksum-verified per shard and
    // parse failures carry `file:line` context.
    let ds = pyranet::pipeline::persist::load_dataset(
        std::path::Path::new(path),
        &pyranet_exec::ExecConfig::new(),
    )
    .map_err(|e| format!("{e}"))?;
    let counts = ds.layer_counts();
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    println!("{} samples", ds.len());
    for layer in Layer::ALL {
        let n = counts[layer.index() - 1];
        println!(
            "  {:<8} weight {:.1} {:>7}  |{}",
            layer.to_string(),
            layer.loss_weight(),
            n,
            "#".repeat((n * 40).div_ceil(max))
        );
    }
    // Sharded exports carry the producing run's curation funnel in the
    // manifest — print it (every rejection stage, including the opt-in
    // sim check) so the full §III-A.5 funnel is visible without --metrics.
    if let Some(manifest) = load_manifest_if_sharded(std::path::Path::new(path)) {
        if let Some(funnel) = &manifest.funnel {
            println!("funnel:");
            for line in funnel.render().lines() {
                println!("  {line}");
            }
        }
    }
    Ok(())
}

/// The shard manifest for `stats` inputs that are sharded exports (a
/// directory or a path to its `manifest.json`); `None` for flat JSONL
/// files or unreadable manifests.
fn load_manifest_if_sharded(path: &std::path::Path) -> Option<pyranet::pipeline::ShardManifest> {
    use pyranet::pipeline::persist::MANIFEST_FILE;
    let dir = if path.is_dir() {
        path
    } else if path.file_name().map(|n| n == MANIFEST_FILE).unwrap_or(false) {
        path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(std::path::Path::new("."))
    } else {
        return None;
    };
    pyranet::pipeline::ShardManifest::load(dir).ok()
}
