//! Semantic checking — the Icarus Verilog stand-in.
//!
//! The paper's pipeline (§III-A.2) runs Icarus over every candidate file
//! and separates two failure classes:
//!
//! * **syntax errors** — the file is discarded;
//! * **dependency issues** — missing imports / undefined references; the
//!   file is kept but lands in Layer 6.
//!
//! [`check_source`] reproduces that decision boundary: lex/parse failures
//! and intra-module semantic violations (undeclared signals, assigns to
//! inputs, `reg` driven by `assign`, …) are [`SyntaxVerdict::SyntaxError`];
//! references to modules not defined in the same file are
//! [`SyntaxVerdict::DependencyIssue`].

use crate::ast::*;
use crate::parser::parse;
use std::collections::{HashMap, HashSet};

/// The three-way verdict of the syntax-check pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyntaxVerdict {
    /// Parses and passes all intra-file semantic checks.
    Clean,
    /// Parses, but instantiates modules that are not defined in the file —
    /// the paper's "dependency issues" class (kept, demoted to Layer 6).
    DependencyIssue {
        /// The undefined module names, sorted and deduplicated.
        missing_modules: Vec<String>,
    },
    /// Fails to lex, parse, or violates intra-module semantics.
    SyntaxError {
        /// 1-based line of the first error (0 when unknown).
        line: u32,
        /// Description of the first error.
        message: String,
    },
}

impl SyntaxVerdict {
    /// True when the sample would survive the pipeline (clean or
    /// dependency-only).
    pub fn is_compilable(&self) -> bool {
        !matches!(self, SyntaxVerdict::SyntaxError { .. })
    }

    /// True when the verdict is [`SyntaxVerdict::Clean`].
    pub fn is_clean(&self) -> bool {
        matches!(self, SyntaxVerdict::Clean)
    }
}

/// Checks a source string end to end (lex, parse, semantics, dependencies).
///
/// ```
/// use pyranet_verilog::{check_source, SyntaxVerdict};
///
/// assert!(check_source("module m(input a, output y); assign y = a; endmodule").is_clean());
/// assert!(matches!(
///     check_source("module m(input a, output y); missing u0(.p(a)); endmodule"),
///     SyntaxVerdict::DependencyIssue { .. }
/// ));
/// assert!(!check_source("module m(input a oops").is_compilable());
/// ```
pub fn check_source(src: &str) -> SyntaxVerdict {
    let file = match parse(src) {
        Ok(f) => f,
        Err(e) => {
            return SyntaxVerdict::SyntaxError { line: e.line, message: e.message };
        }
    };
    check_file(&file)
}

/// Checks an already-parsed file.
pub fn check_file(file: &SourceFile) -> SyntaxVerdict {
    if file.modules.is_empty() {
        return SyntaxVerdict::SyntaxError {
            line: 0,
            message: "file contains no module declaration".into(),
        };
    }
    let defined: HashSet<&str> = file.modules.iter().map(|m| m.name.as_str()).collect();
    let mut missing: Vec<String> = Vec::new();
    for m in &file.modules {
        if let Err(e) = check_module(m) {
            return e;
        }
        collect_missing(&m.items, &defined, &mut missing);
    }
    if missing.is_empty() {
        SyntaxVerdict::Clean
    } else {
        missing.sort();
        missing.dedup();
        SyntaxVerdict::DependencyIssue { missing_modules: missing }
    }
}

fn collect_missing(items: &[Item], defined: &HashSet<&str>, out: &mut Vec<String>) {
    for item in items {
        match item {
            Item::Instance(inst) if !defined.contains(inst.module.as_str()) => {
                out.push(inst.module.clone());
            }
            Item::Generate(inner) => collect_missing(inner, defined, out),
            _ => {}
        }
    }
}

/// Everything the checker knows about a declared name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SigClass {
    Wire,
    Reg,
    Integer,
    Genvar,
    Param,
}

struct Scope {
    signals: HashMap<String, SigClass>,
    /// Signals driven by continuous assigns (a reg here is an error).
    assign_driven: HashSet<String>,
    /// Signals driven from always blocks (a wire here is an error).
    proc_driven: HashSet<String>,
}

fn check_module(m: &Module) -> Result<(), SyntaxVerdict> {
    let mut scope = Scope {
        signals: HashMap::new(),
        assign_driven: HashSet::new(),
        proc_driven: HashSet::new(),
    };
    let err = |line: u32, msg: String| Err(SyntaxVerdict::SyntaxError { line, message: msg });

    let mut port_dirs: HashMap<&str, PortDir> = HashMap::new();
    for p in &m.ports {
        if port_dirs.insert(&p.name, p.dir).is_some() {
            return err(m.line, format!("port `{}` declared twice", p.name));
        }
        let class = if p.is_reg { SigClass::Reg } else { SigClass::Wire };
        scope.signals.insert(p.name.clone(), class);
    }
    for p in &m.params {
        scope.signals.insert(p.name.clone(), SigClass::Param);
    }

    // First pass: declarations (Verilog allows use-before-declare for nets in
    // many tools, and scraped code relies on it, so collect all declarations
    // up front).
    collect_decls(&m.items, &mut scope, m.line)?;

    // Second pass: check drivers and references.
    check_items(&m.items, m, &mut scope)?;

    // Port-direction rules: inputs must not be driven inside the module.
    for p in &m.ports {
        if p.dir == PortDir::Input
            && (scope.assign_driven.contains(&p.name) || scope.proc_driven.contains(&p.name))
        {
            return err(m.line, format!("input port `{}` is driven inside the module", p.name));
        }
    }
    Ok(())
}

fn collect_decls(items: &[Item], scope: &mut Scope, mline: u32) -> Result<(), SyntaxVerdict> {
    for item in items {
        match item {
            Item::Net(d) => {
                for n in &d.names {
                    let class = match d.kind {
                        NetKind::Wire => SigClass::Wire,
                        NetKind::Reg => SigClass::Reg,
                        NetKind::Integer => SigClass::Integer,
                        NetKind::Genvar => SigClass::Genvar,
                    };
                    let prev = scope.signals.insert(n.name.clone(), class);
                    // Re-declaring a port name with a body `wire`/`reg` is a
                    // legal non-ANSI idiom; keep the stronger class.
                    if let Some(prev) = prev {
                        if prev == SigClass::Reg && class == SigClass::Wire {
                            scope.signals.insert(n.name.clone(), SigClass::Reg);
                        }
                        if prev != class
                            && !matches!(
                                (prev, class),
                                (SigClass::Wire, SigClass::Reg) | (SigClass::Reg, SigClass::Wire)
                            )
                        {
                            return Err(SyntaxVerdict::SyntaxError {
                                line: mline,
                                message: format!("`{}` redeclared with a conflicting kind", n.name),
                            });
                        }
                    }
                }
            }
            Item::Param(p) => {
                scope.signals.insert(p.name.clone(), SigClass::Param);
            }
            Item::Generate(inner) => collect_decls(inner, scope, mline)?,
            _ => {}
        }
    }
    Ok(())
}

fn check_items(items: &[Item], m: &Module, scope: &mut Scope) -> Result<(), SyntaxVerdict> {
    for item in items {
        match item {
            Item::Net(d) => {
                for n in &d.names {
                    if let Some(init) = &n.init {
                        check_expr(init, scope, m.line)?;
                        scope.assign_driven.insert(n.name.clone());
                    }
                }
            }
            Item::Param(_) => {}
            Item::Assign(a) => {
                check_expr(&a.rhs, scope, a.line)?;
                for t in a.lhs.targets() {
                    match scope.signals.get(t) {
                        None => {
                            return Err(SyntaxVerdict::SyntaxError {
                                line: a.line,
                                message: format!("assignment to undeclared signal `{t}`"),
                            });
                        }
                        Some(SigClass::Reg) | Some(SigClass::Integer) => {
                            return Err(SyntaxVerdict::SyntaxError {
                                line: a.line,
                                message: format!(
                                    "continuous assignment to `{t}`, which is declared `reg`"
                                ),
                            });
                        }
                        Some(SigClass::Param) => {
                            return Err(SyntaxVerdict::SyntaxError {
                                line: a.line,
                                message: format!("assignment to parameter `{t}`"),
                            });
                        }
                        _ => {}
                    }
                    scope.assign_driven.insert(t.to_owned());
                }
                check_lvalue_exprs(&a.lhs, scope, a.line)?;
            }
            Item::Always(a) => {
                if let Sensitivity::Edges(es) = &a.sensitivity {
                    for e in es {
                        if !scope.signals.contains_key(&e.signal) {
                            return Err(SyntaxVerdict::SyntaxError {
                                line: a.line,
                                message: format!(
                                    "sensitivity list references undeclared signal `{}`",
                                    e.signal
                                ),
                            });
                        }
                    }
                }
                check_stmt(&a.body, scope, a.line, true)?;
            }
            Item::Initial(body) => {
                check_stmt(body, scope, m.line, false)?;
            }
            Item::Instance(inst) => {
                for (_, e) in &inst.params {
                    check_expr(e, scope, inst.line)?;
                }
                let mut seen = HashSet::new();
                for (name, e) in &inst.ports {
                    if let Some(n) = name {
                        if !seen.insert(n.clone()) {
                            return Err(SyntaxVerdict::SyntaxError {
                                line: inst.line,
                                message: format!(
                                    "port `{n}` connected twice on instance `{}`",
                                    inst.name
                                ),
                            });
                        }
                    }
                    if let Some(e) = e {
                        check_expr(e, scope, inst.line)?;
                    }
                }
            }
            Item::Generate(inner) => check_items(inner, m, scope)?,
        }
    }
    Ok(())
}

fn check_lvalue_exprs(lv: &LValue, scope: &Scope, line: u32) -> Result<(), SyntaxVerdict> {
    match lv {
        LValue::Ident(_) => Ok(()),
        LValue::Index(_, e) => check_expr(e, scope, line),
        LValue::Range(_, a, b) => {
            check_expr(a, scope, line)?;
            check_expr(b, scope, line)
        }
        LValue::Concat(parts) => {
            for p in parts {
                check_lvalue_exprs(p, scope, line)?;
            }
            Ok(())
        }
    }
}

fn check_stmt(
    stmt: &Stmt,
    scope: &mut Scope,
    line: u32,
    procedural_drive: bool,
) -> Result<(), SyntaxVerdict> {
    match stmt {
        Stmt::Blocking(lv, e) | Stmt::NonBlocking(lv, e) => {
            check_expr(e, scope, line)?;
            check_lvalue_exprs(lv, scope, line)?;
            for t in lv.targets() {
                match scope.signals.get(t) {
                    None => {
                        return Err(SyntaxVerdict::SyntaxError {
                            line,
                            message: format!("assignment to undeclared signal `{t}`"),
                        });
                    }
                    Some(SigClass::Wire) if procedural_drive => {
                        return Err(SyntaxVerdict::SyntaxError {
                            line,
                            message: format!(
                                "procedural assignment to `{t}`, which is declared `wire`"
                            ),
                        });
                    }
                    Some(SigClass::Param) => {
                        return Err(SyntaxVerdict::SyntaxError {
                            line,
                            message: format!("assignment to parameter `{t}`"),
                        });
                    }
                    _ => {}
                }
                if procedural_drive {
                    scope.proc_driven.insert(t.to_owned());
                }
            }
            Ok(())
        }
        Stmt::If { cond, then_branch, else_branch } => {
            check_expr(cond, scope, line)?;
            check_stmt(then_branch, scope, line, procedural_drive)?;
            if let Some(e) = else_branch {
                check_stmt(e, scope, line, procedural_drive)?;
            }
            Ok(())
        }
        Stmt::Case { subject, arms, .. } => {
            check_expr(subject, scope, line)?;
            for arm in arms {
                for l in &arm.labels {
                    check_expr(l, scope, line)?;
                }
                check_stmt(&arm.body, scope, line, procedural_drive)?;
            }
            Ok(())
        }
        Stmt::For { init, cond, step, body } => {
            check_stmt(init, scope, line, procedural_drive)?;
            check_expr(cond, scope, line)?;
            check_stmt(step, scope, line, procedural_drive)?;
            check_stmt(body, scope, line, procedural_drive)
        }
        Stmt::Block(stmts) => {
            for s in stmts {
                check_stmt(s, scope, line, procedural_drive)?;
            }
            Ok(())
        }
        Stmt::SystemCall(_, args) => {
            for a in args {
                // String formats reference signals loosely; only check
                // non-string args.
                if !matches!(a, Expr::StringLit(_)) {
                    check_expr(a, scope, line)?;
                }
            }
            Ok(())
        }
        Stmt::Empty => Ok(()),
    }
}

fn check_expr(e: &Expr, scope: &Scope, line: u32) -> Result<(), SyntaxVerdict> {
    let mut idents = Vec::new();
    e.collect_idents(&mut idents);
    for id in idents {
        if !scope.signals.contains_key(id) {
            return Err(SyntaxVerdict::SyntaxError {
                line,
                message: format!("reference to undeclared signal `{id}`"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_module_is_clean() {
        let v =
            check_source("module m(input [3:0] a, b, output [4:0] s); assign s = a + b; endmodule");
        assert_eq!(v, SyntaxVerdict::Clean);
        assert!(v.is_compilable());
    }

    #[test]
    fn undeclared_rhs_signal_is_syntax_error() {
        let v = check_source("module m(input a, output y); assign y = a & ghost; endmodule");
        assert!(matches!(v, SyntaxVerdict::SyntaxError { .. }), "{v:?}");
    }

    #[test]
    fn undeclared_lhs_signal_is_syntax_error() {
        let v = check_source("module m(input a, output y); assign ghost = a; endmodule");
        assert!(matches!(v, SyntaxVerdict::SyntaxError { .. }));
    }

    #[test]
    fn assign_to_reg_is_syntax_error() {
        let v = check_source("module m(input a, output reg y); assign y = a; endmodule");
        assert!(matches!(v, SyntaxVerdict::SyntaxError { .. }));
    }

    #[test]
    fn procedural_drive_of_wire_is_syntax_error() {
        let v = check_source(
            "module m(input clk, input a, output y); always @(posedge clk) y <= a; endmodule",
        );
        assert!(matches!(v, SyntaxVerdict::SyntaxError { .. }));
    }

    #[test]
    fn driving_input_is_syntax_error() {
        let v = check_source("module m(input a, output y); assign a = y; endmodule");
        assert!(matches!(v, SyntaxVerdict::SyntaxError { .. }));
    }

    #[test]
    fn missing_module_is_dependency_issue() {
        let v = check_source("module top(input a, output y); helper u0(.x(a), .y(y)); endmodule");
        match v {
            SyntaxVerdict::DependencyIssue { missing_modules } => {
                assert_eq!(missing_modules, vec!["helper".to_string()]);
            }
            other => panic!("expected dependency issue, got {other:?}"),
        }
    }

    #[test]
    fn defined_submodule_is_clean() {
        let v = check_source(
            "module top(input a, output y); inv u0(.i(a), .o(y)); endmodule\n\
             module inv(input i, output o); assign o = ~i; endmodule",
        );
        assert_eq!(v, SyntaxVerdict::Clean);
    }

    #[test]
    fn parse_failure_is_syntax_error_with_line() {
        let v = check_source("module m(input a, output y);\nassign y = ;\nendmodule");
        match v {
            SyntaxVerdict::SyntaxError { line, .. } => assert_eq!(line, 2),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn empty_source_is_syntax_error() {
        assert!(matches!(check_source(""), SyntaxVerdict::SyntaxError { .. }));
    }

    #[test]
    fn duplicate_port_is_syntax_error() {
        let v = check_source("module m(input a, input a, output y); assign y = a; endmodule");
        assert!(matches!(v, SyntaxVerdict::SyntaxError { .. }));
    }

    #[test]
    fn duplicate_port_connection_is_syntax_error() {
        let v = check_source(
            "module top(input a, output y); inv u0(.i(a), .i(a), .o(y)); endmodule\n\
             module inv(input i, output o); assign o = ~i; endmodule",
        );
        assert!(matches!(v, SyntaxVerdict::SyntaxError { .. }));
    }

    #[test]
    fn missing_modules_sorted_and_deduped() {
        let v = check_source(
            "module top(input a, output y);\n\
             zeta u0(.p(a));\n alpha u1(.p(a));\n zeta u2(.p(y));\nendmodule",
        );
        match v {
            SyntaxVerdict::DependencyIssue { missing_modules } => {
                assert_eq!(missing_modules, vec!["alpha".to_string(), "zeta".to_string()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn use_before_declare_net_is_ok() {
        let v = check_source(
            "module m(input a, output y); assign y = t; wire t; assign t = ~a; endmodule",
        );
        assert_eq!(v, SyntaxVerdict::Clean);
    }

    #[test]
    fn integer_loop_variable_is_ok() {
        let v = check_source(
            "module m(input [7:0] a, output reg [7:0] y); integer i;\n\
             always @* for (i = 0; i < 8; i = i + 1) y[i] = a[7 - i]; endmodule",
        );
        assert_eq!(v, SyntaxVerdict::Clean);
    }
}
