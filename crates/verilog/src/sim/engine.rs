//! The reference simulation engine: signal store plus evaluation loop.
//!
//! This is the event-driven "spec" oracle: it walks the resolved statement
//! tree directly, settling combinational logic to a fixpoint and firing
//! edge-sensitive blocks with non-blocking commit ordering. The compiled
//! bytecode backend ([`super::vm`]) is pinned bit-identical to this engine;
//! differential tests drive both.
//!
//! Signal references were historically looked up through a string-keyed
//! HashMap on every expression evaluation; the engine now runs over the
//! [`ResolvedDesign`] produced by [`super::resolve`], where every name has
//! already been resolved to a dense slot index.

use super::elab::{elaborate, ElabError};
use super::resolve::{RArm, RExpr, RLValue, RStmt, ResolvedDesign, SigRef};
use super::value::Value;
use crate::ast::{BinaryOp, Edge, SourceFile, UnaryOp};
use crate::parser::{parse, ParseError};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Errors raised by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Source failed to parse.
    Parse(ParseError),
    /// Design failed to elaborate.
    Elab(ElabError),
    /// Reference to a signal that does not exist in the flat design.
    UnknownSignal(String),
    /// `set` called on a signal that is not a top-level input.
    NotAnInput(String),
    /// Combinational logic failed to settle (ring oscillator / latch loop).
    Oscillation,
    /// A procedural block executed too many statements (runaway loop).
    RunawayLoop,
    /// A construct the two-state subset cannot evaluate.
    Unsupported(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Parse(e) => write!(f, "{e}"),
            SimError::Elab(e) => write!(f, "{e}"),
            SimError::UnknownSignal(n) => write!(f, "unknown signal `{n}`"),
            SimError::NotAnInput(n) => write!(f, "`{n}` is not a top-level input"),
            SimError::Oscillation => f.write_str("combinational logic failed to settle"),
            SimError::RunawayLoop => f.write_str("procedural loop exceeded the statement budget"),
            SimError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
        }
    }
}

impl Error for SimError {}

impl From<ParseError> for SimError {
    fn from(e: ParseError) -> Self {
        SimError::Parse(e)
    }
}

impl From<ElabError> for SimError {
    fn from(e: ElabError) -> Self {
        SimError::Elab(e)
    }
}

/// Per-signal runtime storage.
#[derive(Debug, Clone)]
struct Slot {
    value: Value,
    /// Memory words (empty unless the signal is an unpacked array).
    words: Vec<u64>,
    mem_base: u64,
    width: u32,
}

/// Maximum combinational settle iterations before declaring oscillation.
pub(super) const MAX_SETTLE: usize = 1000;
/// Maximum edge-firing rounds per propagation (derived-clock chains).
pub(super) const MAX_EDGE_ROUNDS: usize = 64;
/// Statement budget per procedural block execution.
pub(super) const STMT_BUDGET: usize = 1 << 20;

/// An interactive simulator over a flattened design.
///
/// See the [module docs](crate::sim) for an end-to-end example.
pub struct Simulator {
    res: Arc<ResolvedDesign>,
    slots: Vec<Slot>,
    /// Previous sampled values of every edge-sensitive signal, indexed like
    /// [`ResolvedDesign::edge_sigs`].
    edge_prev: Vec<bool>,
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("signals", &self.slots.len())
            .field("assigns", &self.res.assigns.len())
            .field("always", &(self.res.comb.len() + self.res.edges.len()))
            .finish()
    }
}

impl Simulator {
    /// Parses, elaborates and initialises a simulator for `top`.
    ///
    /// # Errors
    ///
    /// Fails on parse or elaboration errors.
    pub fn from_source(src: &str, top: &str) -> Result<Simulator, SimError> {
        let file = parse(src)?;
        Simulator::new(&file, top)
    }

    /// Builds a simulator from a parsed file.
    ///
    /// # Errors
    ///
    /// Fails when the design cannot be elaborated (missing modules,
    /// non-constant widths, >64-bit vectors).
    pub fn new(file: &SourceFile, top: &str) -> Result<Simulator, SimError> {
        let design = elaborate(file, top)?;
        Simulator::from_resolved(Arc::new(ResolvedDesign::resolve(&design)))
    }

    /// Builds a simulator over an already-resolved design.
    ///
    /// # Errors
    ///
    /// Fails when constant application or the initial combinational settle
    /// fails (unknown signals, oscillating logic).
    pub(super) fn from_resolved(res: Arc<ResolvedDesign>) -> Result<Simulator, SimError> {
        let slots = res
            .signals
            .iter()
            .map(|s| Slot {
                value: Value::zero(s.width),
                words: vec![0; s.depth as usize],
                mem_base: s.mem_base,
                width: s.width,
            })
            .collect();
        let edge_prev = vec![false; res.edge_sigs.len()];
        let mut sim = Simulator { res, slots, edge_prev };
        let constants = sim.res.clone();
        for (sig, v) in &constants.constants {
            let idx = sim.slot(sig)?;
            let w = sim.slots[idx].width;
            sim.slots[idx].value = Value::new(*v, w);
        }
        sim.settle_comb()?;
        // Take the post-settle snapshot so initial values don't count as edges.
        sim.snapshot_edges();
        Ok(sim)
    }

    /// Names of the top-level inputs.
    pub fn inputs(&self) -> &[String] {
        &self.res.inputs
    }

    /// Names of the top-level outputs.
    pub fn outputs(&self) -> &[String] {
        &self.res.outputs
    }

    fn slot(&self, sig: &SigRef) -> Result<usize, SimError> {
        match sig {
            SigRef::Slot(i) => Ok(*i as usize),
            SigRef::Unknown(n) => Err(SimError::UnknownSignal(n.clone())),
        }
    }

    /// Reads a signal's current value.
    ///
    /// # Errors
    ///
    /// Fails when `name` is not a signal of the flattened design.
    pub fn get(&self, name: &str) -> Result<Value, SimError> {
        let i = self
            .res
            .names
            .get(name)
            .copied()
            .ok_or_else(|| SimError::UnknownSignal(name.to_owned()))?;
        Ok(self.slots[i as usize].value)
    }

    /// Drives a top-level input and propagates the change (combinational
    /// settle plus any edge-sensitive blocks triggered by the transition).
    ///
    /// # Errors
    ///
    /// Fails on unknown/non-input signals and on oscillating logic.
    pub fn set(&mut self, name: &str, value: u64) -> Result<(), SimError> {
        if !self.res.inputs.iter().any(|i| i == name) {
            return Err(SimError::NotAnInput(name.to_owned()));
        }
        let idx = self
            .res
            .names
            .get(name)
            .copied()
            .ok_or_else(|| SimError::UnknownSignal(name.to_owned()))? as usize;
        let w = self.slots[idx].width;
        self.slots[idx].value = Value::new(value, w);
        self.propagate()
    }

    /// Applies one full clock cycle (falling then rising edge) to `clk`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Simulator::set`].
    pub fn clock(&mut self, clk: &str) -> Result<(), SimError> {
        self.set(clk, 0)?;
        self.set(clk, 1)
    }

    /// Settles combinational logic and fires edge blocks until quiescent.
    fn propagate(&mut self) -> Result<(), SimError> {
        for _ in 0..MAX_EDGE_ROUNDS {
            self.settle_comb()?;
            let fired = self.fire_edges()?;
            if !fired {
                return Ok(());
            }
        }
        Err(SimError::Oscillation)
    }

    fn snapshot_edges(&mut self) {
        let res = self.res.clone();
        for (i, (_, slot)) in res.edge_sigs.iter().enumerate() {
            self.edge_prev[i] =
                slot.map(|s| self.slots[s as usize].value.bit_at(0)).unwrap_or(false);
        }
    }

    /// Runs all edge-sensitive blocks whose signals transitioned since the
    /// last snapshot; commits their non-blocking updates together. Returns
    /// whether anything fired.
    fn fire_edges(&mut self) -> Result<bool, SimError> {
        let res = self.res.clone();
        let mut to_run: Vec<usize> = Vec::new();
        for (i, blk) in res.edges.iter().enumerate() {
            let triggered = blk.triggers.iter().any(|(edge, sig)| {
                let prev = self.edge_prev[*sig];
                let cur = res.edge_sigs[*sig]
                    .1
                    .map(|s| self.slots[s as usize].value.bit_at(0))
                    .unwrap_or(false);
                match edge {
                    Edge::Pos => !prev && cur,
                    Edge::Neg => prev && !cur,
                }
            });
            if triggered {
                to_run.push(i);
            }
        }
        self.snapshot_edges();
        if to_run.is_empty() {
            return Ok(false);
        }
        let mut nb: Vec<(RLValue, Value)> = Vec::new();
        for i in to_run {
            let mut budget = STMT_BUDGET;
            self.exec_stmt(&res.edges[i].body, &mut nb, &mut budget)?;
        }
        for (lv, v) in nb {
            self.write_lvalue(&lv, v)?;
        }
        Ok(true)
    }

    /// Evaluates continuous assigns and combinational always blocks to a
    /// fixpoint.
    fn settle_comb(&mut self) -> Result<(), SimError> {
        let res = self.res.clone();
        for _ in 0..MAX_SETTLE {
            let before = self.state_vec();
            for (lhs, rhs) in &res.assigns {
                let w = self.lvalue_width(lhs)?;
                let v = self.eval_ctx(rhs, w)?;
                self.write_lvalue(lhs, v)?;
            }
            for body in &res.comb {
                let mut nb = Vec::new();
                let mut budget = STMT_BUDGET;
                self.exec_stmt(body, &mut nb, &mut budget)?;
                for (lv, v) in nb {
                    self.write_lvalue(&lv, v)?;
                }
            }
            if self.state_vec() == before {
                return Ok(());
            }
        }
        Err(SimError::Oscillation)
    }

    fn state_vec(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.slots.len());
        for s in &self.slots {
            out.push(s.value.as_u64());
            out.extend_from_slice(&s.words);
        }
        out
    }

    // ---- statement execution ----

    fn exec_stmt(
        &mut self,
        stmt: &RStmt,
        nb: &mut Vec<(RLValue, Value)>,
        budget: &mut usize,
    ) -> Result<(), SimError> {
        if *budget == 0 {
            return Err(SimError::RunawayLoop);
        }
        *budget -= 1;
        match stmt {
            RStmt::Blocking(lv, e) => {
                let w = self.lvalue_width(lv)?;
                let v = self.eval_ctx(e, w)?;
                self.write_lvalue(lv, v)
            }
            RStmt::NonBlocking(lv, e) => {
                let w = self.lvalue_width(lv)?;
                let v = self.eval_ctx(e, w)?;
                nb.push((lv.clone(), v));
                Ok(())
            }
            RStmt::If { cond, then_branch, else_branch } => {
                if self.eval(cond)?.is_truthy() {
                    self.exec_stmt(then_branch, nb, budget)
                } else if let Some(e) = else_branch {
                    self.exec_stmt(e, nb, budget)
                } else {
                    Ok(())
                }
            }
            RStmt::Case { subject, arms } => {
                let subj = self.eval(subject)?;
                let w = subj.width().max(1);
                for arm in arms {
                    if arm.labels.is_empty() {
                        continue; // default checked last
                    }
                    for l in &arm.labels {
                        let lv = self.eval(l)?;
                        let cmp_w = w.max(lv.width());
                        if lv.resize(cmp_w).as_u64() == subj.resize(cmp_w).as_u64() {
                            return self.exec_stmt(&arm.body, nb, budget);
                        }
                    }
                }
                if let Some(default) = arms.iter().find(|a: &&RArm| a.labels.is_empty()) {
                    return self.exec_stmt(&default.body, nb, budget);
                }
                Ok(())
            }
            RStmt::For { init, cond, step, body } => {
                self.exec_stmt(init, nb, budget)?;
                while self.eval(cond)?.is_truthy() {
                    self.exec_stmt(body, nb, budget)?;
                    self.exec_stmt(step, nb, budget)?;
                    if *budget == 0 {
                        return Err(SimError::RunawayLoop);
                    }
                }
                Ok(())
            }
            RStmt::Block(stmts) => {
                for s in stmts {
                    self.exec_stmt(s, nb, budget)?;
                }
                Ok(())
            }
            RStmt::Nop => Ok(()),
        }
    }

    // ---- lvalues ----

    fn lvalue_width(&self, lv: &RLValue) -> Result<u32, SimError> {
        match lv {
            RLValue::Ident(sig) => {
                let i = self.slot(sig)?;
                Ok(self.slots[i].width)
            }
            RLValue::Index(sig, _) => {
                let i = self.slot(sig)?;
                if self.slots[i].words.is_empty() {
                    Ok(1)
                } else {
                    Ok(self.slots[i].width)
                }
            }
            RLValue::Range(sig, a, b) => {
                let _ = self.slot(sig)?;
                let msb = self.const_like(a)? as i64;
                let lsb = self.const_like(b)? as i64;
                Ok(((msb - lsb).unsigned_abs() + 1).min(64) as u32)
            }
            RLValue::Concat(parts) => {
                let mut w = 0;
                for p in parts {
                    w += self.lvalue_width(p)?;
                }
                Ok(w.min(64))
            }
        }
    }

    fn write_lvalue(&mut self, lv: &RLValue, v: Value) -> Result<(), SimError> {
        match lv {
            RLValue::Ident(sig) => {
                let i = self.slot(sig)?;
                if !self.slots[i].words.is_empty() {
                    let n = &self.res.signals[i].name;
                    return Err(SimError::Unsupported(format!("whole-memory assignment to `{n}`")));
                }
                let w = self.slots[i].width;
                self.slots[i].value = v.resize(w);
                Ok(())
            }
            RLValue::Index(sig, idx_expr) => {
                let addr = self.eval(idx_expr)?.as_u64();
                let i = self.slot(sig)?;
                if self.slots[i].words.is_empty() {
                    // bit select
                    let w = self.slots[i].width;
                    if addr >= u64::from(w) {
                        return Ok(()); // out-of-range write is dropped
                    }
                    let old = self.slots[i].value.as_u64();
                    let bit = v.as_u64() & 1;
                    let new = (old & !(1 << addr)) | (bit << addr);
                    self.slots[i].value = Value::new(new, w);
                } else {
                    let base = self.slots[i].mem_base;
                    let w = self.slots[i].width;
                    if addr < base {
                        return Ok(());
                    }
                    let off = (addr - base) as usize;
                    if off < self.slots[i].words.len() {
                        self.slots[i].words[off] = v.resize(w).as_u64();
                    }
                }
                Ok(())
            }
            RLValue::Range(sig, a, b) => {
                let msb = self.eval(a)?.as_u64() as i64;
                let lsb = self.eval(b)?.as_u64() as i64;
                let (hi, lo) = (msb.max(lsb) as u32, msb.min(lsb) as u32);
                let i = self.slot(sig)?;
                let w = self.slots[i].width;
                if lo >= w {
                    return Ok(());
                }
                let hi = hi.min(w - 1);
                let span = hi - lo + 1;
                let mask = Value::mask(span) << lo;
                let old = self.slots[i].value.as_u64();
                let new = (old & !mask) | ((v.as_u64() << lo) & mask);
                self.slots[i].value = Value::new(new, w);
                Ok(())
            }
            RLValue::Concat(parts) => {
                // MSB-first: the first part takes the high bits.
                let total = self.lvalue_width(lv)?;
                let mut remaining = total;
                let bits = v.resize(total).as_u64();
                for p in parts {
                    let w = self.lvalue_width(p)?;
                    remaining -= w;
                    let piece = (bits >> remaining) & Value::mask(w);
                    self.write_lvalue(p, Value::new(piece, w))?;
                }
                Ok(())
            }
        }
    }

    // ---- expression evaluation ----

    /// Evaluates `e` in an assignment context of width `ctx_width`: operands
    /// of arithmetic are extended to the context width first, matching
    /// Verilog's self-determined/context-determined width rules closely
    /// enough for the synthesizable subset.
    fn eval_ctx(&mut self, e: &RExpr, ctx_width: u32) -> Result<Value, SimError> {
        let v = self.eval_width(e, ctx_width)?;
        Ok(v.resize(ctx_width))
    }

    /// Width of an expression for self-determined contexts.
    fn expr_width(&self, e: &RExpr) -> Result<u32, SimError> {
        Ok(match e {
            RExpr::Sig(sig) => self.slots[self.slot(sig)?].width,
            RExpr::Lit { width, .. } => {
                if *width == 0 {
                    32
                } else {
                    (*width as u32).min(64)
                }
            }
            // A string literal is 8 bits per character (an empty string
            // behaves like "\0": one character).
            RExpr::Str(s) => (8 * s.len().max(1) as u32).min(64),
            RExpr::Unary(op, a) => match op {
                UnaryOp::LogicalNot
                | UnaryOp::RedAnd
                | UnaryOp::RedOr
                | UnaryOp::RedXor
                | UnaryOp::RedNand
                | UnaryOp::RedNor
                | UnaryOp::RedXnor => 1,
                _ => self.expr_width(a)?,
            },
            RExpr::Binary(op, a, b) => {
                use BinaryOp::*;
                match op {
                    LogicalAnd | LogicalOr | Eq | Ne | CaseEq | CaseNe | Lt | Le | Gt | Ge => 1,
                    Shl | Shr | AShl | AShr | Pow => self.expr_width(a)?,
                    _ => self.expr_width(a)?.max(self.expr_width(b)?),
                }
            }
            RExpr::Ternary(_, a, b) => self.expr_width(a)?.max(self.expr_width(b)?),
            RExpr::Concat(parts) => {
                let mut w = 0u32;
                for p in parts {
                    w += self.expr_width(p)?;
                }
                w.min(64)
            }
            RExpr::Repeat(n, inner) => {
                let reps = self.const_like(n)? as u32;
                reps.saturating_mul(self.expr_width(inner)?).min(64)
            }
            RExpr::Index(sig, _) => {
                let i = self.slot(sig)?;
                if self.slots[i].words.is_empty() {
                    1
                } else {
                    self.slots[i].width
                }
            }
            RExpr::RangeSelect(_, a, b) => {
                let msb = self.const_like(a)? as i64;
                let lsb = self.const_like(b)? as i64;
                ((msb - lsb).unsigned_abs() + 1).min(64) as u32
            }
            RExpr::IndexedSelect { width, .. } => (self.const_like(width)? as u32).min(64),
            RExpr::Call(f, args) => match f.as_str() {
                "$signed" | "$unsigned" => {
                    args.first().map(|a| self.expr_width(a)).transpose()?.unwrap_or(1)
                }
                "$clog2" => 32,
                _ => 32,
            },
        })
    }

    /// Const-ish evaluation used for widths of selects (indices may reference
    /// parameters, which live in the store).
    fn const_like(&self, e: &RExpr) -> Result<u64, SimError> {
        match e {
            RExpr::Lit { value, .. } => Ok(*value),
            RExpr::Sig(sig) => Ok(self.slots[self.slot(sig)?].value.as_u64()),
            RExpr::Binary(op, a, b) => {
                let a = self.const_like(a)?;
                let b = self.const_like(b)?;
                Ok(match op {
                    BinaryOp::Add => a.wrapping_add(b),
                    BinaryOp::Sub => a.wrapping_sub(b),
                    BinaryOp::Mul => a.wrapping_mul(b),
                    BinaryOp::Div => a.checked_div(b).unwrap_or(0),
                    _ => {
                        return Err(SimError::Unsupported(
                            "non-arithmetic operator in constant select".into(),
                        ))
                    }
                })
            }
            _ => Err(SimError::Unsupported("non-constant width expression".into())),
        }
    }

    /// Evaluates with self-determined width.
    fn eval(&mut self, e: &RExpr) -> Result<Value, SimError> {
        let w = self.expr_width(e)?;
        self.eval_width(e, w)
    }

    /// Evaluates `e`, extending leaf operands of context-determined
    /// operators to `ctx` bits.
    fn eval_width(&mut self, e: &RExpr, ctx: u32) -> Result<Value, SimError> {
        let ctx = ctx.clamp(1, 64);
        Ok(match e {
            RExpr::Sig(sig) => {
                let i = self.slot(sig)?;
                if !self.slots[i].words.is_empty() {
                    let n = &self.res.signals[i].name;
                    return Err(SimError::Unsupported(format!("whole-memory read of `{n}`")));
                }
                self.slots[i].value
            }
            RExpr::Lit { width, value } => {
                let w = if *width == 0 { ctx.max(32) } else { (*width as u32).min(64) };
                Value::new(*value, w)
            }
            RExpr::Str(s) => {
                let w = 8 * s.len() as u32;
                if w > 64 {
                    return Err(SimError::Unsupported("string literal wider than 64 bits".into()));
                }
                let mut bits = 0u64;
                for byte in s.bytes() {
                    bits = (bits << 8) | u64::from(byte);
                }
                Value::new(bits, w.max(8))
            }
            RExpr::Unary(op, a) => {
                use UnaryOp::*;
                let av = self.eval_width(a, ctx)?;
                match op {
                    Neg => Value::new(av.as_u64().wrapping_neg(), ctx.max(av.width())),
                    Plus => av,
                    BitNot => Value::new(!av.as_u64(), av.width()),
                    LogicalNot => Value::bit(!av.is_truthy()),
                    RedAnd => Value::bit(av.as_u64() == Value::mask(av.width())),
                    RedOr => Value::bit(av.is_truthy()),
                    RedXor => Value::bit(av.as_u64().count_ones() % 2 == 1),
                    RedNand => Value::bit(av.as_u64() != Value::mask(av.width())),
                    RedNor => Value::bit(!av.is_truthy()),
                    RedXnor => Value::bit(av.as_u64().count_ones() % 2 == 0),
                }
            }
            RExpr::Binary(op, a, b) => {
                use BinaryOp::*;
                match op {
                    LogicalAnd => {
                        let av = self.eval(a)?;
                        // Verilog does not short-circuit, but side-effect-free
                        // evaluation makes it equivalent.
                        let bv = self.eval(b)?;
                        Value::bit(av.is_truthy() && bv.is_truthy())
                    }
                    LogicalOr => {
                        let av = self.eval(a)?;
                        let bv = self.eval(b)?;
                        Value::bit(av.is_truthy() || bv.is_truthy())
                    }
                    Eq | CaseEq | Ne | CaseNe | Lt | Le | Gt | Ge => {
                        let w = self.expr_width(a)?.max(self.expr_width(b)?);
                        let av = self.eval_width(a, w)?.resize(w);
                        let bv = self.eval_width(b, w)?.resize(w);
                        let (x, y) = (av.as_u64(), bv.as_u64());
                        Value::bit(match op {
                            Eq | CaseEq => x == y,
                            Ne | CaseNe => x != y,
                            Lt => x < y,
                            Le => x <= y,
                            Gt => x > y,
                            Ge => x >= y,
                            _ => unreachable!(),
                        })
                    }
                    Shl | AShl => {
                        let av = self.eval_width(a, ctx)?;
                        let sh = self.eval(b)?.as_u64();
                        let w = av.width().max(ctx);
                        if sh >= 64 {
                            Value::zero(w)
                        } else {
                            Value::new(av.as_u64() << sh, w)
                        }
                    }
                    Shr => {
                        let av = self.eval_width(a, ctx)?;
                        let sh = self.eval(b)?.as_u64();
                        if sh >= 64 {
                            Value::zero(av.width())
                        } else {
                            Value::new(av.as_u64() >> sh, av.width())
                        }
                    }
                    AShr => {
                        let av = self.eval_width(a, ctx)?;
                        let sh = self.eval(b)?.as_u64().min(63) as u32;
                        let signed = av.to_signed() >> sh;
                        Value::new(signed as u64, av.width())
                    }
                    Pow => {
                        let av = self.eval(a)?;
                        let bv = self.eval(b)?;
                        let r = av.as_u64().checked_pow(bv.as_u64().min(64) as u32).unwrap_or(0);
                        Value::new(r, ctx.max(av.width()))
                    }
                    _ => {
                        let w = ctx.max(self.expr_width(a)?).max(self.expr_width(b)?).min(64);
                        let av = self.eval_width(a, w)?.resize(w);
                        let bv = self.eval_width(b, w)?.resize(w);
                        let (x, y) = (av.as_u64(), bv.as_u64());
                        let r = match op {
                            Add => x.wrapping_add(y),
                            Sub => x.wrapping_sub(y),
                            Mul => x.wrapping_mul(y),
                            Div => x.checked_div(y).unwrap_or(0),
                            Mod => {
                                if y == 0 {
                                    0
                                } else {
                                    x % y
                                }
                            }
                            BitAnd => x & y,
                            BitOr => x | y,
                            BitXor => x ^ y,
                            BitXnor => !(x ^ y),
                            _ => unreachable!("handled above"),
                        };
                        Value::new(r, w)
                    }
                }
            }
            RExpr::Ternary(c, a, b) => {
                let cv = self.eval(c)?;
                if cv.is_truthy() {
                    self.eval_width(a, ctx)?
                } else {
                    self.eval_width(b, ctx)?
                }
            }
            RExpr::Concat(parts) => {
                let mut bits: u64 = 0;
                let mut total: u32 = 0;
                for p in parts {
                    let pv = self.eval(p)?;
                    let w = pv.width();
                    if total + w > 64 {
                        return Err(SimError::Unsupported("concatenation wider than 64".into()));
                    }
                    bits = (bits << w) | pv.as_u64();
                    total += w;
                }
                Value::new(bits, total.max(1))
            }
            RExpr::Repeat(n, inner) => {
                let reps = self.const_like(n)?;
                let iv = self.eval(inner)?;
                let w = iv.width();
                let total = (reps as u32).saturating_mul(w);
                if total > 64 {
                    return Err(SimError::Unsupported("replication wider than 64".into()));
                }
                let mut bits = 0u64;
                for _ in 0..reps {
                    bits = (bits << w) | iv.as_u64();
                }
                Value::new(bits, total.max(1))
            }
            RExpr::Index(sig, idx) => {
                let addr = self.eval(idx)?.as_u64();
                let i = self.slot(sig)?;
                if self.slots[i].words.is_empty() {
                    Value::bit(self.slots[i].value.bit_at(addr.min(u64::from(u32::MAX)) as u32))
                } else {
                    let base = self.slots[i].mem_base;
                    let w = self.slots[i].width;
                    let word = addr
                        .checked_sub(base)
                        .and_then(|off| self.slots[i].words.get(off as usize).copied())
                        .unwrap_or(0);
                    Value::new(word, w)
                }
            }
            RExpr::RangeSelect(sig, a, b) => {
                let msb = self.const_like(a)? as i64;
                let lsb = self.const_like(b)? as i64;
                let (hi, lo) = (msb.max(lsb) as u32, msb.min(lsb) as u32);
                let i = self.slot(sig)?;
                let v = self.slots[i].value.as_u64();
                let span = (hi - lo + 1).min(64);
                Value::new(v >> lo.min(63), span)
            }
            RExpr::IndexedSelect { sig, base, width, ascending } => {
                let b = self.eval(base)?.as_u64();
                let w = self.const_like(width)? as u32;
                let lo =
                    if *ascending { b } else { b.saturating_sub(u64::from(w).wrapping_sub(1)) };
                let i = self.slot(sig)?;
                let v = self.slots[i].value.as_u64();
                Value::new(v >> lo.min(63), w.clamp(1, 64))
            }
            RExpr::Call(f, args) => match f.as_str() {
                "$signed" | "$unsigned" => {
                    let a = args.first().ok_or_else(|| {
                        SimError::Unsupported(format!("{f} requires one argument"))
                    })?;
                    self.eval_width(a, ctx)?
                }
                "$clog2" => {
                    let a = args.first().ok_or_else(|| {
                        SimError::Unsupported("$clog2 requires one argument".into())
                    })?;
                    let v = self.eval(a)?.as_u64();
                    let r = if v <= 1 { 0 } else { 64 - (v - 1).leading_zeros() };
                    Value::new(u64::from(r), 32)
                }
                other => return Err(SimError::Unsupported(format!("system function `{other}`"))),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(src: &str, top: &str) -> Simulator {
        Simulator::from_source(src, top).expect("build simulator")
    }

    #[test]
    fn half_adder_truth_table() {
        let mut s = sim(
            "module ha(input a, input b, output sum, output cout);\n\
             assign sum = a ^ b; assign cout = a & b; endmodule",
            "ha",
        );
        for (a, b, expect_s, expect_c) in [(0, 0, 0, 0), (0, 1, 1, 0), (1, 0, 1, 0), (1, 1, 0, 1)] {
            s.set("a", a).unwrap();
            s.set("b", b).unwrap();
            assert_eq!(s.get("sum").unwrap().as_u64(), expect_s);
            assert_eq!(s.get("cout").unwrap().as_u64(), expect_c);
        }
    }

    #[test]
    fn eight_bit_adder_with_concat() {
        let mut s = sim(
            "module add(input [7:0] a, b, input cin, output [7:0] s, output cout);\n\
             assign {cout, s} = a + b + cin; endmodule",
            "add",
        );
        s.set("a", 200).unwrap();
        s.set("b", 100).unwrap();
        s.set("cin", 1).unwrap();
        assert_eq!(s.get("s").unwrap().as_u64(), (200 + 100 + 1) & 0xFF);
        assert_eq!(s.get("cout").unwrap().as_u64(), 1);
    }

    #[test]
    fn counter_counts_and_resets() {
        let mut s = sim(
            "module counter(input clk, input rst, input en, output reg [3:0] q);\n\
             always @(posedge clk) begin\n\
               if (rst) q <= 4'd0; else if (en) q <= q + 4'd1;\n\
             end endmodule",
            "counter",
        );
        s.set("rst", 1).unwrap();
        s.clock("clk").unwrap();
        assert_eq!(s.get("q").unwrap().as_u64(), 0);
        s.set("rst", 0).unwrap();
        s.set("en", 1).unwrap();
        for i in 1..=20u64 {
            s.clock("clk").unwrap();
            assert_eq!(s.get("q").unwrap().as_u64(), i % 16);
        }
        s.set("en", 0).unwrap();
        s.clock("clk").unwrap();
        assert_eq!(s.get("q").unwrap().as_u64(), 4); // 20 % 16
    }

    #[test]
    fn async_reset_fires_without_clock() {
        let mut s = sim(
            "module dff(input clk, input rst, input d, output reg q);\n\
             always @(posedge clk or posedge rst) begin\n\
               if (rst) q <= 1'b0; else q <= d;\n\
             end endmodule",
            "dff",
        );
        s.set("d", 1).unwrap();
        s.clock("clk").unwrap();
        assert_eq!(s.get("q").unwrap().as_u64(), 1);
        s.set("rst", 1).unwrap(); // async: no clock needed
        assert_eq!(s.get("q").unwrap().as_u64(), 0);
    }

    #[test]
    fn comb_always_with_case() {
        let mut s = sim(
            "module dec(input [1:0] sel, output reg [3:0] y);\n\
             always @* case (sel)\n\
               2'd0: y = 4'b0001; 2'd1: y = 4'b0010;\n\
               2'd2: y = 4'b0100; default: y = 4'b1000; endcase endmodule",
            "dec",
        );
        for (sel, y) in [(0u64, 1u64), (1, 2), (2, 4), (3, 8)] {
            s.set("sel", sel).unwrap();
            assert_eq!(s.get("y").unwrap().as_u64(), y);
        }
    }

    #[test]
    fn nonblocking_swap_is_simultaneous() {
        let mut s = sim(
            "module swap(input clk, input load, input [3:0] ia, ib, output reg [3:0] a, b);\n\
             always @(posedge clk) begin\n\
               if (load) begin a <= ia; b <= ib; end\n\
               else begin a <= b; b <= a; end\n\
             end endmodule",
            "swap",
        );
        s.set("load", 1).unwrap();
        s.set("ia", 3).unwrap();
        s.set("ib", 9).unwrap();
        s.clock("clk").unwrap();
        s.set("load", 0).unwrap();
        s.clock("clk").unwrap();
        assert_eq!(s.get("a").unwrap().as_u64(), 9);
        assert_eq!(s.get("b").unwrap().as_u64(), 3);
    }

    #[test]
    fn hierarchical_ripple_adder() {
        let src = "module fa(input a, input b, input cin, output s, output cout);\n\
                   assign s = a ^ b ^ cin;\n\
                   assign cout = (a & b) | (a & cin) | (b & cin);\nendmodule\n\
                   module rca4(input [3:0] a, b, input cin, output [3:0] s, output cout);\n\
                   wire c0, c1, c2;\n\
                   fa f0(.a(a[0]), .b(b[0]), .cin(cin), .s(s[0]), .cout(c0));\n\
                   fa f1(.a(a[1]), .b(b[1]), .cin(c0), .s(s[1]), .cout(c1));\n\
                   fa f2(.a(a[2]), .b(b[2]), .cin(c1), .s(s[2]), .cout(c2));\n\
                   fa f3(.a(a[3]), .b(b[3]), .cin(c2), .s(s[3]), .cout(cout));\nendmodule";
        let mut s = sim(src, "rca4");
        for a in 0..16u64 {
            for b in 0..16u64 {
                s.set("a", a).unwrap();
                s.set("b", b).unwrap();
                let sum = s.get("s").unwrap().as_u64();
                let cout = s.get("cout").unwrap().as_u64();
                assert_eq!((cout << 4) | sum, a + b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn memory_write_read() {
        let mut s = sim(
            "module ram(input clk, input we, input [3:0] addr, input [7:0] din, output reg [7:0] dout);\n\
             reg [7:0] mem [0:15];\n\
             always @(posedge clk) begin\n\
               if (we) mem[addr] <= din;\n\
               dout <= mem[addr];\n\
             end endmodule",
            "ram",
        );
        s.set("we", 1).unwrap();
        s.set("addr", 5).unwrap();
        s.set("din", 0xAB).unwrap();
        s.clock("clk").unwrap();
        s.set("we", 0).unwrap();
        s.clock("clk").unwrap();
        assert_eq!(s.get("dout").unwrap().as_u64(), 0xAB);
    }

    #[test]
    fn for_loop_reverser() {
        let mut s = sim(
            "module rev(input [7:0] a, output reg [7:0] y);\n\
             integer i;\n\
             always @* begin\n\
               for (i = 0; i < 8; i = i + 1) y[i] = a[7 - i];\n\
             end endmodule",
            "rev",
        );
        s.set("a", 0b1100_1010).unwrap();
        assert_eq!(s.get("y").unwrap().as_u64(), 0b0101_0011);
    }

    #[test]
    fn fsm_sequence_detector() {
        // Detects the sequence 1,0,1 on x (Moore-style).
        let src = "module det(input clk, input rst, input x, output y);\n\
                   reg [1:0] state, next;\n\
                   localparam S0 = 2'd0, S1 = 2'd1, S2 = 2'd2, S3 = 2'd3;\n\
                   always @(posedge clk) begin\n\
                     if (rst) state <= S0; else state <= next;\n\
                   end\n\
                   always @* begin\n\
                     case (state)\n\
                       S0: next = x ? S1 : S0;\n\
                       S1: next = x ? S1 : S2;\n\
                       S2: next = x ? S3 : S0;\n\
                       S3: next = x ? S1 : S2;\n\
                       default: next = S0;\n\
                     endcase\n\
                   end\n\
                   assign y = state == S3;\nendmodule";
        let mut s = sim(src, "det");
        s.set("rst", 1).unwrap();
        s.clock("clk").unwrap();
        s.set("rst", 0).unwrap();
        let stream = [1u64, 0, 1, 1, 0, 1, 0, 0, 1];
        let expect_y = [0u64, 0, 1, 0, 0, 1, 0, 0, 0];
        for (x, ey) in stream.iter().zip(expect_y.iter()) {
            s.set("x", *x).unwrap();
            s.clock("clk").unwrap();
            assert_eq!(s.get("y").unwrap().as_u64(), *ey, "x={x}");
        }
    }

    #[test]
    fn shift_operations() {
        let mut s = sim(
            "module sh(input [7:0] a, input [2:0] n, output [7:0] l, output [7:0] r, output signed [7:0] ar);\n\
             assign l = a << n; assign r = a >> n; assign ar = $signed(a) >>> n; endmodule",
            "sh",
        );
        s.set("a", 0x90).unwrap();
        s.set("n", 2).unwrap();
        assert_eq!(s.get("l").unwrap().as_u64(), 0x40);
        assert_eq!(s.get("r").unwrap().as_u64(), 0x24);
        assert_eq!(s.get("ar").unwrap().as_u64(), 0xE4);
    }

    #[test]
    fn oscillator_detected() {
        let r = Simulator::from_source(
            "module osc(input a, output y); wire n; assign n = ~n; assign y = n & a; endmodule",
            "osc",
        );
        assert!(matches!(r, Err(SimError::Oscillation)), "{r:?}");
    }

    #[test]
    fn set_non_input_fails() {
        let mut s = sim("module m(input a, output y); assign y = a; endmodule", "m");
        assert!(matches!(s.set("y", 1), Err(SimError::NotAnInput(_))));
        assert!(matches!(s.set("nope", 1), Err(SimError::NotAnInput(_))));
    }

    #[test]
    fn get_unknown_fails() {
        let s = sim("module m(input a, output y); assign y = a; endmodule", "m");
        assert!(matches!(s.get("zz"), Err(SimError::UnknownSignal(_))));
    }

    #[test]
    fn parameterized_width_works() {
        let mut s = sim(
            "module p #(parameter W = 16)(input [W-1:0] a, output [W-1:0] y);\n\
             assign y = a + 1'b1; endmodule",
            "p",
        );
        s.set("a", 0xFFFF).unwrap();
        assert_eq!(s.get("y").unwrap().as_u64(), 0, "wraps at parameterised width");
    }

    #[test]
    fn ternary_mux() {
        let mut s = sim(
            "module mux(input sel, input [3:0] a, b, output [3:0] y);\n\
             assign y = sel ? a : b; endmodule",
            "mux",
        );
        s.set("a", 5).unwrap();
        s.set("b", 10).unwrap();
        s.set("sel", 1).unwrap();
        assert_eq!(s.get("y").unwrap().as_u64(), 5);
        s.set("sel", 0).unwrap();
        assert_eq!(s.get("y").unwrap().as_u64(), 10);
    }

    #[test]
    fn reduction_operators() {
        let mut s = sim(
            "module red(input [3:0] a, output all, output any, output par);\n\
             assign all = &a; assign any = |a; assign par = ^a; endmodule",
            "red",
        );
        s.set("a", 0xF).unwrap();
        assert_eq!(s.get("all").unwrap().as_u64(), 1);
        s.set("a", 0b0110).unwrap();
        assert_eq!(s.get("all").unwrap().as_u64(), 0);
        assert_eq!(s.get("any").unwrap().as_u64(), 1);
        assert_eq!(s.get("par").unwrap().as_u64(), 0);
        s.set("a", 0b0100).unwrap();
        assert_eq!(s.get("par").unwrap().as_u64(), 1);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let mut s = sim(
            "module d(input [7:0] a, b, output [7:0] q, output [7:0] r);\n\
             assign q = a / b; assign r = a % b; endmodule",
            "d",
        );
        s.set("a", 42).unwrap();
        s.set("b", 0).unwrap();
        assert_eq!(s.get("q").unwrap().as_u64(), 0);
        assert_eq!(s.get("r").unwrap().as_u64(), 0);
        s.set("b", 5).unwrap();
        assert_eq!(s.get("q").unwrap().as_u64(), 8);
        assert_eq!(s.get("r").unwrap().as_u64(), 2);
    }

    #[test]
    fn clog2_builtin() {
        let mut s =
            sim("module c(input [7:0] a, output [4:0] y); assign y = $clog2(a); endmodule", "c");
        s.set("a", 1).unwrap();
        assert_eq!(s.get("y").unwrap().as_u64(), 0);
        s.set("a", 2).unwrap();
        assert_eq!(s.get("y").unwrap().as_u64(), 1);
        s.set("a", 9).unwrap();
        assert_eq!(s.get("y").unwrap().as_u64(), 4);
    }

    #[test]
    fn indexed_part_select() {
        let mut s = sim(
            "module ips(input [31:0] a, input [1:0] sel, output [7:0] y);\n\
             assign y = a[sel*8 +: 8]; endmodule",
            "ips",
        );
        s.set("a", 0xDDCCBBAA).unwrap();
        for (sel, byte) in [(0u64, 0xAAu64), (1, 0xBB), (2, 0xCC), (3, 0xDD)] {
            s.set("sel", sel).unwrap();
            assert_eq!(s.get("y").unwrap().as_u64(), byte);
        }
    }

    #[test]
    fn string_literal_width_is_8_per_char() {
        // "AB" is a 16-bit value 0x4142; zero-extended into a 32-bit signal.
        let mut s = sim(
            "module str(input e, output [31:0] y, output [7:0] z);\n\
             assign y = e ? \"AB\" : 32'd0; assign z = \"Z\"; endmodule",
            "str",
        );
        s.set("e", 1).unwrap();
        assert_eq!(s.get("y").unwrap().as_u64(), 0x4142);
        assert_eq!(s.get("z").unwrap().as_u64(), u64::from(b'Z'));
    }
}
