//! Name resolution: lowering the flat design's AST to dense slot indices.
//!
//! Both simulation backends — the event-driven reference engine
//! ([`super::engine`]) and the bytecode VM ([`super::vm`]) — evaluate the
//! *resolved* design produced here instead of the raw [`FlatDesign`] AST.
//! Resolution happens once per design: every identifier is looked up in the
//! signal table exactly once, so the per-evaluation string-keyed HashMap
//! lookups the engine used to perform disappear from the hot loops.
//!
//! Resolution is deliberately infallible: a name that does not resolve
//! becomes [`SigRef::Unknown`], which raises `SimError::UnknownSignal` only
//! when (and exactly where) the reference engine would have raised it — at
//! evaluation time, not at build time. That keeps error classification
//! bit-identical between a resolved design and the historical lazy-lookup
//! behaviour.

use super::elab::FlatDesign;
use crate::ast::{
    CaseArm, Edge, Expr, LValue, Sensitivity, Stmt, {BinaryOp, UnaryOp},
};
use std::collections::HashMap;

/// A resolved signal reference: either a dense slot index or a name that
/// failed to resolve (kept for the deferred `UnknownSignal` error).
#[derive(Debug, Clone, PartialEq)]
pub enum SigRef {
    /// Index into [`ResolvedDesign::signals`].
    Slot(u32),
    /// Unresolved name; evaluating it raises `UnknownSignal`.
    Unknown(String),
}

/// A resolved expression (mirrors [`Expr`] with [`SigRef`] leaves).
#[derive(Debug, Clone, PartialEq)]
pub enum RExpr {
    /// Signal read.
    Sig(SigRef),
    /// Literal; `width == 0` means unsized.
    Lit {
        /// Declared width (0 when unsized).
        width: u16,
        /// Literal value.
        value: u64,
    },
    /// String literal (8 bits per character).
    Str(String),
    /// Unary operation.
    Unary(UnaryOp, Box<RExpr>),
    /// Binary operation.
    Binary(BinaryOp, Box<RExpr>, Box<RExpr>),
    /// `cond ? a : b`
    Ternary(Box<RExpr>, Box<RExpr>, Box<RExpr>),
    /// `{a, b, c}`
    Concat(Vec<RExpr>),
    /// `{n{expr}}`
    Repeat(Box<RExpr>, Box<RExpr>),
    /// `x[i]`
    Index(SigRef, Box<RExpr>),
    /// `x[msb:lsb]`
    RangeSelect(SigRef, Box<RExpr>, Box<RExpr>),
    /// `x[base +: width]` / `x[base -: width]`
    IndexedSelect {
        /// Selected signal.
        sig: SigRef,
        /// Base expression.
        base: Box<RExpr>,
        /// Constant width expression.
        width: Box<RExpr>,
        /// True for `+:`.
        ascending: bool,
    },
    /// System/function call.
    Call(String, Vec<RExpr>),
}

/// A resolved assignable target.
#[derive(Debug, Clone, PartialEq)]
pub enum RLValue {
    /// Plain signal.
    Ident(SigRef),
    /// Bit/element select.
    Index(SigRef, RExpr),
    /// Part select.
    Range(SigRef, RExpr, RExpr),
    /// Concatenation of targets (MSB first).
    Concat(Vec<RLValue>),
}

/// A resolved procedural statement.
#[derive(Debug, Clone, PartialEq)]
pub enum RStmt {
    /// `lhs = rhs;`
    Blocking(RLValue, RExpr),
    /// `lhs <= rhs;`
    NonBlocking(RLValue, RExpr),
    /// `if (cond) …`
    If {
        /// Condition.
        cond: RExpr,
        /// Then branch.
        then_branch: Box<RStmt>,
        /// Optional else branch.
        else_branch: Option<Box<RStmt>>,
    },
    /// `case (subject) … endcase`
    Case {
        /// Subject expression.
        subject: RExpr,
        /// Arms in source order.
        arms: Vec<RArm>,
    },
    /// `for (init; cond; step) body`
    For {
        /// Loop initialisation.
        init: Box<RStmt>,
        /// Loop condition.
        cond: RExpr,
        /// Step statement.
        step: Box<RStmt>,
        /// Body.
        body: Box<RStmt>,
    },
    /// `begin … end`
    Block(Vec<RStmt>),
    /// System call or empty statement: executes nothing but still counts
    /// against the statement budget like any other statement.
    Nop,
}

/// One resolved case arm; empty `labels` means `default`.
#[derive(Debug, Clone, PartialEq)]
pub struct RArm {
    /// Match labels.
    pub labels: Vec<RExpr>,
    /// Arm body.
    pub body: RStmt,
}

/// Static description of one signal slot.
#[derive(Debug, Clone, PartialEq)]
pub struct RSignal {
    /// Flat (dotted) name.
    pub name: String,
    /// Bit width.
    pub width: u32,
    /// Word count when this is a memory, else 0.
    pub depth: u32,
    /// Lowest memory address.
    pub mem_base: u64,
}

/// An edge-sensitive always block with resolved triggers.
#[derive(Debug, Clone, PartialEq)]
pub struct REdgeBlock {
    /// `(polarity, index into edge_sigs)` triggers.
    pub triggers: Vec<(Edge, usize)>,
    /// Body statement.
    pub body: RStmt,
}

/// The fully resolved design both backends execute.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResolvedDesign {
    /// Slot table.
    pub signals: Vec<RSignal>,
    /// Name → slot lookup (used only at the `get`/`set` API boundary).
    pub names: HashMap<String, u32>,
    /// Continuous assigns in evaluation order.
    pub assigns: Vec<(RLValue, RExpr)>,
    /// Bodies of combinational (non-edge) always blocks, in source order.
    pub comb: Vec<RStmt>,
    /// Edge-sensitive always blocks, in source order.
    pub edges: Vec<REdgeBlock>,
    /// Deduplicated edge-trigger signals: `(name, slot)`; `None` slot means
    /// the signal never resolves and the trigger can never fire.
    pub edge_sigs: Vec<(String, Option<u32>)>,
    /// Initial constant values in application order.
    pub constants: Vec<(SigRef, u64)>,
    /// Top-level input names.
    pub inputs: Vec<String>,
    /// Top-level output names.
    pub outputs: Vec<String>,
}

impl ResolvedDesign {
    /// Resolves a flat design. Never fails; unknown names become
    /// [`SigRef::Unknown`] and error lazily like the engine always has.
    pub fn resolve(d: &FlatDesign) -> ResolvedDesign {
        let mut names = HashMap::with_capacity(d.signals.len());
        let signals: Vec<RSignal> = d
            .signals
            .iter()
            .enumerate()
            .map(|(i, s)| {
                names.insert(s.name.clone(), i as u32);
                RSignal {
                    name: s.name.clone(),
                    width: s.width,
                    depth: s.depth,
                    mem_base: s.mem_base,
                }
            })
            .collect();

        let r = Resolver { names: &names };
        let assigns =
            d.assigns.iter().map(|a| (r.lvalue(&a.lhs), r.expr(&a.rhs))).collect::<Vec<_>>();

        // Edge-trigger signals are deduplicated by name, mirroring the
        // engine's `edge_prev: HashMap<String, bool>` keying. Triggers are
        // appended here and deduplicated in a second pass.
        let mut edge_sigs: Vec<(String, Option<u32>)> = Vec::new();
        let mut comb = Vec::new();
        let mut edges = Vec::new();
        for blk in &d.always {
            match &blk.sensitivity {
                Sensitivity::Edges(es) => {
                    let triggers = es
                        .iter()
                        .map(|e| {
                            let i = edge_sigs.len();
                            edge_sigs.push((e.signal.clone(), names.get(&e.signal).copied()));
                            (e.edge, i)
                        })
                        .collect();
                    edges.push(REdgeBlock { triggers, body: r.stmt(&blk.body) });
                }
                Sensitivity::Star | Sensitivity::Signals(_) => comb.push(r.stmt(&blk.body)),
            }
        }
        dedup_fixup(&mut edges, &mut edge_sigs);

        let constants =
            d.constants.iter().map(|(n, v)| (r.sig(n), *v)).collect::<Vec<(SigRef, u64)>>();

        ResolvedDesign {
            signals,
            names,
            assigns,
            comb,
            edges,
            edge_sigs,
            constants,
            inputs: d.inputs.clone(),
            outputs: d.outputs.clone(),
        }
    }
}

/// Re-deduplicates edge signals after the first pass (the inline map above
/// cannot borrow across pushes, so duplicates may have been appended).
fn dedup_fixup(edges: &mut [REdgeBlock], edge_sigs: &mut Vec<(String, Option<u32>)>) {
    let mut first: HashMap<String, usize> = HashMap::new();
    let mut remap: Vec<usize> = Vec::with_capacity(edge_sigs.len());
    let mut kept: Vec<(String, Option<u32>)> = Vec::new();
    for (name, slot) in edge_sigs.iter() {
        match first.get(name) {
            Some(&i) => remap.push(i),
            None => {
                let i = kept.len();
                first.insert(name.clone(), i);
                kept.push((name.clone(), *slot));
                remap.push(i);
            }
        }
    }
    for blk in edges.iter_mut() {
        for (_, i) in blk.triggers.iter_mut() {
            *i = remap[*i];
        }
    }
    *edge_sigs = kept;
}

struct Resolver<'a> {
    names: &'a HashMap<String, u32>,
}

impl Resolver<'_> {
    fn sig(&self, name: &str) -> SigRef {
        match self.names.get(name) {
            Some(&i) => SigRef::Slot(i),
            None => SigRef::Unknown(name.to_owned()),
        }
    }

    fn expr(&self, e: &Expr) -> RExpr {
        match e {
            Expr::Ident(n) => RExpr::Sig(self.sig(n)),
            Expr::Literal { width, value, .. } => RExpr::Lit { width: *width, value: *value },
            Expr::StringLit(s) => RExpr::Str(s.clone()),
            Expr::Unary(op, a) => RExpr::Unary(*op, Box::new(self.expr(a))),
            Expr::Binary(op, a, b) => {
                RExpr::Binary(*op, Box::new(self.expr(a)), Box::new(self.expr(b)))
            }
            Expr::Ternary(c, a, b) => RExpr::Ternary(
                Box::new(self.expr(c)),
                Box::new(self.expr(a)),
                Box::new(self.expr(b)),
            ),
            Expr::Concat(parts) => RExpr::Concat(parts.iter().map(|p| self.expr(p)).collect()),
            Expr::Repeat(n, inner) => {
                RExpr::Repeat(Box::new(self.expr(n)), Box::new(self.expr(inner)))
            }
            Expr::Index(n, i) => RExpr::Index(self.sig(n), Box::new(self.expr(i))),
            Expr::RangeSelect(n, a, b) => {
                RExpr::RangeSelect(self.sig(n), Box::new(self.expr(a)), Box::new(self.expr(b)))
            }
            Expr::IndexedSelect { name, base, width, ascending } => RExpr::IndexedSelect {
                sig: self.sig(name),
                base: Box::new(self.expr(base)),
                width: Box::new(self.expr(width)),
                ascending: *ascending,
            },
            Expr::Call(f, args) => {
                RExpr::Call(f.clone(), args.iter().map(|a| self.expr(a)).collect())
            }
        }
    }

    fn lvalue(&self, lv: &LValue) -> RLValue {
        match lv {
            LValue::Ident(n) => RLValue::Ident(self.sig(n)),
            LValue::Index(n, e) => RLValue::Index(self.sig(n), self.expr(e)),
            LValue::Range(n, a, b) => RLValue::Range(self.sig(n), self.expr(a), self.expr(b)),
            LValue::Concat(parts) => {
                RLValue::Concat(parts.iter().map(|p| self.lvalue(p)).collect())
            }
        }
    }

    fn stmt(&self, s: &Stmt) -> RStmt {
        match s {
            Stmt::Blocking(lv, e) => RStmt::Blocking(self.lvalue(lv), self.expr(e)),
            Stmt::NonBlocking(lv, e) => RStmt::NonBlocking(self.lvalue(lv), self.expr(e)),
            Stmt::If { cond, then_branch, else_branch } => RStmt::If {
                cond: self.expr(cond),
                then_branch: Box::new(self.stmt(then_branch)),
                else_branch: else_branch.as_ref().map(|e| Box::new(self.stmt(e))),
            },
            Stmt::Case { subject, arms, .. } => RStmt::Case {
                subject: self.expr(subject),
                arms: arms.iter().map(|a| self.arm(a)).collect(),
            },
            Stmt::For { init, cond, step, body } => RStmt::For {
                init: Box::new(self.stmt(init)),
                cond: self.expr(cond),
                step: Box::new(self.stmt(step)),
                body: Box::new(self.stmt(body)),
            },
            Stmt::Block(stmts) => RStmt::Block(stmts.iter().map(|s| self.stmt(s)).collect()),
            Stmt::SystemCall(_, _) | Stmt::Empty => RStmt::Nop,
        }
    }

    fn arm(&self, a: &CaseArm) -> RArm {
        RArm { labels: a.labels.iter().map(|l| self.expr(l)).collect(), body: self.stmt(&a.body) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::sim::elaborate;

    fn resolve_src(src: &str, top: &str) -> ResolvedDesign {
        let f = parse(src).unwrap();
        ResolvedDesign::resolve(&elaborate(&f, top).unwrap())
    }

    #[test]
    fn idents_become_slots() {
        let r = resolve_src("module m(input a, output y); assign y = ~a; endmodule", "m");
        assert_eq!(r.assigns.len(), 1);
        let (lhs, rhs) = &r.assigns[0];
        assert!(matches!(lhs, RLValue::Ident(SigRef::Slot(_))));
        assert!(matches!(rhs, RExpr::Unary(UnaryOp::BitNot, inner)
            if matches!(&**inner, RExpr::Sig(SigRef::Slot(_)))));
    }

    #[test]
    fn unknown_names_are_deferred_not_dropped() {
        // `b` is never declared: the assign must keep an Unknown ref so the
        // engine can raise UnknownSignal at evaluation time.
        let r = resolve_src("module m(input a, output y); assign y = b; endmodule", "m");
        let (_, rhs) = &r.assigns[0];
        assert!(matches!(rhs, RExpr::Sig(SigRef::Unknown(n)) if n == "b"));
    }

    #[test]
    fn edge_signals_dedup_by_name() {
        let r = resolve_src(
            "module m(input clk, input rst, output reg q, output reg p);\n\
             always @(posedge clk or posedge rst) q <= 1'b1;\n\
             always @(negedge clk) p <= 1'b0; endmodule",
            "m",
        );
        assert_eq!(r.edges.len(), 2);
        assert_eq!(r.edge_sigs.len(), 2, "clk deduped across blocks: {:?}", r.edge_sigs);
        let clk = r.edge_sigs.iter().position(|(n, _)| n == "clk").unwrap();
        assert_eq!(r.edges[1].triggers, vec![(Edge::Neg, clk)]);
    }

    #[test]
    fn comb_and_edge_blocks_partition_in_order() {
        let r = resolve_src(
            "module m(input clk, input a, output reg x, output reg y);\n\
             always @* x = a;\n\
             always @(posedge clk) y <= a; endmodule",
            "m",
        );
        assert_eq!(r.comb.len(), 1);
        assert_eq!(r.edges.len(), 1);
    }
}
