//! Two-state simulation of the Verilog subset.
//!
//! The VerilogEval-substitute benchmark (crate `pyranet-eval`) decides
//! functional correctness by driving a candidate module with stimulus
//! vectors and comparing its outputs against a golden reference — the same
//! check VerilogEval performs with a commercial simulator. This module is
//! that simulator, with two interchangeable backends:
//!
//! * [`elab`] flattens a multi-module design into a single scope (instances
//!   are inlined with `inst.signal` renaming, parameters become constants);
//! * [`resolve`] rewrites the flat design once, replacing every signal name
//!   with a dense slot index so neither backend does string lookups in its
//!   evaluation loops;
//! * [`engine`] is the retained event-driven **reference** interpreter — it
//!   owns the signal store and walks resolved expression trees directly;
//! * [`compile`] lowers a resolved design into flat [`bytecode`] — stack
//!   machine instruction streams with fixed evaluation schedules — which the
//!   allocation-free [`vm`] executes.
//!
//! The compiled backend is the default (it evaluates the same design
//! many times faster, which matters when one golden module is driven for
//! thousands of stimulus vectors); the reference engine is the spec oracle.
//! The two are pinned bit-identical — same output values, same `SimError`
//! classifications — by differential unit and property tests. Designs the
//! compiler cannot prove it can mirror exactly fall back to the reference
//! engine silently (see [`SimDesign`]), so identity holds by construction.
//!
//! Values are two-state (`0`/`1`) vectors of up to 64 bits ([`Value`]).
//! `x`/`z` digits in literals are read as `0`, which matches how the corpus
//! generators and benchmark problems use them.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use pyranet_verilog::Simulator;
//!
//! let src = "module counter(input clk, input rst, output reg [3:0] q);\n\
//!            always @(posedge clk) begin\n\
//!              if (rst) q <= 4'd0; else q <= q + 4'd1;\n\
//!            end\nendmodule";
//! let mut sim = Simulator::from_source(src, "counter")?;
//! sim.set("rst", 1)?;
//! sim.clock("clk")?;
//! sim.set("rst", 0)?;
//! sim.clock("clk")?;
//! sim.clock("clk")?;
//! assert_eq!(sim.get("q")?.as_u64(), 2);
//! # Ok(())
//! # }
//! ```
//!
//! Compile-once, run-many via the facade:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use pyranet_verilog::{SimDesign, SimMode};
//!
//! let src = "module inv(input a, output y); assign y = ~a; endmodule";
//! let design = SimDesign::build(src, "inv", SimMode::Compiled)?;
//! for bit in [0u64, 1] {
//!     let mut sim = design.instantiate()?; // cheap: reuses the program
//!     sim.set("a", bit)?;
//!     assert_eq!(sim.get("y")?.as_u64(), bit ^ 1);
//! }
//! # Ok(())
//! # }
//! ```

mod bytecode;
mod compile;
#[cfg(test)]
mod differential;
mod elab;
mod engine;
mod resolve;
pub mod sweep;
mod value;
mod vm;

pub use elab::{elaborate, ElabError, FlatDesign};
pub use engine::{SimError, Simulator};
pub use sweep::{exhaustive_assignments, ExhaustiveSweep};
pub use value::Value;
pub use vm::CompiledSimulator;

use crate::ast::SourceFile;
use crate::parser::parse;
use bytecode::Program;
use resolve::ResolvedDesign;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Which simulation backend scores testbench vectors.
///
/// `Compiled` lowers the design to bytecode once and runs the stack VM;
/// `Reference` walks resolved expression trees with the retained
/// event-driven engine. The two are pinned bit-identical — the mode is a
/// performance knob, never a semantic one (same pattern as the model
/// crate's `KernelMode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SimMode {
    /// Compile-once bytecode VM (default).
    #[default]
    Compiled,
    /// The retained event-driven interpreter (spec oracle).
    Reference,
}

impl fmt::Display for SimMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SimMode::Compiled => "compiled",
            SimMode::Reference => "reference",
        })
    }
}

impl std::str::FromStr for SimMode {
    type Err = String;

    fn from_str(s: &str) -> Result<SimMode, String> {
        match s {
            "compiled" => Ok(SimMode::Compiled),
            "reference" => Ok(SimMode::Reference),
            other => Err(format!("unknown sim mode `{other}` (expected compiled|reference)")),
        }
    }
}

/// A design prepared for repeated instantiation.
///
/// Parsing, elaboration, name resolution and (in [`SimMode::Compiled`])
/// bytecode compilation happen once here; [`SimDesign::instantiate`] then
/// only allocates fresh state and settles it, so driving one golden module
/// against `n` candidates × `v` vectors pays the front-end cost once.
///
/// When compilation declines a design (a construct whose engine errors the
/// compiler cannot mirror exactly), instantiation silently falls back to
/// the reference engine — bit-identity holds by construction.
#[derive(Clone)]
pub struct SimDesign {
    res: Arc<ResolvedDesign>,
    prog: Option<Arc<Program>>,
    mode: SimMode,
}

impl fmt::Debug for SimDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimDesign")
            .field("mode", &self.mode)
            .field("compiled", &self.prog.is_some())
            .finish()
    }
}

impl SimDesign {
    /// Parses, elaborates and prepares `top` for instantiation.
    ///
    /// # Errors
    ///
    /// Fails on parse or elaboration errors; compilation failures are not
    /// errors (they select the reference fallback).
    pub fn build(src: &str, top: &str, mode: SimMode) -> Result<SimDesign, SimError> {
        let file = parse(src)?;
        SimDesign::from_file(&file, top, mode)
    }

    /// Prepares a design from a parsed file.
    ///
    /// # Errors
    ///
    /// Fails when the design cannot be elaborated.
    pub fn from_file(file: &SourceFile, top: &str, mode: SimMode) -> Result<SimDesign, SimError> {
        let design = elaborate(file, top)?;
        let res = Arc::new(ResolvedDesign::resolve(&design));
        let prog = match mode {
            SimMode::Compiled => compile::compile(&res).ok().map(Arc::new),
            SimMode::Reference => None,
        };
        Ok(SimDesign { res, prog, mode })
    }

    /// The mode this design was built for.
    pub fn mode(&self) -> SimMode {
        self.mode
    }

    /// Whether instantiation will run the bytecode VM (false: reference
    /// engine, either by mode or by compile fallback).
    pub fn is_compiled(&self) -> bool {
        self.prog.is_some()
    }

    /// Creates a fresh, settled simulator instance.
    ///
    /// # Errors
    ///
    /// Fails when initial constant application or the initial combinational
    /// settle fails (unknown signals, oscillating logic) — the same errors
    /// `Simulator::new` would produce.
    pub fn instantiate(&self) -> Result<SimInstance, SimError> {
        match &self.prog {
            Some(p) => Ok(SimInstance::Compiled(CompiledSimulator::new(p.clone())?)),
            None => Ok(SimInstance::Reference(Simulator::from_resolved(self.res.clone())?)),
        }
    }
}

/// A running simulator from either backend, with the common driving API.
#[derive(Debug)]
pub enum SimInstance {
    /// Event-driven reference interpreter.
    Reference(Simulator),
    /// Bytecode VM.
    Compiled(CompiledSimulator),
}

impl SimInstance {
    /// Names of the top-level inputs.
    pub fn inputs(&self) -> &[String] {
        match self {
            SimInstance::Reference(s) => s.inputs(),
            SimInstance::Compiled(s) => s.inputs(),
        }
    }

    /// Names of the top-level outputs.
    pub fn outputs(&self) -> &[String] {
        match self {
            SimInstance::Reference(s) => s.outputs(),
            SimInstance::Compiled(s) => s.outputs(),
        }
    }

    /// Reads a signal's current value.
    ///
    /// # Errors
    ///
    /// Fails when `name` is not a signal of the flattened design.
    pub fn get(&self, name: &str) -> Result<Value, SimError> {
        match self {
            SimInstance::Reference(s) => s.get(name),
            SimInstance::Compiled(s) => s.get(name),
        }
    }

    /// Drives a top-level input and propagates the change.
    ///
    /// # Errors
    ///
    /// Fails on unknown/non-input signals and on oscillating logic.
    pub fn set(&mut self, name: &str, value: u64) -> Result<(), SimError> {
        match self {
            SimInstance::Reference(s) => s.set(name, value),
            SimInstance::Compiled(s) => s.set(name, value),
        }
    }

    /// Applies one full clock cycle (falling then rising edge) to `clk`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`SimInstance::set`].
    pub fn clock(&mut self, clk: &str) -> Result<(), SimError> {
        match self {
            SimInstance::Reference(s) => s.clock(clk),
            SimInstance::Compiled(s) => s.clock(clk),
        }
    }
}
