//! Event-driven two-state simulation of the Verilog subset.
//!
//! The VerilogEval-substitute benchmark (crate `pyranet-eval`) decides
//! functional correctness by driving a candidate module with stimulus
//! vectors and comparing its outputs against a golden reference — the same
//! check VerilogEval performs with a commercial simulator. This module is
//! that simulator:
//!
//! * [`elab`] flattens a multi-module design into a single scope (instances
//!   are inlined with `inst.signal` renaming, parameters become constants);
//! * [`engine`] owns the signal store and runs the evaluation loop —
//!   continuous assigns and `@*` blocks settle to a fixpoint, edge-sensitive
//!   blocks fire on signal transitions with proper non-blocking commit
//!   ordering.
//!
//! Values are two-state (`0`/`1`) vectors of up to 64 bits ([`Value`]).
//! `x`/`z` digits in literals are read as `0`, which matches how the corpus
//! generators and benchmark problems use them.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use pyranet_verilog::Simulator;
//!
//! let src = "module counter(input clk, input rst, output reg [3:0] q);\n\
//!            always @(posedge clk) begin\n\
//!              if (rst) q <= 4'd0; else q <= q + 4'd1;\n\
//!            end\nendmodule";
//! let mut sim = Simulator::from_source(src, "counter")?;
//! sim.set("rst", 1)?;
//! sim.clock("clk")?;
//! sim.set("rst", 0)?;
//! sim.clock("clk")?;
//! sim.clock("clk")?;
//! assert_eq!(sim.get("q")?.as_u64(), 2);
//! # Ok(())
//! # }
//! ```

mod elab;
mod engine;
mod value;

pub use elab::{elaborate, ElabError, FlatDesign};
pub use engine::{SimError, Simulator};
pub use value::Value;
