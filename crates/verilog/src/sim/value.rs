//! Two-state bit-vector values.

use std::fmt;

/// A two-state logic vector of 1–64 bits.
///
/// Bits above `width` are always zero (a maintained invariant; all
/// constructors and operations mask).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Value {
    bits: u64,
    width: u32,
}

impl Value {
    /// Maximum supported width.
    pub const MAX_WIDTH: u32 = 64;

    /// Creates a value, masking `bits` to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds [`Value::MAX_WIDTH`].
    pub fn new(bits: u64, width: u32) -> Value {
        assert!((1..=Self::MAX_WIDTH).contains(&width), "width {width} out of range");
        Value { bits: bits & Self::mask(width), width }
    }

    /// A single-bit value.
    pub fn bit(b: bool) -> Value {
        Value { bits: u64::from(b), width: 1 }
    }

    /// All-zero value of the given width.
    pub fn zero(width: u32) -> Value {
        Value::new(0, width)
    }

    /// The low-bits mask for a width.
    pub fn mask(width: u32) -> u64 {
        if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    /// The raw bits (upper bits zero).
    pub fn as_u64(self) -> u64 {
        self.bits
    }

    /// The declared width in bits.
    pub fn width(self) -> u32 {
        self.width
    }

    /// True when any bit is set.
    pub fn is_truthy(self) -> bool {
        self.bits != 0
    }

    /// Reinterprets at a new width (truncating or zero-extending).
    pub fn resize(self, width: u32) -> Value {
        Value::new(self.bits, width)
    }

    /// Sign-extends from the current width into 64 bits, returning the raw
    /// two's-complement value (used by arithmetic right shift and signed
    /// comparisons).
    pub fn to_signed(self) -> i64 {
        if self.width == 64 {
            self.bits as i64
        } else {
            let sign = 1u64 << (self.width - 1);
            if self.bits & sign != 0 {
                (self.bits | !Self::mask(self.width)) as i64
            } else {
                self.bits as i64
            }
        }
    }

    /// Extracts the single bit at `index` (0 when out of range, matching the
    /// permissive behaviour of reading past a vector in two-state sim).
    pub fn bit_at(self, index: u32) -> bool {
        if index >= 64 {
            false
        } else {
            (self.bits >> index) & 1 == 1
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::bit(false)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_on_construction() {
        assert_eq!(Value::new(0xFF, 4).as_u64(), 0xF);
        assert_eq!(Value::new(u64::MAX, 64).as_u64(), u64::MAX);
        assert_eq!(Value::new(0b10, 1).as_u64(), 0);
    }

    #[test]
    #[should_panic(expected = "width 0 out of range")]
    fn zero_width_panics() {
        let _ = Value::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "width 65 out of range")]
    fn overwide_panics() {
        let _ = Value::new(1, 65);
    }

    #[test]
    fn signed_interpretation() {
        assert_eq!(Value::new(0xF, 4).to_signed(), -1);
        assert_eq!(Value::new(0x7, 4).to_signed(), 7);
        assert_eq!(Value::new(0x8, 4).to_signed(), -8);
        assert_eq!(Value::new(u64::MAX, 64).to_signed(), -1);
    }

    #[test]
    fn bit_access() {
        let v = Value::new(0b1010, 4);
        assert!(!v.bit_at(0));
        assert!(v.bit_at(1));
        assert!(v.bit_at(3));
        assert!(!v.bit_at(63));
        assert!(!v.bit_at(200));
    }

    #[test]
    fn resize_truncates_and_extends() {
        let v = Value::new(0b1111, 4);
        assert_eq!(v.resize(2).as_u64(), 0b11);
        assert_eq!(v.resize(8).as_u64(), 0b1111);
    }

    #[test]
    fn display_form() {
        assert_eq!(Value::new(255, 8).to_string(), "8'hff");
    }
}
