//! The stack VM executing compiled simulation programs.
//!
//! State is pre-sized at construction (slot values, the flat memory-word
//! arena, the evaluation stack, the non-blocking queue, and the two settle
//! snapshots); running stimulus vectors allocates nothing in the steady
//! state. The settle/fire scheduling loop is a line-for-line mirror of the
//! reference engine's — only expression evaluation is different, running
//! the pre-compiled op stream instead of walking the AST.

use super::bytecode::{CodeRange, Op, Program};
use super::engine::{SimError, MAX_EDGE_ROUNDS, MAX_SETTLE, STMT_BUDGET};
use super::value::Value;
use crate::ast::{BinaryOp, Edge, UnaryOp};
use std::fmt;
use std::sync::Arc;

/// A simulator instance over a compiled [`Program`].
///
/// Public surface matches [`super::Simulator`]; the two are pinned
/// bit-identical by differential tests.
pub struct CompiledSimulator {
    prog: Arc<Program>,
    values: Vec<Value>,
    words: Vec<u64>,
    edge_prev: Vec<bool>,
    stack: Vec<Value>,
    nb: Vec<(u32, Value)>,
    /// End-of-previous-settle-iteration state; the fixpoint test compares
    /// against it and refreshes it in one fused pass.
    state_prev: Vec<u64>,
    /// Set once any propagation has errored; disables the unchanged-input
    /// fast path so error behaviour can never diverge from the reference.
    poisoned: bool,
}

impl fmt::Debug for CompiledSimulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledSimulator")
            .field("signals", &self.values.len())
            .field("ops", &self.prog.ops.len())
            .finish()
    }
}

impl CompiledSimulator {
    /// Instantiates fresh state for a compiled program and settles it.
    ///
    /// # Errors
    ///
    /// Fails exactly where the reference engine's construction would:
    /// unknown signals in constants, oscillating initial logic.
    pub fn new(prog: Arc<Program>) -> Result<CompiledSimulator, SimError> {
        if let Some(e) = &prog.init_err {
            return Err(e.clone());
        }
        let values = prog.slots.iter().map(|m| Value::zero(m.width)).collect();
        let words = vec![0u64; prog.words_len];
        let edge_prev = vec![false; prog.edge_sigs.len()];
        let state_len = prog.slots.len() + prog.words_len;
        let mut sim = CompiledSimulator {
            values,
            words,
            edge_prev,
            stack: Vec::with_capacity(16),
            nb: Vec::new(),
            state_prev: vec![0u64; state_len],
            poisoned: false,
            prog,
        };
        let init = sim.prog.clone();
        for (i, v) in &init.init {
            let w = init.slots[*i as usize].width;
            sim.values[*i as usize] = Value::new(*v, w);
        }
        sim.settle_comb()?;
        sim.snapshot_edges();
        Ok(sim)
    }

    /// Names of the top-level inputs.
    pub fn inputs(&self) -> &[String] {
        &self.prog.inputs
    }

    /// Names of the top-level outputs.
    pub fn outputs(&self) -> &[String] {
        &self.prog.outputs
    }

    /// Reads a signal's current value.
    ///
    /// # Errors
    ///
    /// Fails when `name` is not a signal of the flattened design.
    pub fn get(&self, name: &str) -> Result<Value, SimError> {
        let i = self
            .prog
            .names
            .get(name)
            .copied()
            .ok_or_else(|| SimError::UnknownSignal(name.to_owned()))?;
        Ok(self.values[i as usize])
    }

    /// Drives a top-level input and propagates the change.
    ///
    /// # Errors
    ///
    /// Fails on unknown/non-input signals and on oscillating logic.
    pub fn set(&mut self, name: &str, value: u64) -> Result<(), SimError> {
        if !self.prog.inputs.iter().any(|i| i == name) {
            return Err(SimError::NotAnInput(name.to_owned()));
        }
        let i = self
            .prog
            .names
            .get(name)
            .copied()
            .ok_or_else(|| SimError::UnknownSignal(name.to_owned()))? as usize;
        let w = self.prog.slots[i].width;
        let v = Value::new(value, w);
        // Unchanged input on settled, never-errored state: propagation is
        // a guaranteed no-op (the state is already at fixpoint), so skip
        // it. The reference engine reaches the same state the long way.
        if !self.poisoned && self.values[i] == v {
            return Ok(());
        }
        self.values[i] = v;
        self.propagate()
    }

    /// Applies one full clock cycle (falling then rising edge) to `clk`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CompiledSimulator::set`].
    pub fn clock(&mut self, clk: &str) -> Result<(), SimError> {
        self.set(clk, 0)?;
        self.set(clk, 1)
    }

    fn propagate(&mut self) -> Result<(), SimError> {
        let r = self.propagate_inner();
        if r.is_err() {
            self.poisoned = true;
        }
        r
    }

    fn propagate_inner(&mut self) -> Result<(), SimError> {
        for _ in 0..MAX_EDGE_ROUNDS {
            self.settle_comb()?;
            let fired = self.fire_edges()?;
            if !fired {
                return Ok(());
            }
        }
        Err(SimError::Oscillation)
    }

    fn settle_comb(&mut self) -> Result<(), SimError> {
        let prog = self.prog.clone();
        // Fixed schedule: the compiler proved one topologically ordered
        // pass reaches the fixpoint, so skip the iterate-and-compare loop
        // (and its full-state captures) entirely.
        if let Some(sched) = &prog.schedule {
            for unit in sched {
                self.stack.clear();
                self.nb.clear();
                let mut budget = STMT_BUDGET;
                self.run_unit(&prog, *unit, &mut budget)?;
                if !self.nb.is_empty() {
                    self.commit_nb(&prog)?;
                }
            }
            return Ok(());
        }
        capture_state(&self.values, &self.words, &mut self.state_prev);
        for _ in 0..MAX_SETTLE {
            self.stack.clear();
            let mut budget = STMT_BUDGET; // assigns carry no budget ops
            self.run_unit(&prog, prog.assigns, &mut budget)?;
            for unit in &prog.comb {
                self.stack.clear();
                self.nb.clear();
                let mut budget = STMT_BUDGET;
                self.run_unit(&prog, *unit, &mut budget)?;
                self.commit_nb(&prog)?;
            }
            if self.settled_and_refresh() {
                return Ok(());
            }
        }
        Err(SimError::Oscillation)
    }

    /// Fused fixpoint test: compares the current state against the end of
    /// the previous settle iteration (one pass, no second buffer) and
    /// refreshes the snapshot for the next iteration.
    fn settled_and_refresh(&mut self) -> bool {
        let mut same = true;
        let mut k = 0;
        for v in &self.values {
            let cur = v.as_u64();
            if self.state_prev[k] != cur {
                self.state_prev[k] = cur;
                same = false;
            }
            k += 1;
        }
        for &w in &self.words {
            if self.state_prev[k] != w {
                self.state_prev[k] = w;
                same = false;
            }
            k += 1;
        }
        same
    }

    fn snapshot_edges(&mut self) {
        let prog = self.prog.clone();
        for (i, slot) in prog.edge_sigs.iter().enumerate() {
            self.edge_prev[i] = slot.map(|s| self.values[s as usize].bit_at(0)).unwrap_or(false);
        }
    }

    fn fire_edges(&mut self) -> Result<bool, SimError> {
        let prog = self.prog.clone();
        let mut to_run: Vec<usize> = Vec::new();
        for (i, blk) in prog.edges.iter().enumerate() {
            let triggered = blk.triggers.iter().any(|(edge, sig)| {
                let prev = self.edge_prev[*sig as usize];
                let cur = prog.edge_sigs[*sig as usize]
                    .map(|s| self.values[s as usize].bit_at(0))
                    .unwrap_or(false);
                match edge {
                    Edge::Pos => !prev && cur,
                    Edge::Neg => prev && !cur,
                }
            });
            if triggered {
                to_run.push(i);
            }
        }
        self.snapshot_edges();
        if to_run.is_empty() {
            return Ok(false);
        }
        self.nb.clear();
        for i in to_run {
            self.stack.clear();
            let mut budget = STMT_BUDGET;
            self.run_unit(&prog, prog.edges[i].code, &mut budget)?;
        }
        self.commit_nb(&prog)?;
        Ok(true)
    }

    /// Applies queued non-blocking updates in push order; each writer
    /// fragment re-evaluates its index expressions now, like the engine's
    /// commit-time `write_lvalue`.
    fn commit_nb(&mut self, prog: &Program) -> Result<(), SimError> {
        if self.nb.is_empty() {
            return Ok(());
        }
        let pending = std::mem::take(&mut self.nb);
        for (writer, v) in &pending {
            self.stack.clear();
            self.stack.push(*v);
            let mut budget = STMT_BUDGET; // writers carry no budget ops
            self.run_unit(prog, prog.writers[*writer as usize], &mut budget)?;
        }
        // Hand the (now empty) buffer back to avoid reallocating.
        let mut pending = pending;
        pending.clear();
        self.nb = pending;
        Ok(())
    }

    fn pop(&mut self) -> Value {
        self.stack.pop().expect("VM stack underflow (compiler bug)")
    }

    #[allow(clippy::too_many_lines)]
    fn run_unit(
        &mut self,
        prog: &Program,
        range: CodeRange,
        budget: &mut usize,
    ) -> Result<(), SimError> {
        let mut pc = range.start as usize;
        let end = range.end as usize;
        while pc < end {
            let op = &prog.ops[pc];
            pc += 1;
            match op {
                Op::PushLit(v) => self.stack.push(*v),
                Op::LoadSlot(i) => self.stack.push(self.values[*i as usize]),
                Op::Resize(w) => {
                    let v = self.pop();
                    self.stack.push(v.resize(*w));
                }
                Op::Dup => {
                    let v = *self.stack.last().expect("VM stack underflow (compiler bug)");
                    self.stack.push(v);
                }
                Op::Drop => {
                    self.pop();
                }
                Op::Jump(t) => pc = *t as usize,
                Op::JumpIfFalse(t) => {
                    if !self.pop().is_truthy() {
                        pc = *t as usize;
                    }
                }
                Op::JumpIfTrue(t) => {
                    if self.pop().is_truthy() {
                        pc = *t as usize;
                    }
                }
                Op::Unary(op, ctx) => {
                    use UnaryOp::*;
                    let av = self.pop();
                    self.stack.push(match op {
                        Neg => Value::new(av.as_u64().wrapping_neg(), (*ctx).max(av.width())),
                        Plus => av,
                        BitNot => Value::new(!av.as_u64(), av.width()),
                        LogicalNot => Value::bit(!av.is_truthy()),
                        RedAnd => Value::bit(av.as_u64() == Value::mask(av.width())),
                        RedOr => Value::bit(av.is_truthy()),
                        RedXor => Value::bit(av.as_u64().count_ones() % 2 == 1),
                        RedNand => Value::bit(av.as_u64() != Value::mask(av.width())),
                        RedNor => Value::bit(!av.is_truthy()),
                        RedXnor => Value::bit(av.as_u64().count_ones().is_multiple_of(2)),
                    });
                }
                Op::Cmp(op) => {
                    use BinaryOp::*;
                    let bv = self.pop();
                    let av = self.pop();
                    let (x, y) = (av.as_u64(), bv.as_u64());
                    self.stack.push(Value::bit(match op {
                        Eq | CaseEq => x == y,
                        Ne | CaseNe => x != y,
                        Lt => x < y,
                        Le => x <= y,
                        Gt => x > y,
                        Ge => x >= y,
                        _ => unreachable!("non-comparison op in Cmp"),
                    }));
                }
                Op::Arith(op, w) => {
                    use BinaryOp::*;
                    let bv = self.pop();
                    let av = self.pop();
                    let (x, y) = (av.as_u64(), bv.as_u64());
                    let r = match op {
                        Add => x.wrapping_add(y),
                        Sub => x.wrapping_sub(y),
                        Mul => x.wrapping_mul(y),
                        Div => x.checked_div(y).unwrap_or(0),
                        Mod => {
                            if y == 0 {
                                0
                            } else {
                                x % y
                            }
                        }
                        BitAnd => x & y,
                        BitOr => x | y,
                        BitXor => x ^ y,
                        BitXnor => !(x ^ y),
                        _ => unreachable!("non-arithmetic op in Arith"),
                    };
                    self.stack.push(Value::new(r, *w));
                }
                Op::LogicAnd => {
                    let bv = self.pop();
                    let av = self.pop();
                    self.stack.push(Value::bit(av.is_truthy() && bv.is_truthy()));
                }
                Op::LogicOr => {
                    let bv = self.pop();
                    let av = self.pop();
                    self.stack.push(Value::bit(av.is_truthy() || bv.is_truthy()));
                }
                Op::Shl(ctx) => {
                    let sh = self.pop().as_u64();
                    let av = self.pop();
                    let w = av.width().max(*ctx);
                    self.stack.push(if sh >= 64 {
                        Value::zero(w)
                    } else {
                        Value::new(av.as_u64() << sh, w)
                    });
                }
                Op::Shr => {
                    let sh = self.pop().as_u64();
                    let av = self.pop();
                    self.stack.push(if sh >= 64 {
                        Value::zero(av.width())
                    } else {
                        Value::new(av.as_u64() >> sh, av.width())
                    });
                }
                Op::AShr => {
                    let sh = self.pop().as_u64().min(63) as u32;
                    let av = self.pop();
                    self.stack.push(Value::new((av.to_signed() >> sh) as u64, av.width()));
                }
                Op::Pow(ctx) => {
                    let bv = self.pop();
                    let av = self.pop();
                    let r = av.as_u64().checked_pow(bv.as_u64().min(64) as u32).unwrap_or(0);
                    self.stack.push(Value::new(r, (*ctx).max(av.width())));
                }
                Op::ConcatPair => {
                    let b = self.pop();
                    let a = self.pop();
                    if a.width() + b.width() > 64 {
                        return Err(SimError::Unsupported("concatenation wider than 64".into()));
                    }
                    self.stack.push(Value::new(
                        (a.as_u64() << b.width()) | b.as_u64(),
                        a.width() + b.width(),
                    ));
                }
                Op::Repeat(reps) => {
                    let iv = self.pop();
                    let w = iv.width();
                    let total = (*reps as u32).saturating_mul(w);
                    if total > 64 {
                        return Err(SimError::Unsupported("replication wider than 64".into()));
                    }
                    let mut bits = 0u64;
                    for _ in 0..*reps {
                        bits = (bits << w) | iv.as_u64();
                    }
                    self.stack.push(Value::new(bits, total.max(1)));
                }
                Op::BitIndex(i) => {
                    let addr = self.pop().as_u64();
                    let v = self.values[*i as usize];
                    self.stack.push(Value::bit(v.bit_at(addr.min(u64::from(u32::MAX)) as u32)));
                }
                Op::MemRead(i) => {
                    let addr = self.pop().as_u64();
                    let m = &prog.slots[*i as usize];
                    let words =
                        &self.words[m.words_off as usize..(m.words_off + m.words_len) as usize];
                    let word = addr
                        .checked_sub(m.mem_base)
                        .and_then(|off| words.get(off as usize).copied())
                        .unwrap_or(0);
                    self.stack.push(Value::new(word, m.width));
                }
                Op::RangeSel { slot, lo, span } => {
                    let v = self.values[*slot as usize].as_u64();
                    self.stack.push(Value::new(v >> lo, *span));
                }
                Op::IdxSel { slot, width, ascending } => {
                    let b = self.pop().as_u64();
                    let lo = if *ascending {
                        b
                    } else {
                        b.saturating_sub(u64::from(*width).wrapping_sub(1))
                    };
                    let v = self.values[*slot as usize].as_u64();
                    self.stack.push(Value::new(v >> lo.min(63), (*width).clamp(1, 64)));
                }
                Op::Clog2 => {
                    let v = self.pop().as_u64();
                    let r = if v <= 1 { 0 } else { 64 - (v - 1).leading_zeros() };
                    self.stack.push(Value::new(u64::from(r), 32));
                }
                Op::CaseCmp => {
                    let lv = self.pop();
                    let subj = self.pop();
                    let w = subj.width().max(1);
                    let cmp_w = w.max(lv.width());
                    self.stack
                        .push(Value::bit(lv.resize(cmp_w).as_u64() == subj.resize(cmp_w).as_u64()));
                }
                Op::StoreSlot(i) => {
                    let v = self.pop();
                    let w = prog.slots[*i as usize].width;
                    self.values[*i as usize] = v.resize(w);
                }
                Op::StoreBit(i) => {
                    let addr = self.pop().as_u64();
                    let v = self.pop();
                    let w = prog.slots[*i as usize].width;
                    if addr < u64::from(w) {
                        let old = self.values[*i as usize].as_u64();
                        let bit = v.as_u64() & 1;
                        let new = (old & !(1 << addr)) | (bit << addr);
                        self.values[*i as usize] = Value::new(new, w);
                    }
                }
                Op::StoreMem(i) => {
                    let addr = self.pop().as_u64();
                    let v = self.pop();
                    let m = &prog.slots[*i as usize];
                    if addr >= m.mem_base {
                        let off = (addr - m.mem_base) as usize;
                        if off < m.words_len as usize {
                            self.words[m.words_off as usize + off] = v.resize(m.width).as_u64();
                        }
                    }
                }
                Op::StoreRange(i) => {
                    let lsb = self.pop().as_u64() as i64;
                    let msb = self.pop().as_u64() as i64;
                    let v = self.pop();
                    let (hi, lo) = (msb.max(lsb) as u32, msb.min(lsb) as u32);
                    let w = prog.slots[*i as usize].width;
                    if lo < w {
                        let hi = hi.min(w - 1);
                        let span = hi - lo + 1;
                        let mask = Value::mask(span) << lo;
                        let old = self.values[*i as usize].as_u64();
                        let new = (old & !mask) | ((v.as_u64() << lo) & mask);
                        self.values[*i as usize] = Value::new(new, w);
                    }
                }
                Op::Piece { shift, width } => {
                    let v = self.pop();
                    self.stack.push(Value::new(v.as_u64() >> shift, *width));
                }
                Op::NbAssign(writer) => {
                    let v = self.pop();
                    self.nb.push((*writer, v));
                }
                Op::Budget => {
                    if *budget == 0 {
                        return Err(SimError::RunawayLoop);
                    }
                    *budget -= 1;
                }
                Op::BudgetCheck => {
                    if *budget == 0 {
                        return Err(SimError::RunawayLoop);
                    }
                }
                Op::Trap(t) => return Err(prog.traps[*t as usize].clone()),
            }
        }
        Ok(())
    }
}

fn capture_state(values: &[Value], words: &[u64], out: &mut Vec<u64>) {
    out.clear();
    out.extend(values.iter().map(|v| v.as_u64()));
    out.extend_from_slice(words);
}
