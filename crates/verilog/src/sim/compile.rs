//! Lowering a resolved design to bytecode.
//!
//! The compiler walks the resolved design once and emits ops in the exact
//! order the reference engine evaluates (including the order errors are
//! raised in), so the VM is bit-identical by construction. Two escape
//! hatches keep that guarantee airtight:
//!
//! * Evaluation-time errors the engine is *guaranteed* to raise at a given
//!   point (unknown signal, non-constant select bound, unsupported system
//!   function, …) become [`Op::Trap`] ops at that exact position — they only
//!   fire if execution actually reaches them, matching the engine's lazy
//!   error behaviour in untaken branches.
//! * Anything the compiler cannot fold statically with certainty — chiefly
//!   select bounds that read a signal some statement writes at runtime —
//!   aborts compilation with [`CompileError`]; the facade then silently runs
//!   that design on the reference engine instead.
//!
//! Width computations fold at compile time because every width the engine
//! derives comes from slot widths, literal widths, and `const_like` folds
//! over constants — all static once runtime-varying `const_like` reads are
//! excluded via the fallback above.

use super::bytecode::{CodeRange, EdgeUnit, Op, Program, SlotMeta};
use super::engine::SimError;
use super::resolve::{RExpr, RLValue, RStmt, ResolvedDesign, SigRef};
use super::value::Value;
use crate::ast::BinaryOp;
use std::collections::HashSet;
use std::fmt;

/// A construct that cannot be lowered with guaranteed bit-identity to the
/// reference engine. Not a simulation error: the caller falls back to the
/// reference engine for the whole design.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError(pub String);

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "not compilable: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

/// A compile-time fold result: either the value, or the exact error the
/// engine would raise at this evaluation point.
enum Static<T> {
    Known(T),
    Trap(SimError),
}

/// Compiles a resolved design into a bytecode [`Program`].
///
/// # Errors
///
/// Returns [`CompileError`] when some construct cannot be mirrored exactly
/// (the caller should fall back to the reference engine).
pub fn compile(res: &ResolvedDesign) -> Result<Program, CompileError> {
    // Which slots' packed values may change at runtime: every lvalue target
    // plus every top-level input. Anything else keeps its initial constant
    // (or zero) forever, making `const_like` reads of it foldable.
    let mut written: HashSet<u32> = HashSet::new();
    for (lhs, _) in &res.assigns {
        mark_lvalue(lhs, &mut written);
    }
    for body in &res.comb {
        mark_stmt(body, &mut written);
    }
    for blk in &res.edges {
        mark_stmt(&blk.body, &mut written);
    }
    for input in &res.inputs {
        if let Some(&i) = res.names.get(input) {
            written.insert(i);
        }
    }

    let mut statics: Vec<Option<u64>> = vec![Some(0); res.signals.len()];
    let mut init: Vec<(u32, u64)> = Vec::new();
    let mut init_err = None;
    for (sig, v) in &res.constants {
        match sig {
            SigRef::Slot(i) => {
                let masked = v & Value::mask(res.signals[*i as usize].width);
                init.push((*i, masked));
                statics[*i as usize] = Some(masked);
            }
            SigRef::Unknown(n) => {
                // The engine fails construction right here; record the same
                // error for instantiation time and stop applying.
                init_err = Some(SimError::UnknownSignal(n.clone()));
                break;
            }
        }
    }
    for &i in &written {
        statics[i as usize] = None;
    }

    let mut words_off = 0u64;
    let mut slots = Vec::with_capacity(res.signals.len());
    for s in &res.signals {
        slots.push(SlotMeta {
            width: s.width,
            mem_base: s.mem_base,
            words_off: u32::try_from(words_off)
                .map_err(|_| CompileError("memory arena exceeds u32 addressing".into()))?,
            words_len: s.depth,
        });
        words_off += u64::from(s.depth);
    }

    let mut c = Compiler {
        res,
        statics,
        ops: Vec::new(),
        traps: Vec::new(),
        writer_lvs: Vec::new(),
        fallible_at: Vec::new(),
    };

    let a_start = c.here();
    let mut assign_units = Vec::with_capacity(res.assigns.len());
    for (lhs, rhs) in &res.assigns {
        let start = c.here();
        match c.lv_width(lhs)? {
            Static::Trap(e) => c.trap(e), // aborts the settle; rest is dead
            Static::Known(w) => {
                c.emit_eval_ctx(rhs, w)?;
                c.emit_store(lhs)?;
            }
        }
        assign_units.push(CodeRange { start, end: c.here() });
    }
    let assigns = CodeRange { start: a_start, end: c.here() };

    let mut comb = Vec::with_capacity(res.comb.len());
    for body in &res.comb {
        let start = c.here();
        c.emit_stmt(body)?;
        comb.push(CodeRange { start, end: c.here() });
    }

    let mut edges = Vec::with_capacity(res.edges.len());
    for blk in &res.edges {
        let start = c.here();
        c.emit_stmt(&blk.body)?;
        edges.push(EdgeUnit {
            triggers: blk.triggers.iter().map(|(e, i)| (*e, *i as u32)).collect(),
            code: CodeRange { start, end: c.here() },
        });
    }

    // Non-blocking writer fragments, compiled after all units so each unit's
    // code stays contiguous. Ids were assigned in emission order.
    let writer_lvs = std::mem::take(&mut c.writer_lvs);
    let mut writers = Vec::with_capacity(writer_lvs.len());
    for lv in writer_lvs {
        let start = c.here();
        c.emit_store(lv)?;
        writers.push(CodeRange { start, end: c.here() });
    }

    let mut units = assign_units;
    units.extend(comb.iter().copied());
    let schedule = build_schedule(&c.ops, &units, &writers, &c.fallible_at, res.signals.len());

    Ok(Program {
        ops: c.ops,
        traps: c.traps,
        assigns,
        comb,
        edges,
        edge_sigs: res.edge_sigs.iter().map(|(_, slot)| *slot).collect(),
        writers,
        schedule,
        slots,
        words_len: words_off as usize,
        init,
        init_err,
        names: res.names.clone(),
        inputs: res.inputs.clone(),
        outputs: res.outputs.clone(),
    })
}

fn mark_lvalue(lv: &RLValue, written: &mut HashSet<u32>) {
    match lv {
        RLValue::Ident(sig) | RLValue::Index(sig, _) | RLValue::Range(sig, _, _) => {
            if let SigRef::Slot(i) = sig {
                written.insert(*i);
            }
        }
        RLValue::Concat(parts) => {
            for p in parts {
                mark_lvalue(p, written);
            }
        }
    }
}

fn mark_stmt(s: &RStmt, written: &mut HashSet<u32>) {
    match s {
        RStmt::Blocking(lv, _) | RStmt::NonBlocking(lv, _) => mark_lvalue(lv, written),
        RStmt::If { then_branch, else_branch, .. } => {
            mark_stmt(then_branch, written);
            if let Some(e) = else_branch {
                mark_stmt(e, written);
            }
        }
        RStmt::Case { arms, .. } => {
            for a in arms {
                mark_stmt(&a.body, written);
            }
        }
        RStmt::For { init, step, body, .. } => {
            mark_stmt(init, written);
            mark_stmt(step, written);
            mark_stmt(body, written);
        }
        RStmt::Block(stmts) => {
            for s in stmts {
                mark_stmt(s, written);
            }
        }
        RStmt::Nop => {}
    }
}

/// Attempts to order the settle units (per-assign fragments + comb blocks)
/// into a fixed one-pass schedule that provably reaches the engine's
/// iterate-to-fixpoint result.
///
/// A schedule exists only when every unit is a pure, infallible function
/// of its reads and the dataflow is acyclic:
///
/// * no loops (backward jumps) — rules out budget exhaustion, and each op
///   executes at most once;
/// * no [`Op::Trap`] and no fallible concatenation — a scheduled pass can
///   never error, so error *ordering* differences against the engine's
///   declaration-order iteration cannot arise;
/// * no read-modify-write stores (bit/range stores read the old value,
///   which is genuinely iterative state);
/// * each slot written by at most one unit (multiple writers make the
///   fixpoint order-dependent — or nonexistent, and the engine's
///   oscillation verdict must be preserved);
/// * the writer→reader graph is acyclic.
///
/// Under those rules the fixpoint is unique and one topologically ordered
/// pass computes it, so the VM can skip the settle loop and its state
/// captures entirely. Any violation returns `None` and the VM falls back
/// to the loop — identity first, speed second.
fn build_schedule(
    ops: &[Op],
    units: &[CodeRange],
    writers: &[CodeRange],
    fallible_at: &[u32],
    n_slots: usize,
) -> Option<Vec<CodeRange>> {
    let in_range = |r: &CodeRange, i: u32| i >= r.start && i < r.end;
    let mut reads: Vec<Vec<u32>> = vec![Vec::new(); units.len()];
    let mut writes: Vec<Vec<u32>> = vec![Vec::new(); units.len()];
    for (u, range) in units.iter().enumerate() {
        // A unit's code plus the writer fragments its NB assigns commit.
        let mut ranges = vec![*range];
        for i in range.start..range.end {
            if let Op::NbAssign(w) = ops[i as usize] {
                ranges.push(writers[w as usize]);
            }
        }
        for r in &ranges {
            if fallible_at.iter().any(|&i| in_range(r, i)) {
                return None;
            }
            for pc in r.start..r.end {
                match &ops[pc as usize] {
                    Op::Trap(_) => return None,
                    Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) if *t <= pc => {
                        return None; // a loop
                    }
                    Op::LoadSlot(i) | Op::MemRead(i) | Op::BitIndex(i) => reads[u].push(*i),
                    Op::RangeSel { slot, .. } | Op::IdxSel { slot, .. } => reads[u].push(*slot),
                    Op::StoreSlot(i) | Op::StoreMem(i) => writes[u].push(*i),
                    Op::StoreBit(_) | Op::StoreRange(_) => return None, // RMW
                    _ => {}
                }
            }
        }
    }

    let mut writer_of: Vec<Option<usize>> = vec![None; n_slots];
    for (u, ws) in writes.iter().enumerate() {
        for &s in ws {
            match writer_of[s as usize] {
                Some(prev) if prev != u => return None, // multiple writers
                _ => writer_of[s as usize] = Some(u),
            }
        }
    }

    // deps[u] = units whose writes feed u's reads.
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); units.len()];
    for (u, rs) in reads.iter().enumerate() {
        for &s in rs {
            match writer_of[s as usize] {
                Some(w) if w == u => return None, // self-dependency
                Some(w) => deps[u].push(w),
                None => {} // input, seq register, or constant: fixed during settle
            }
        }
    }

    // Topological order, lowest unit index first for determinism.
    let mut order = Vec::with_capacity(units.len());
    let mut placed = vec![false; units.len()];
    while order.len() < units.len() {
        let mut progressed = false;
        for u in 0..units.len() {
            if !placed[u] && deps[u].iter().all(|&d| placed[d]) {
                placed[u] = true;
                order.push(units[u]);
                progressed = true;
            }
        }
        if !progressed {
            return None; // combinational cycle
        }
    }
    Some(order)
}

struct Compiler<'a> {
    res: &'a ResolvedDesign,
    /// Per-slot statically known packed value (`None`: runtime-varying).
    statics: Vec<Option<u64>>,
    ops: Vec<Op>,
    traps: Vec<SimError>,
    /// LValues of non-blocking assignments, in writer-id order.
    writer_lvs: Vec<&'a RLValue>,
    /// Op indices of emitted ops that may fail at runtime (over-wide
    /// concatenation); units containing one are excluded from the fixed
    /// settle schedule.
    fallible_at: Vec<u32>,
}

impl<'a> Compiler<'a> {
    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn emit(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Emits a jump-family op with a placeholder target; returns its index
    /// for patching.
    fn jmp(&mut self, op: Op) -> usize {
        let at = self.ops.len();
        self.ops.push(op);
        at
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.ops[at] {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) => *t = target,
            other => unreachable!("patching non-jump op {other:?}"),
        }
    }

    fn trap(&mut self, e: SimError) {
        let i = self.traps.len() as u32;
        self.traps.push(e);
        self.emit(Op::Trap(i));
    }

    /// Trap in value position: everything after it on this path is dead, but
    /// a dummy push keeps downstream emission's stack shape consistent.
    fn trap_value(&mut self, e: SimError) {
        self.trap(e);
        self.emit(Op::PushLit(Value::bit(false)));
    }

    // ---- compile-time folds (mirror engine `const_like` / `expr_width` /
    // `lvalue_width`, including error order) ----

    fn static_const(&self, e: &RExpr) -> Result<Static<u64>, CompileError> {
        Ok(match e {
            RExpr::Lit { value, .. } => Static::Known(*value),
            RExpr::Sig(SigRef::Slot(i)) => match self.statics[*i as usize] {
                Some(v) => Static::Known(v),
                None => {
                    return Err(CompileError("select bound reads a runtime-varying signal".into()))
                }
            },
            RExpr::Sig(SigRef::Unknown(n)) => Static::Trap(SimError::UnknownSignal(n.clone())),
            RExpr::Binary(op, a, b) => {
                let a = match self.static_const(a)? {
                    Static::Known(v) => v,
                    t => return Ok(t),
                };
                let b = match self.static_const(b)? {
                    Static::Known(v) => v,
                    t => return Ok(t),
                };
                match op {
                    BinaryOp::Add => Static::Known(a.wrapping_add(b)),
                    BinaryOp::Sub => Static::Known(a.wrapping_sub(b)),
                    BinaryOp::Mul => Static::Known(a.wrapping_mul(b)),
                    BinaryOp::Div => Static::Known(a.checked_div(b).unwrap_or(0)),
                    _ => Static::Trap(SimError::Unsupported(
                        "non-arithmetic operator in constant select".into(),
                    )),
                }
            }
            _ => Static::Trap(SimError::Unsupported("non-constant width expression".into())),
        })
    }

    /// Folds a range-select span `((msb - lsb).abs + 1).min(64)` exactly like
    /// the engine; arithmetic the engine would overflow on is not mirrored.
    fn fold_span(&self, msb: u64, lsb: u64) -> Result<u32, CompileError> {
        let (msb, lsb) = (msb as i64, lsb as i64);
        let diff = msb
            .checked_sub(lsb)
            .ok_or_else(|| CompileError("range-select bound overflow".into()))?;
        Ok((diff.unsigned_abs() + 1).min(64) as u32)
    }

    /// Statically known width of `e`, `None` when unknowable (which the
    /// schedule analysis treats as fallible, never as safe).
    fn known_width(&self, e: &RExpr) -> Option<u32> {
        match self.width_of(e) {
            Ok(Static::Known(w)) => Some(w),
            _ => None,
        }
    }

    fn width_of(&self, e: &RExpr) -> Result<Static<u32>, CompileError> {
        use crate::ast::UnaryOp;
        Ok(match e {
            RExpr::Sig(SigRef::Slot(i)) => Static::Known(self.res.signals[*i as usize].width),
            RExpr::Sig(SigRef::Unknown(n)) => Static::Trap(SimError::UnknownSignal(n.clone())),
            RExpr::Lit { width, .. } => {
                Static::Known(if *width == 0 { 32 } else { (*width as u32).min(64) })
            }
            RExpr::Str(s) => Static::Known((8 * s.len().max(1) as u32).min(64)),
            RExpr::Unary(op, a) => match op {
                UnaryOp::LogicalNot
                | UnaryOp::RedAnd
                | UnaryOp::RedOr
                | UnaryOp::RedXor
                | UnaryOp::RedNand
                | UnaryOp::RedNor
                | UnaryOp::RedXnor => Static::Known(1),
                _ => self.width_of(a)?,
            },
            RExpr::Binary(op, a, b) => {
                use BinaryOp::*;
                match op {
                    LogicalAnd | LogicalOr | Eq | Ne | CaseEq | CaseNe | Lt | Le | Gt | Ge => {
                        Static::Known(1)
                    }
                    Shl | Shr | AShl | AShr | Pow => self.width_of(a)?,
                    _ => {
                        let wa = match self.width_of(a)? {
                            Static::Known(w) => w,
                            t => return Ok(t),
                        };
                        let wb = match self.width_of(b)? {
                            Static::Known(w) => w,
                            t => return Ok(t),
                        };
                        Static::Known(wa.max(wb))
                    }
                }
            }
            RExpr::Ternary(_, a, b) => {
                let wa = match self.width_of(a)? {
                    Static::Known(w) => w,
                    t => return Ok(t),
                };
                let wb = match self.width_of(b)? {
                    Static::Known(w) => w,
                    t => return Ok(t),
                };
                Static::Known(wa.max(wb))
            }
            RExpr::Concat(parts) => {
                let mut w = 0u32;
                for p in parts {
                    w += match self.width_of(p)? {
                        Static::Known(x) => x,
                        t => return Ok(t),
                    };
                }
                Static::Known(w.min(64))
            }
            RExpr::Repeat(n, inner) => {
                let reps = match self.static_const(n)? {
                    Static::Known(v) => v,
                    Static::Trap(e) => return Ok(Static::Trap(e)),
                };
                let wi = match self.width_of(inner)? {
                    Static::Known(w) => w,
                    t => return Ok(t),
                };
                Static::Known((reps as u32).saturating_mul(wi).min(64))
            }
            RExpr::Index(sig, _) => match sig {
                SigRef::Slot(i) => {
                    let s = &self.res.signals[*i as usize];
                    Static::Known(if s.depth == 0 { 1 } else { s.width })
                }
                SigRef::Unknown(n) => Static::Trap(SimError::UnknownSignal(n.clone())),
            },
            RExpr::RangeSelect(_, a, b) => {
                let msb = match self.static_const(a)? {
                    Static::Known(v) => v,
                    Static::Trap(e) => return Ok(Static::Trap(e)),
                };
                let lsb = match self.static_const(b)? {
                    Static::Known(v) => v,
                    Static::Trap(e) => return Ok(Static::Trap(e)),
                };
                Static::Known(self.fold_span(msb, lsb)?)
            }
            RExpr::IndexedSelect { width, .. } => match self.static_const(width)? {
                Static::Known(v) => Static::Known((v as u32).min(64)),
                Static::Trap(e) => Static::Trap(e),
            },
            RExpr::Call(f, args) => match f.as_str() {
                "$signed" | "$unsigned" => match args.first() {
                    Some(a) => self.width_of(a)?,
                    None => Static::Known(1),
                },
                _ => Static::Known(32),
            },
        })
    }

    fn lv_width(&self, lv: &RLValue) -> Result<Static<u32>, CompileError> {
        Ok(match lv {
            RLValue::Ident(SigRef::Slot(i)) => Static::Known(self.res.signals[*i as usize].width),
            RLValue::Index(SigRef::Slot(i), _) => {
                let s = &self.res.signals[*i as usize];
                Static::Known(if s.depth == 0 { 1 } else { s.width })
            }
            RLValue::Ident(SigRef::Unknown(n)) | RLValue::Index(SigRef::Unknown(n), _) => {
                Static::Trap(SimError::UnknownSignal(n.clone()))
            }
            RLValue::Range(sig, a, b) => {
                // Engine checks the signal exists before folding the bounds.
                if let SigRef::Unknown(n) = sig {
                    return Ok(Static::Trap(SimError::UnknownSignal(n.clone())));
                }
                let msb = match self.static_const(a)? {
                    Static::Known(v) => v,
                    Static::Trap(e) => return Ok(Static::Trap(e)),
                };
                let lsb = match self.static_const(b)? {
                    Static::Known(v) => v,
                    Static::Trap(e) => return Ok(Static::Trap(e)),
                };
                Static::Known(self.fold_span(msb, lsb)?)
            }
            RLValue::Concat(parts) => {
                let mut w = 0u32;
                for p in parts {
                    w += match self.lv_width(p)? {
                        Static::Known(x) => x,
                        t => return Ok(t),
                    };
                }
                Static::Known(w.min(64))
            }
        })
    }

    // ---- expression emission (mirrors engine `eval` / `eval_ctx` /
    // `eval_width`) ----

    /// Engine `eval(e)`: self-determined width, then evaluate at it.
    fn emit_eval(&mut self, e: &'a RExpr) -> Result<(), CompileError> {
        match self.width_of(e)? {
            Static::Known(w) => self.emit_eval_width(e, w),
            Static::Trap(err) => {
                self.trap_value(err);
                Ok(())
            }
        }
    }

    /// Engine `eval_ctx(e, w)`: evaluate at the context width, then resize.
    fn emit_eval_ctx(&mut self, e: &'a RExpr, w: u32) -> Result<(), CompileError> {
        if !(1..=64).contains(&w) {
            return Err(CompileError(format!("assignment context width {w} out of range")));
        }
        self.emit_eval_width(e, w)?;
        self.emit(Op::Resize(w));
        Ok(())
    }

    fn emit_eval_width(&mut self, e: &'a RExpr, ctx: u32) -> Result<(), CompileError> {
        let ctx = ctx.clamp(1, 64);
        match e {
            RExpr::Sig(SigRef::Slot(i)) => {
                let s = &self.res.signals[*i as usize];
                if s.depth > 0 {
                    let n = s.name.clone();
                    self.trap_value(SimError::Unsupported(format!("whole-memory read of `{n}`")));
                } else {
                    self.emit(Op::LoadSlot(*i));
                }
            }
            RExpr::Sig(SigRef::Unknown(n)) => {
                self.trap_value(SimError::UnknownSignal(n.clone()));
            }
            RExpr::Lit { width, value } => {
                let w = if *width == 0 { ctx.max(32) } else { (*width as u32).min(64) };
                self.emit(Op::PushLit(Value::new(*value, w)));
            }
            RExpr::Str(s) => {
                let w = 8 * s.len() as u32;
                if w > 64 {
                    self.trap_value(SimError::Unsupported(
                        "string literal wider than 64 bits".into(),
                    ));
                } else {
                    let mut bits = 0u64;
                    for byte in s.bytes() {
                        bits = (bits << 8) | u64::from(byte);
                    }
                    self.emit(Op::PushLit(Value::new(bits, w.max(8))));
                }
            }
            RExpr::Unary(op, a) => {
                self.emit_eval_width(a, ctx)?;
                self.emit(Op::Unary(*op, ctx));
            }
            RExpr::Binary(op, a, b) => {
                use BinaryOp::*;
                match op {
                    LogicalAnd | LogicalOr => {
                        self.emit_eval(a)?;
                        self.emit_eval(b)?;
                        self.emit(if matches!(op, LogicalAnd) {
                            Op::LogicAnd
                        } else {
                            Op::LogicOr
                        });
                    }
                    Eq | CaseEq | Ne | CaseNe | Lt | Le | Gt | Ge => {
                        let wa = match self.width_of(a)? {
                            Static::Known(w) => w,
                            Static::Trap(e) => {
                                self.trap_value(e);
                                return Ok(());
                            }
                        };
                        let wb = match self.width_of(b)? {
                            Static::Known(w) => w,
                            Static::Trap(e) => {
                                self.trap_value(e);
                                return Ok(());
                            }
                        };
                        let w = wa.max(wb);
                        if !(1..=64).contains(&w) {
                            return Err(CompileError("zero-width comparison".into()));
                        }
                        self.emit_eval_width(a, w)?;
                        self.emit(Op::Resize(w));
                        self.emit_eval_width(b, w)?;
                        self.emit(Op::Resize(w));
                        self.emit(Op::Cmp(*op));
                    }
                    Shl | AShl => {
                        self.emit_eval_width(a, ctx)?;
                        self.emit_eval(b)?;
                        self.emit(Op::Shl(ctx));
                    }
                    Shr => {
                        self.emit_eval_width(a, ctx)?;
                        self.emit_eval(b)?;
                        self.emit(Op::Shr);
                    }
                    AShr => {
                        self.emit_eval_width(a, ctx)?;
                        self.emit_eval(b)?;
                        self.emit(Op::AShr);
                    }
                    Pow => {
                        self.emit_eval(a)?;
                        self.emit_eval(b)?;
                        self.emit(Op::Pow(ctx));
                    }
                    _ => {
                        let wa = match self.width_of(a)? {
                            Static::Known(w) => w,
                            Static::Trap(e) => {
                                self.trap_value(e);
                                return Ok(());
                            }
                        };
                        let wb = match self.width_of(b)? {
                            Static::Known(w) => w,
                            Static::Trap(e) => {
                                self.trap_value(e);
                                return Ok(());
                            }
                        };
                        let w = ctx.max(wa).max(wb).min(64);
                        self.emit_eval_width(a, w)?;
                        self.emit(Op::Resize(w));
                        self.emit_eval_width(b, w)?;
                        self.emit(Op::Resize(w));
                        self.emit(Op::Arith(*op, w));
                    }
                }
            }
            RExpr::Ternary(c, a, b) => {
                self.emit_eval(c)?;
                let jf = self.jmp(Op::JumpIfFalse(0));
                self.emit_eval_width(a, ctx)?;
                let j = self.jmp(Op::Jump(0));
                let else_at = self.here();
                self.patch(jf, else_at);
                self.emit_eval_width(b, ctx)?;
                let end = self.here();
                self.patch(j, end);
            }
            RExpr::Concat(parts) => match parts.split_first() {
                None => self.emit(Op::PushLit(Value::new(0, 1))),
                Some((first, rest)) => {
                    self.emit_eval(first)?;
                    let mut w = self.known_width(first);
                    for p in rest {
                        self.emit_eval(p)?;
                        w = w.and_then(|a| Some(a + self.known_width(p)?));
                        if w.is_none_or(|t| t > 64) {
                            // This ConcatPair can raise the engine's
                            // over-wide-concatenation error at runtime,
                            // which makes its unit unschedulable.
                            self.fallible_at.push(self.here());
                        }
                        self.emit(Op::ConcatPair);
                    }
                }
            },
            RExpr::Repeat(n, inner) => {
                let reps = match self.static_const(n)? {
                    Static::Known(v) => v,
                    Static::Trap(e) => {
                        self.trap_value(e);
                        return Ok(());
                    }
                };
                self.emit_eval(inner)?;
                self.emit(Op::Repeat(reps));
            }
            RExpr::Index(sig, idx) => {
                self.emit_eval(idx)?;
                match sig {
                    SigRef::Slot(i) => {
                        if self.res.signals[*i as usize].depth == 0 {
                            self.emit(Op::BitIndex(*i));
                        } else {
                            self.emit(Op::MemRead(*i));
                        }
                    }
                    SigRef::Unknown(n) => self.trap_value(SimError::UnknownSignal(n.clone())),
                }
            }
            RExpr::RangeSelect(sig, a, b) => {
                let msb = match self.static_const(a)? {
                    Static::Known(v) => v,
                    Static::Trap(e) => {
                        self.trap_value(e);
                        return Ok(());
                    }
                };
                let lsb = match self.static_const(b)? {
                    Static::Known(v) => v,
                    Static::Trap(e) => {
                        self.trap_value(e);
                        return Ok(());
                    }
                };
                match sig {
                    SigRef::Unknown(n) => self.trap_value(SimError::UnknownSignal(n.clone())),
                    SigRef::Slot(i) => {
                        let span = self.fold_span(msb, lsb)?;
                        let lo = (msb as i64).min(lsb as i64) as u32;
                        self.emit(Op::RangeSel { slot: *i, lo: lo.min(63), span });
                    }
                }
            }
            RExpr::IndexedSelect { sig, base, width, ascending } => {
                self.emit_eval(base)?;
                let w = match self.static_const(width)? {
                    Static::Known(v) => v as u32,
                    Static::Trap(e) => {
                        self.trap_value(e);
                        return Ok(());
                    }
                };
                match sig {
                    SigRef::Unknown(n) => self.trap_value(SimError::UnknownSignal(n.clone())),
                    SigRef::Slot(i) => {
                        self.emit(Op::IdxSel { slot: *i, width: w, ascending: *ascending });
                    }
                }
            }
            RExpr::Call(f, args) => match f.as_str() {
                "$signed" | "$unsigned" => match args.first() {
                    Some(a) => self.emit_eval_width(a, ctx)?,
                    None => {
                        self.trap_value(SimError::Unsupported(format!(
                            "{f} requires one argument"
                        )));
                    }
                },
                "$clog2" => match args.first() {
                    Some(a) => {
                        self.emit_eval(a)?;
                        self.emit(Op::Clog2);
                    }
                    None => {
                        self.trap_value(SimError::Unsupported(
                            "$clog2 requires one argument".into(),
                        ));
                    }
                },
                other => {
                    self.trap_value(SimError::Unsupported(format!("system function `{other}`")));
                }
            },
        }
        Ok(())
    }

    // ---- statement emission (mirrors engine `exec_stmt`) ----

    fn emit_stmt(&mut self, s: &'a RStmt) -> Result<(), CompileError> {
        self.emit(Op::Budget);
        match s {
            RStmt::Blocking(lv, e) => {
                let w = match self.lv_width(lv)? {
                    Static::Known(w) => w,
                    Static::Trap(err) => {
                        self.trap(err);
                        return Ok(());
                    }
                };
                self.emit_eval_ctx(e, w)?;
                self.emit_store(lv)?;
            }
            RStmt::NonBlocking(lv, e) => {
                let w = match self.lv_width(lv)? {
                    Static::Known(w) => w,
                    Static::Trap(err) => {
                        self.trap(err);
                        return Ok(());
                    }
                };
                self.emit_eval_ctx(e, w)?;
                let id = self.writer_lvs.len() as u32;
                self.writer_lvs.push(lv);
                self.emit(Op::NbAssign(id));
            }
            RStmt::If { cond, then_branch, else_branch } => {
                self.emit_eval(cond)?;
                let jf = self.jmp(Op::JumpIfFalse(0));
                self.emit_stmt(then_branch)?;
                match else_branch {
                    Some(e) => {
                        let j = self.jmp(Op::Jump(0));
                        let else_at = self.here();
                        self.patch(jf, else_at);
                        self.emit_stmt(e)?;
                        let end = self.here();
                        self.patch(j, end);
                    }
                    None => {
                        let end = self.here();
                        self.patch(jf, end);
                    }
                }
            }
            RStmt::Case { subject, arms } => {
                self.emit_eval(subject)?;
                // Label tests in source order, skipping default arms (the
                // engine checks defaults last). The subject stays under the
                // test results; every exit path drops it.
                let mut body_jumps: Vec<(usize, usize)> = Vec::new();
                for (ai, arm) in arms.iter().enumerate() {
                    if arm.labels.is_empty() {
                        continue;
                    }
                    for l in &arm.labels {
                        self.emit(Op::Dup);
                        self.emit_eval(l)?;
                        self.emit(Op::CaseCmp);
                        let j = self.jmp(Op::JumpIfTrue(0));
                        body_jumps.push((ai, j));
                    }
                }
                let mut end_jumps = Vec::new();
                self.emit(Op::Drop);
                if let Some(default) = arms.iter().find(|a| a.labels.is_empty()) {
                    self.emit_stmt(&default.body)?;
                }
                end_jumps.push(self.jmp(Op::Jump(0)));
                let mut body_at: Vec<Option<u32>> = vec![None; arms.len()];
                for (ai, arm) in arms.iter().enumerate() {
                    if arm.labels.is_empty() {
                        continue;
                    }
                    body_at[ai] = Some(self.here());
                    self.emit(Op::Drop);
                    self.emit_stmt(&arm.body)?;
                    end_jumps.push(self.jmp(Op::Jump(0)));
                }
                for (ai, j) in body_jumps {
                    let at = body_at[ai].expect("label jump to armless body");
                    self.patch(j, at);
                }
                let end = self.here();
                for j in end_jumps {
                    self.patch(j, end);
                }
            }
            RStmt::For { init, cond, step, body } => {
                self.emit_stmt(init)?;
                let cond_at = self.here();
                self.emit_eval(cond)?;
                let jf = self.jmp(Op::JumpIfFalse(0));
                self.emit_stmt(body)?;
                self.emit_stmt(step)?;
                self.emit(Op::BudgetCheck);
                self.emit(Op::Jump(cond_at));
                let end = self.here();
                self.patch(jf, end);
            }
            RStmt::Block(stmts) => {
                for s in stmts {
                    self.emit_stmt(s)?;
                }
            }
            RStmt::Nop => {}
        }
        Ok(())
    }

    // ---- store emission (mirrors engine `write_lvalue`; consumes the
    // value on top of the stack) ----

    fn emit_store(&mut self, lv: &'a RLValue) -> Result<(), CompileError> {
        match lv {
            RLValue::Ident(SigRef::Slot(i)) => {
                let s = &self.res.signals[*i as usize];
                if s.depth > 0 {
                    let n = s.name.clone();
                    self.trap(SimError::Unsupported(format!("whole-memory assignment to `{n}`")));
                } else {
                    self.emit(Op::StoreSlot(*i));
                }
            }
            RLValue::Ident(SigRef::Unknown(n)) => {
                self.trap(SimError::UnknownSignal(n.clone()));
            }
            RLValue::Index(sig, idx) => {
                // Engine evaluates the address before resolving the signal.
                self.emit_eval(idx)?;
                match sig {
                    SigRef::Slot(i) => {
                        if self.res.signals[*i as usize].depth == 0 {
                            self.emit(Op::StoreBit(*i));
                        } else {
                            self.emit(Op::StoreMem(*i));
                        }
                    }
                    SigRef::Unknown(n) => self.trap(SimError::UnknownSignal(n.clone())),
                }
            }
            RLValue::Range(sig, a, b) => {
                self.emit_eval(a)?;
                self.emit_eval(b)?;
                match sig {
                    SigRef::Slot(i) => self.emit(Op::StoreRange(*i)),
                    SigRef::Unknown(n) => self.trap(SimError::UnknownSignal(n.clone())),
                }
            }
            RLValue::Concat(parts) => {
                let mut widths = Vec::with_capacity(parts.len());
                for p in parts {
                    match self.lv_width(p)? {
                        Static::Known(w) => widths.push(w),
                        Static::Trap(e) => {
                            self.trap(e);
                            return Ok(());
                        }
                    }
                }
                let raw: u32 = widths.iter().sum();
                if raw == 0 || raw > 64 || widths.contains(&0) {
                    // The engine's MSB-first split would underflow or build a
                    // zero-width piece here; don't mirror that.
                    return Err(CompileError("concat lvalue width out of range".into()));
                }
                self.emit(Op::Resize(raw));
                let mut remaining = raw;
                for (p, w) in parts.iter().zip(widths) {
                    remaining -= w;
                    self.emit(Op::Dup);
                    self.emit(Op::Piece { shift: remaining, width: w });
                    self.emit_store(p)?;
                }
                self.emit(Op::Drop);
            }
        }
        Ok(())
    }
}
