//! Exhaustive input enumeration for small combinational designs.
//!
//! Stimulus-vector scoring (48 random vectors) can miss narrow defects; for
//! modules whose total input width is small, sweeping *every* assignment
//! through the simulator makes the functional check exhaustive — a
//! candidate passes only if it matches the golden design on the full truth
//! table. The sweep is a plain ascending counter over the concatenated
//! input bits, so it is deterministic with no RNG involved, and the same
//! driver renders correct-by-construction truth-table specs in the corpus.

/// Total bit width of a set of inputs.
pub fn total_input_bits(widths: &[u32]) -> u64 {
    widths.iter().map(|w| u64::from(*w)).sum()
}

/// All assignments of the given input widths, in ascending order of the
/// concatenated bit pattern (first input holds the least-significant bits).
///
/// Returns `None` when the total width exceeds `max_bits` (or 63, the
/// enumeration-counter limit) — the caller falls back to stimulus vectors.
pub fn exhaustive_assignments(widths: &[u32], max_bits: u32) -> Option<ExhaustiveSweep> {
    let bits = total_input_bits(widths);
    if bits > u64::from(max_bits.min(63)) {
        return None;
    }
    Some(ExhaustiveSweep { widths: widths.to_vec(), next: 0, total: 1u64 << bits })
}

/// Iterator over every input assignment; see [`exhaustive_assignments`].
#[derive(Debug, Clone)]
pub struct ExhaustiveSweep {
    widths: Vec<u32>,
    next: u64,
    total: u64,
}

impl ExhaustiveSweep {
    /// Number of assignments the full sweep visits.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Splits one counter value into per-input field values.
    fn decode(&self, index: u64) -> Vec<u64> {
        let mut values = Vec::with_capacity(self.widths.len());
        let mut rest = index;
        for w in &self.widths {
            let mask = if *w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
            values.push(rest & mask);
            rest = if *w >= 64 { 0 } else { rest >> w };
        }
        values
    }
}

impl Iterator for ExhaustiveSweep {
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Vec<u64>> {
        if self.next >= self.total {
            return None;
        }
        let values = self.decode(self.next);
        self.next += 1;
        Some(values)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.total - self.next) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ExhaustiveSweep {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_every_assignment_in_order() {
        let sweep = exhaustive_assignments(&[2, 1], 16).unwrap();
        assert_eq!(sweep.total(), 8);
        let all: Vec<Vec<u64>> = sweep.collect();
        assert_eq!(
            all,
            vec![
                vec![0, 0],
                vec![1, 0],
                vec![2, 0],
                vec![3, 0],
                vec![0, 1],
                vec![1, 1],
                vec![2, 1],
                vec![3, 1],
            ]
        );
    }

    #[test]
    fn respects_the_bit_cap() {
        assert!(exhaustive_assignments(&[8, 8], 16).is_some());
        assert!(exhaustive_assignments(&[8, 9], 16).is_none());
        // Counter limit holds even with a huge cap.
        assert!(exhaustive_assignments(&[32, 32], u32::MAX).is_none());
    }

    #[test]
    fn zero_inputs_yield_the_single_empty_assignment() {
        let sweep = exhaustive_assignments(&[], 16).unwrap();
        assert_eq!(sweep.collect::<Vec<_>>(), vec![Vec::<u64>::new()]);
    }

    #[test]
    fn values_stay_within_field_width() {
        for assignment in exhaustive_assignments(&[3, 2, 1], 16).unwrap() {
            assert!(assignment[0] < 8 && assignment[1] < 4 && assignment[2] < 2);
        }
    }
}
