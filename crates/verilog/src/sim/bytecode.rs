//! Flat bytecode representation of a compiled design.
//!
//! A [`Program`] is what [`super::compile`] produces from a
//! [`super::resolve::ResolvedDesign`] and what [`super::vm`] executes:
//! a single instruction arena plus code ranges for each evaluation unit
//! (the continuous-assign sweep, each combinational always block, each
//! edge-sensitive block, and one non-blocking writer fragment per `<=`).
//!
//! Every op mirrors one evaluation step of the reference engine exactly —
//! the compiler is responsible for emitting ops in the engine's evaluation
//! (and error) order, so running a unit produces bit-identical values and
//! identical `SimError`s.

use super::engine::SimError;
use super::value::Value;
use crate::ast::{BinaryOp, Edge, UnaryOp};
use std::collections::HashMap;

/// Half-open range `[start, end)` into [`Program::ops`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeRange {
    /// First op index.
    pub start: u32,
    /// One past the last op index.
    pub end: u32,
}

/// One stack-machine instruction.
///
/// Stack effects are noted as `pops → pushes`. `ctx`/`w` operands are the
/// statically known context widths the engine would have computed at
/// evaluation time.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `0 → 1`: push a constant.
    PushLit(Value),
    /// `0 → 1`: push the current value of a slot.
    LoadSlot(u32),
    /// `1 → 1`: resize the top of stack to a fixed width.
    Resize(u32),
    /// `1 → 2`: duplicate the top of stack.
    Dup,
    /// `1 → 0`: discard the top of stack.
    Drop,
    /// Unconditional jump to an absolute op index.
    Jump(u32),
    /// `1 → 0`: jump when the popped value is falsy.
    JumpIfFalse(u32),
    /// `1 → 0`: jump when the popped value is truthy.
    JumpIfTrue(u32),
    /// `1 → 1`: unary operator evaluated at context width `ctx`.
    Unary(UnaryOp, u32),
    /// `2 → 1`: comparison (operands pre-resized); pushes a bit.
    Cmp(BinaryOp),
    /// `2 → 1`: arithmetic/bitwise operator at fixed width `w`.
    Arith(BinaryOp, u32),
    /// `2 → 1`: logical AND (no short-circuit; both operands evaluated).
    LogicAnd,
    /// `2 → 1`: logical OR.
    LogicOr,
    /// `2 → 1`: left shift; pops shift amount then operand; `ctx` widens.
    Shl(u32),
    /// `2 → 1`: logical right shift.
    Shr,
    /// `2 → 1`: arithmetic right shift.
    AShr,
    /// `2 → 1`: power; result width is `ctx.max(base width)`.
    Pow(u32),
    /// `2 → 1`: concatenate two values (first popped is the LSB side);
    /// errors when the combined width exceeds 64.
    ConcatPair,
    /// `1 → 1`: replicate the popped value `reps` times.
    Repeat(u64),
    /// `1 → 1`: bit select of a scalar slot; pops the address.
    BitIndex(u32),
    /// `1 → 1`: memory word read; pops the address.
    MemRead(u32),
    /// `0 → 1`: constant-bound part select of a slot.
    RangeSel {
        /// Slot to read.
        slot: u32,
        /// Pre-clamped shift (`lo.min(63)`).
        lo: u32,
        /// Result width.
        span: u32,
    },
    /// `1 → 1`: indexed part select; pops the base address.
    IdxSel {
        /// Slot to read.
        slot: u32,
        /// Static select width (possibly 0; clamped like the engine).
        width: u32,
        /// True for `+:`.
        ascending: bool,
    },
    /// `1 → 1`: `$clog2`.
    Clog2,
    /// `2 → 1`: case-label compare; pops label then subject copy, pushes a
    /// match bit (widths compared at `max(subject, label)` like the engine).
    CaseCmp,
    /// `1 → 0`: store into a scalar slot (resized to the slot width).
    StoreSlot(u32),
    /// `2 → 0`: bit store; pops address then value; out-of-range dropped.
    StoreBit(u32),
    /// `2 → 0`: memory word store; pops address then value.
    StoreMem(u32),
    /// `3 → 0`: part-select store; pops lsb, msb, then value.
    StoreRange(u32),
    /// `1 → 1`: extract a concat piece: `Value::new(v >> shift, width)`.
    Piece {
        /// Right shift applied to the popped (pre-resized) value.
        shift: u32,
        /// Piece width.
        width: u32,
    },
    /// `1 → 0`: queue the popped value for non-blocking commit through the
    /// given writer fragment.
    NbAssign(u32),
    /// Statement entry: errors with `RunawayLoop` when the budget is
    /// exhausted, otherwise decrements it.
    Budget,
    /// For-loop back-edge check: errors when the budget is exhausted
    /// (without decrementing), mirroring the engine's loop guard.
    BudgetCheck,
    /// Raise `Program::traps[i]` — a deferred evaluation-time error the
    /// compiler proved the engine would produce at this exact point.
    Trap(u32),
}

/// Static metadata for one signal slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotMeta {
    /// Bit width.
    pub width: u32,
    /// Lowest memory address (memories only).
    pub mem_base: u64,
    /// Offset of this memory's words in the VM's word arena.
    pub words_off: u32,
    /// Word count (0 for scalars).
    pub words_len: u32,
}

/// One compiled edge-sensitive block.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeUnit {
    /// `(polarity, index into edge_sigs)` triggers.
    pub triggers: Vec<(Edge, u32)>,
    /// Body code.
    pub code: CodeRange,
}

/// A compiled design: one op arena plus unit ranges and static tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Instruction arena; jump targets are absolute indices into this.
    pub ops: Vec<Op>,
    /// Deferred evaluation-time errors referenced by [`Op::Trap`].
    pub traps: Vec<SimError>,
    /// The continuous-assign sweep (no budget ops).
    pub assigns: CodeRange,
    /// Combinational always-block bodies, in source order.
    pub comb: Vec<CodeRange>,
    /// Edge-sensitive blocks, in source order.
    pub edges: Vec<EdgeUnit>,
    /// Slot sampled by each edge trigger signal (`None`: never resolves).
    pub edge_sigs: Vec<Option<u32>>,
    /// Non-blocking writer fragments (value arrives on the stack).
    pub writers: Vec<CodeRange>,
    /// Fixed one-pass settle schedule: the assign/comb units in
    /// topological dependency order. Present only when the compiler proved
    /// a single ordered pass reaches the engine's fixpoint (acyclic reads/
    /// writes, one writing unit per slot, no loops, no fallible ops); the
    /// VM then skips the iterate-and-compare settle loop entirely.
    pub schedule: Option<Vec<CodeRange>>,
    /// Slot table.
    pub slots: Vec<SlotMeta>,
    /// Total length of the memory word arena.
    pub words_len: usize,
    /// Initial constant applications `(slot, masked value)` in order.
    pub init: Vec<(u32, u64)>,
    /// Error to raise at instantiation (a constant referenced an unknown
    /// signal), mirroring the engine's construction-time failure.
    pub init_err: Option<SimError>,
    /// Name → slot lookup for the `get`/`set` API boundary.
    pub names: HashMap<String, u32>,
    /// Top-level input names.
    pub inputs: Vec<String>,
    /// Top-level output names.
    pub outputs: Vec<String>,
}
