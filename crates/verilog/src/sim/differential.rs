//! Differential tests pinning the compiled VM bit-identical to the
//! reference engine: same output values after every stimulus step, same
//! `SimError` classification (compared by `Display`, which is what the
//! eval harness folds into verdicts) on every failure path.

use super::{SimDesign, SimInstance, SimMode};

/// One stimulus step applied identically to both backends.
enum Step<'a> {
    Set(&'a str, u64),
    Clock(&'a str),
}
use Step::{Clock, Set};

/// Builds `top` under both modes, applies `steps` to both instances, and
/// asserts outputs (and error strings) agree after every step. Returns
/// whether the compiled backend was actually engaged (vs. fallback).
fn assert_identical(src: &str, top: &str, steps: &[Step<'_>]) -> bool {
    let compiled = SimDesign::build(src, top, SimMode::Compiled).expect("build compiled");
    let reference = SimDesign::build(src, top, SimMode::Reference).expect("build reference");
    let mut c = compiled.instantiate().expect("instantiate compiled");
    let mut r = reference.instantiate().expect("instantiate reference");
    assert_outputs_equal(&c, &r, "initial");
    for (i, step) in steps.iter().enumerate() {
        let (cr, rr) = match step {
            Set(name, v) => (c.set(name, *v), r.set(name, *v)),
            Clock(clk) => (c.clock(clk), r.clock(clk)),
        };
        match (&cr, &rr) {
            (Ok(()), Ok(())) => {}
            (Err(ce), Err(re)) => {
                assert_eq!(ce.to_string(), re.to_string(), "error mismatch at step {i}");
                return compiled.is_compiled();
            }
            _ => panic!("result mismatch at step {i}: compiled={cr:?} reference={rr:?}"),
        }
        assert_outputs_equal(&c, &r, &format!("step {i}"));
    }
    compiled.is_compiled()
}

fn assert_outputs_equal(c: &SimInstance, r: &SimInstance, at: &str) {
    assert_eq!(c.outputs(), r.outputs(), "output lists diverge at {at}");
    for out in r.outputs() {
        let cv = c.get(out).expect("compiled get");
        let rv = r.get(out).expect("reference get");
        assert_eq!(cv.as_u64(), rv.as_u64(), "`{out}` value diverges at {at}");
        assert_eq!(cv.width(), rv.width(), "`{out}` width diverges at {at}");
    }
}

#[test]
fn combinational_assigns_agree() {
    let src = "module ha(input a, input b, output sum, output cout);\n\
               assign sum = a ^ b; assign cout = a & b; endmodule";
    let mut steps = Vec::new();
    for a in 0..2u64 {
        for b in 0..2u64 {
            steps.push(Set("a", a));
            steps.push(Set("b", b));
        }
    }
    assert!(assert_identical(src, "ha", &steps));
}

#[test]
fn concat_lvalue_adder_agrees() {
    let src = "module add(input [7:0] a, b, input cin, output [7:0] s, output cout);\n\
               assign {cout, s} = a + b + cin; endmodule";
    assert!(assert_identical(
        src,
        "add",
        &[Set("a", 200), Set("b", 100), Set("cin", 1), Set("a", 255), Set("b", 255)],
    ));
}

#[test]
fn clocked_counter_agrees() {
    let src = "module counter(input clk, input rst, input en, output reg [3:0] q);\n\
               always @(posedge clk) begin\n\
                 if (rst) q <= 4'd0; else if (en) q <= q + 4'd1;\n\
               end endmodule";
    let mut steps = vec![Set("rst", 1), Clock("clk"), Set("rst", 0), Set("en", 1)];
    for _ in 0..20 {
        steps.push(Clock("clk"));
    }
    steps.push(Set("en", 0));
    steps.push(Clock("clk"));
    assert!(assert_identical(src, "counter", &steps));
}

#[test]
fn async_reset_agrees() {
    let src = "module dff(input clk, input rst, input d, output reg q);\n\
               always @(posedge clk or posedge rst) begin\n\
                 if (rst) q <= 1'b0; else q <= d;\n\
               end endmodule";
    assert!(assert_identical(
        src,
        "dff",
        &[Set("d", 1), Clock("clk"), Set("rst", 1), Set("rst", 0), Clock("clk")],
    ));
}

#[test]
fn case_decoder_agrees() {
    let src = "module dec(input [1:0] sel, output reg [3:0] y);\n\
               always @* case (sel)\n\
                 2'd0: y = 4'b0001; 2'd1: y = 4'b0010;\n\
                 2'd2: y = 4'b0100; default: y = 4'b1000; endcase endmodule";
    assert!(assert_identical(
        src,
        "dec",
        &[Set("sel", 0), Set("sel", 1), Set("sel", 2), Set("sel", 3)],
    ));
}

#[test]
fn nonblocking_swap_agrees() {
    let src = "module swap(input clk, input load, input [3:0] ia, ib, output reg [3:0] a, b);\n\
               always @(posedge clk) begin\n\
                 if (load) begin a <= ia; b <= ib; end\n\
                 else begin a <= b; b <= a; end\n\
               end endmodule";
    assert!(assert_identical(
        src,
        "swap",
        &[Set("load", 1), Set("ia", 3), Set("ib", 9), Clock("clk"), Set("load", 0), Clock("clk")],
    ));
}

#[test]
fn hierarchical_ripple_adder_agrees() {
    let src = "module fa(input a, input b, input cin, output s, output cout);\n\
               assign s = a ^ b ^ cin;\n\
               assign cout = (a & b) | (a & cin) | (b & cin);\nendmodule\n\
               module rca4(input [3:0] a, b, input cin, output [3:0] s, output cout);\n\
               wire c0, c1, c2;\n\
               fa f0(.a(a[0]), .b(b[0]), .cin(cin), .s(s[0]), .cout(c0));\n\
               fa f1(.a(a[1]), .b(b[1]), .cin(c0), .s(s[1]), .cout(c1));\n\
               fa f2(.a(a[2]), .b(b[2]), .cin(c1), .s(s[2]), .cout(c2));\n\
               fa f3(.a(a[3]), .b(b[3]), .cin(c2), .s(s[3]), .cout(cout));\nendmodule";
    let mut steps = Vec::new();
    for a in 0..16u64 {
        for b in 0..16u64 {
            steps.push(Set("a", a));
            steps.push(Set("b", b));
        }
    }
    assert!(assert_identical(src, "rca4", &steps));
}

#[test]
fn memory_write_read_agrees() {
    let src = "module ram(input clk, input we, input [3:0] addr, input [7:0] din, \
               output reg [7:0] dout);\n\
               reg [7:0] mem [0:15];\n\
               always @(posedge clk) begin\n\
                 if (we) mem[addr] <= din;\n\
                 dout <= mem[addr];\n\
               end endmodule";
    assert!(assert_identical(
        src,
        "ram",
        &[
            Set("we", 1),
            Set("addr", 5),
            Set("din", 0xAB),
            Clock("clk"),
            Set("addr", 9),
            Set("din", 0x42),
            Clock("clk"),
            Set("we", 0),
            Set("addr", 5),
            Clock("clk"),
            Set("addr", 9),
            Clock("clk"),
            Set("addr", 15), // never written: reads as zero in both
            Clock("clk"),
        ],
    ));
}

#[test]
fn for_loop_reverser_agrees() {
    let src = "module rev(input [7:0] a, output reg [7:0] y);\n\
               integer i;\n\
               always @* begin\n\
                 for (i = 0; i < 8; i = i + 1) y[i] = a[7 - i];\n\
               end endmodule";
    assert!(
        assert_identical(src, "rev", &[Set("a", 0b1100_1010), Set("a", 0xFF), Set("a", 0x01)],)
    );
}

#[test]
fn fsm_sequence_detector_agrees() {
    let src = "module det(input clk, input rst, input x, output y);\n\
               reg [1:0] state, next;\n\
               localparam S0 = 2'd0, S1 = 2'd1, S2 = 2'd2, S3 = 2'd3;\n\
               always @(posedge clk) begin\n\
                 if (rst) state <= S0; else state <= next;\n\
               end\n\
               always @* begin\n\
                 case (state)\n\
                   S0: next = x ? S1 : S0;\n\
                   S1: next = x ? S1 : S2;\n\
                   S2: next = x ? S3 : S0;\n\
                   S3: next = x ? S1 : S2;\n\
                   default: next = S0;\n\
                 endcase\n\
               end\n\
               assign y = state == S3;\nendmodule";
    let mut steps = vec![Set("rst", 1), Clock("clk"), Set("rst", 0)];
    for x in [1u64, 0, 1, 1, 0, 1, 0, 0, 1] {
        steps.push(Set("x", x));
        steps.push(Clock("clk"));
    }
    assert!(assert_identical(src, "det", &steps));
}

#[test]
fn shift_and_signed_ops_agree() {
    let src = "module sh(input [7:0] a, input [2:0] n, output [7:0] l, output [7:0] r, \
               output signed [7:0] ar);\n\
               assign l = a << n; assign r = a >> n; assign ar = $signed(a) >>> n; endmodule";
    let mut steps = Vec::new();
    for a in [0x90u64, 0x01, 0xFF, 0x7F] {
        for n in 0..8u64 {
            steps.push(Set("a", a));
            steps.push(Set("n", n));
        }
    }
    assert!(assert_identical(src, "sh", &steps));
}

#[test]
fn division_modulo_by_zero_agree() {
    let src = "module d(input [7:0] a, b, output [7:0] q, output [7:0] r);\n\
               assign q = a / b; assign r = a % b; endmodule";
    assert!(assert_identical(
        src,
        "d",
        &[Set("a", 42), Set("b", 0), Set("b", 5), Set("a", 255), Set("b", 3)],
    ));
}

#[test]
fn reduction_and_clog2_agree() {
    let src = "module rc(input [7:0] a, output all, output any, output par, output [4:0] y);\n\
               assign all = &a; assign any = |a; assign par = ^a;\n\
               assign y = $clog2(a); endmodule";
    let mut steps = Vec::new();
    for a in 0..=255u64 {
        steps.push(Set("a", a));
    }
    assert!(assert_identical(src, "rc", &steps));
}

#[test]
fn indexed_part_select_agrees() {
    let src = "module ips(input [31:0] a, input [1:0] sel, output [7:0] y);\n\
               assign y = a[sel*8 +: 8]; endmodule";
    assert!(assert_identical(
        src,
        "ips",
        &[Set("a", 0xDDCC_BBAA), Set("sel", 0), Set("sel", 1), Set("sel", 2), Set("sel", 3)],
    ));
}

#[test]
fn string_literal_widths_agree() {
    let src = "module str(input e, output [31:0] y, output [7:0] z);\n\
               assign y = e ? \"AB\" : 32'd0; assign z = \"Z\"; endmodule";
    assert!(assert_identical(src, "str", &[Set("e", 1), Set("e", 0)]));
}

#[test]
fn parameterized_width_agrees() {
    let src = "module p #(parameter W = 16)(input [W-1:0] a, output [W-1:0] y);\n\
               assign y = a + 1'b1; endmodule";
    assert!(assert_identical(src, "p", &[Set("a", 0xFFFF), Set("a", 7)]));
}

#[test]
fn oscillating_design_fails_identically_at_instantiation() {
    let src = "module osc(input a, output y); wire n; assign n = ~n; \
               assign y = n & a; endmodule";
    let ce = SimDesign::build(src, "osc", SimMode::Compiled)
        .expect("build")
        .instantiate()
        .expect_err("oscillation");
    let re = SimDesign::build(src, "osc", SimMode::Reference)
        .expect("build")
        .instantiate()
        .expect_err("oscillation");
    assert_eq!(ce.to_string(), re.to_string());
}

#[test]
fn runaway_loop_fails_identically() {
    // The loop variable wraps at 4 bits, so `i < 20` never terminates.
    let src = "module lp(input a, output reg y);\n\
               reg [3:0] i;\n\
               always @* begin\n\
                 y = a;\n\
                 for (i = 0; i < 20; i = i + 1) y = y ^ a;\n\
               end endmodule";
    let cr = SimDesign::build(src, "lp", SimMode::Compiled).expect("build").instantiate();
    let rr = SimDesign::build(src, "lp", SimMode::Reference).expect("build").instantiate();
    match (cr, rr) {
        (Err(ce), Err(re)) => assert_eq!(ce.to_string(), re.to_string()),
        other => panic!("expected both to fail: {other:?}"),
    }
}

#[test]
fn api_errors_agree() {
    let src = "module m(input a, output y); assign y = a; endmodule";
    let cd = SimDesign::build(src, "m", SimMode::Compiled).expect("build");
    let rd = SimDesign::build(src, "m", SimMode::Reference).expect("build");
    let mut c = cd.instantiate().expect("inst");
    let mut r = rd.instantiate().expect("inst");
    assert_eq!(
        c.set("y", 1).expect_err("not an input").to_string(),
        r.set("y", 1).expect_err("not an input").to_string(),
    );
    assert_eq!(
        c.get("zz").expect_err("unknown").to_string(),
        r.get("zz").expect_err("unknown").to_string(),
    );
    assert_eq!(c.inputs(), r.inputs());
    assert_eq!(c.outputs(), r.outputs());
}

#[test]
fn runtime_varying_select_falls_back_to_reference() {
    // The indexed-select *width* reads an input, which the compiler cannot
    // fold statically — the facade must fall back, and results still agree.
    let src = "module f(input [7:0] a, input [2:0] w, output [7:0] y);\n\
               assign y = a[0 +: w]; endmodule";
    let engaged =
        assert_identical(src, "f", &[Set("a", 0xA5), Set("w", 1), Set("w", 3), Set("w", 7)]);
    assert!(!engaged, "expected reference fallback for runtime-varying select width");
}

#[test]
fn typical_designs_actually_compile() {
    // Guard against the fast path silently degrading to always-fallback.
    for (src, top) in [
        (
            "module counter(input clk, input rst, output reg [3:0] q);\n\
             always @(posedge clk) begin if (rst) q <= 4'd0; else q <= q + 4'd1; end endmodule",
            "counter",
        ),
        ("module ha(input a, b, output s, c); assign s = a ^ b; assign c = a & b; endmodule", "ha"),
    ] {
        let d = SimDesign::build(src, top, SimMode::Compiled).expect("build");
        assert!(d.is_compiled(), "{top} should compile");
    }
}

#[test]
fn straight_line_designs_get_a_settle_schedule() {
    // Guard against the one-pass schedule silently degrading to the
    // iterate-to-fixpoint loop on the common case: acyclic, loop-free
    // combinational logic (declared here in anti-topological order so the
    // analysis actually has to sort).
    let src = "module m(input a, input b, output y, output z);\n\
               wire t;\n\
               assign y = t | a;\n\
               assign z = t ^ b;\n\
               assign t = a & b;\n\
               endmodule";
    let d = SimDesign::build(src, "m", SimMode::Compiled).expect("build");
    let prog = d.prog.as_ref().expect("compiles");
    assert!(prog.schedule.is_some(), "acyclic design must get a schedule");
    assert_identical(src, "m", &[Set("a", 1), Set("b", 1), Set("a", 0), Set("b", 0), Set("b", 1)]);
}

#[test]
fn cyclic_and_looping_designs_fall_back_to_the_settle_loop() {
    // A combinational cycle (settles at zero, but the fixpoint is not
    // provable by topological order) and a for-loop body (backward jump)
    // must both decline the schedule yet stay bit-identical via the
    // iterate-to-fixpoint path.
    let cyclic = "module c(input a, output y);\n\
                  wire p, q;\n\
                  assign p = q & a;\n\
                  assign q = p;\n\
                  assign y = q;\n\
                  endmodule";
    let looping = "module l(input [7:0] x, output reg [7:0] y);\n\
                   integer i;\n\
                   always @* begin\n\
                   for (i = 0; i < 8; i = i + 1) y[i] = x[7 - i];\n\
                   end\n\
                   endmodule";
    for (src, top) in [(cyclic, "c"), (looping, "l")] {
        let d = SimDesign::build(src, top, SimMode::Compiled).expect("build");
        let prog = d.prog.as_ref().expect("still compiles to bytecode");
        assert!(prog.schedule.is_none(), "{top} must not be scheduled");
    }
    assert_identical(cyclic, "c", &[Set("a", 1), Set("a", 0)]);
    assert_identical(looping, "l", &[Set("x", 0xA5), Set("x", 0x3C)]);
}

#[test]
fn multi_writer_slots_decline_the_schedule() {
    // Two assigns driving the same net: the engine iterates them in
    // declaration order (last writer wins per iteration — here that even
    // oscillates for a=0), so a fixed order must not pretend to settle it.
    let src = "module w(input a, output y);\n\
               assign y = a;\n\
               assign y = ~a;\n\
               endmodule";
    let d = SimDesign::build(src, "w", SimMode::Compiled).expect("build");
    let prog = d.prog.as_ref().expect("compiles");
    assert!(prog.schedule.is_none(), "multi-writer must not be scheduled");
    // Both backends must classify the conflicting drive identically.
    let c = SimDesign::build(src, "w", SimMode::Compiled).expect("build");
    let r = SimDesign::build(src, "w", SimMode::Reference).expect("build");
    let ci = c.instantiate().map(|_| ()).map_err(|e| e.to_string());
    let ri = r.instantiate().map(|_| ()).map_err(|e| e.to_string());
    assert_eq!(ci, ri, "conflicting-driver verdict must agree");
}

mod random_stimulus {
    use super::super::{SimDesign, SimMode};
    use proptest::prelude::*;

    /// Drives both backends with the same pseudo-random stimulus stream and
    /// asserts identical outputs after every step.
    fn drive_both(src: &str, top: &str, inputs: &[(&str, u64)], clk: Option<&str>, seed: u64) {
        let cd = SimDesign::build(src, top, SimMode::Compiled).expect("build compiled");
        let rd = SimDesign::build(src, top, SimMode::Reference).expect("build reference");
        assert!(cd.is_compiled(), "{top} should engage the VM");
        let mut c = cd.instantiate().expect("inst compiled");
        let mut r = rd.instantiate().expect("inst reference");
        let mut state = seed | 1;
        for step in 0..40 {
            for (name, mask) in inputs {
                // xorshift64 keeps the stimulus deterministic per seed.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let v = state & mask;
                c.set(name, v).expect("compiled set");
                r.set(name, v).expect("reference set");
            }
            if let Some(clk) = clk {
                c.clock(clk).expect("compiled clock");
                r.clock(clk).expect("reference clock");
            }
            for out in rd.instantiate().expect("inst").outputs() {
                assert_eq!(
                    c.get(out).expect("get").as_u64(),
                    r.get(out).expect("get").as_u64(),
                    "`{out}` diverges at step {step} (seed {seed})"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn alu_agrees_on_random_stimulus(seed in 0u64..10_000) {
            let src = "module alu(input [2:0] op, input [7:0] a, b, output reg [7:0] y);\n\
                       always @* case (op)\n\
                         3'd0: y = a + b; 3'd1: y = a - b; 3'd2: y = a & b;\n\
                         3'd3: y = a | b; 3'd4: y = a ^ b; 3'd5: y = a << b[2:0];\n\
                         3'd6: y = a >> b[2:0]; default: y = a * b; endcase endmodule";
            drive_both(src, "alu", &[("op", 7), ("a", 0xFF), ("b", 0xFF)], None, seed);
        }

        #[test]
        fn shift_register_agrees_on_random_stimulus(seed in 0u64..10_000) {
            let src = "module sr(input clk, input rst, input d, output reg [7:0] q);\n\
                       always @(posedge clk) begin\n\
                         if (rst) q <= 8'd0; else q <= {q[6:0], d};\n\
                       end endmodule";
            drive_both(src, "sr", &[("rst", 0), ("d", 1)], Some("clk"), seed);
        }

        #[test]
        fn memory_agrees_on_random_stimulus(seed in 0u64..10_000) {
            let src = "module ram(input clk, input we, input [2:0] addr, input [7:0] din,\n\
                       output reg [7:0] dout);\n\
                       reg [7:0] mem [0:7];\n\
                       always @(posedge clk) begin\n\
                         if (we) mem[addr] <= din;\n\
                         dout <= mem[addr];\n\
                       end endmodule";
            drive_both(
                src,
                "ram",
                &[("we", 1), ("addr", 7), ("din", 0xFF)],
                Some("clk"),
                seed,
            );
        }
    }
}
