//! Elaboration: flattening a hierarchical design into one scope.
//!
//! Instances are inlined recursively; a child signal `s` inside instance
//! `u0` becomes `u0.s` in the flat scope. Parameters are const-evaluated
//! (with instance overrides applied) and recorded as constants.

use crate::ast::*;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Elaboration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabError {
    /// Human-readable message.
    pub message: String,
}

impl ElabError {
    fn new(message: impl Into<String>) -> Self {
        ElabError { message: message.into() }
    }
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "elaboration error: {}", self.message)
    }
}

impl Error for ElabError {}

/// Description of one flat signal.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatSignal {
    /// Flat (dotted) name.
    pub name: String,
    /// Bit width.
    pub width: u32,
    /// Number of words when this is a memory (unpacked array), else 0.
    pub depth: u32,
    /// Lowest memory address (for `mem [4:19]`-style declarations).
    pub mem_base: u64,
}

/// A flattened design ready for simulation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlatDesign {
    /// All signals, including constants for parameters.
    pub signals: Vec<FlatSignal>,
    /// Continuous assignments (including the port-binding assigns created
    /// during flattening).
    pub assigns: Vec<ContinuousAssign>,
    /// Always blocks with flat signal names.
    pub always: Vec<AlwaysBlock>,
    /// Initial constant values (parameters and net initialisers with
    /// constant right-hand sides).
    pub constants: Vec<(String, u64)>,
    /// Names of the top module's input ports.
    pub inputs: Vec<String>,
    /// Names of the top module's output ports.
    pub outputs: Vec<String>,
}

impl FlatDesign {
    /// Finds a flat signal by name.
    pub fn signal(&self, name: &str) -> Option<&FlatSignal> {
        self.signals.iter().find(|s| s.name == name)
    }
}

/// Maximum instance-inlining depth (guards against recursive instantiation).
const MAX_DEPTH: u32 = 32;

/// Flattens `top` (and everything it instantiates) from `file`.
///
/// # Errors
///
/// Fails on: missing top module, undefined instantiated modules, recursive
/// instantiation deeper than 32, non-constant ranges, output ports connected
/// to non-lvalue expressions, and widths over 64 bits.
pub fn elaborate(file: &SourceFile, top: &str) -> Result<FlatDesign, ElabError> {
    let by_name: HashMap<&str, &Module> =
        file.modules.iter().map(|m| (m.name.as_str(), m)).collect();
    let top_mod =
        by_name.get(top).ok_or_else(|| ElabError::new(format!("top module `{top}` not found")))?;
    let mut design = FlatDesign::default();
    let mut ctx = Ctx { modules: &by_name, design: &mut design };
    flatten_module(&mut ctx, top_mod, "", &HashMap::new(), 0)?;
    for p in top_mod.ports.iter() {
        match p.dir {
            PortDir::Input => design.inputs.push(p.name.clone()),
            PortDir::Output => design.outputs.push(p.name.clone()),
            PortDir::Inout => {
                design.inputs.push(p.name.clone());
                design.outputs.push(p.name.clone());
            }
        }
    }
    Ok(design)
}

struct Ctx<'a> {
    modules: &'a HashMap<&'a str, &'a Module>,
    design: &'a mut FlatDesign,
}

/// Const-evaluates an expression given parameter values.
fn const_eval(e: &Expr, params: &HashMap<String, u64>) -> Result<u64, ElabError> {
    match e {
        Expr::Literal { value, .. } => Ok(*value),
        Expr::Ident(n) => params
            .get(n)
            .copied()
            .ok_or_else(|| ElabError::new(format!("`{n}` is not a constant in this context"))),
        Expr::Unary(op, a) => {
            let a = const_eval(a, params)?;
            Ok(match op {
                UnaryOp::Neg => a.wrapping_neg(),
                UnaryOp::Plus => a,
                UnaryOp::BitNot => !a,
                UnaryOp::LogicalNot => u64::from(a == 0),
                UnaryOp::RedAnd => u64::from(a == u64::MAX),
                UnaryOp::RedOr => u64::from(a != 0),
                UnaryOp::RedXor => u64::from(a.count_ones() % 2 == 1),
                UnaryOp::RedNand => u64::from(a != u64::MAX),
                UnaryOp::RedNor => u64::from(a == 0),
                UnaryOp::RedXnor => u64::from(a.count_ones() % 2 == 0),
            })
        }
        Expr::Binary(op, a, b) => {
            let a = const_eval(a, params)?;
            let b = const_eval(b, params)?;
            Ok(match op {
                BinaryOp::Add => a.wrapping_add(b),
                BinaryOp::Sub => a.wrapping_sub(b),
                BinaryOp::Mul => a.wrapping_mul(b),
                BinaryOp::Div => a.checked_div(b).unwrap_or(0),
                BinaryOp::Mod => {
                    if b == 0 {
                        0
                    } else {
                        a % b
                    }
                }
                BinaryOp::Pow => a.checked_pow(b.min(63) as u32).unwrap_or(u64::MAX),
                BinaryOp::BitAnd => a & b,
                BinaryOp::BitOr => a | b,
                BinaryOp::BitXor => a ^ b,
                BinaryOp::BitXnor => !(a ^ b),
                BinaryOp::LogicalAnd => u64::from(a != 0 && b != 0),
                BinaryOp::LogicalOr => u64::from(a != 0 || b != 0),
                BinaryOp::Eq | BinaryOp::CaseEq => u64::from(a == b),
                BinaryOp::Ne | BinaryOp::CaseNe => u64::from(a != b),
                BinaryOp::Lt => u64::from(a < b),
                BinaryOp::Le => u64::from(a <= b),
                BinaryOp::Gt => u64::from(a > b),
                BinaryOp::Ge => u64::from(a >= b),
                BinaryOp::Shl | BinaryOp::AShl => {
                    if b >= 64 {
                        0
                    } else {
                        a << b
                    }
                }
                BinaryOp::Shr | BinaryOp::AShr => {
                    if b >= 64 {
                        0
                    } else {
                        a >> b
                    }
                }
            })
        }
        Expr::Ternary(c, a, b) => {
            if const_eval(c, params)? != 0 {
                const_eval(a, params)
            } else {
                const_eval(b, params)
            }
        }
        other => Err(ElabError::new(format!("expression is not constant: {other:?}"))),
    }
}

fn range_width(r: &Range, params: &HashMap<String, u64>) -> Result<(u32, u64), ElabError> {
    let msb = const_eval(&r.msb, params)? as i64;
    let lsb = const_eval(&r.lsb, params)? as i64;
    let width = (msb - lsb).unsigned_abs() + 1;
    if width == 0 || width > 64 {
        return Err(ElabError::new(format!("range [{msb}:{lsb}] has unsupported width {width}")));
    }
    Ok((width as u32, msb.min(lsb) as u64))
}

/// Prefix helper: dotted path under an instance prefix.
fn flat_name(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_owned()
    } else {
        format!("{prefix}.{name}")
    }
}

fn flatten_module(
    ctx: &mut Ctx<'_>,
    module: &Module,
    prefix: &str,
    overrides: &HashMap<String, u64>,
    depth: u32,
) -> Result<(), ElabError> {
    if depth > MAX_DEPTH {
        return Err(ElabError::new(format!(
            "instance nesting deeper than {MAX_DEPTH}; recursive instantiation?"
        )));
    }

    // Resolve parameters: header params (with overrides) then body params.
    let mut params: HashMap<String, u64> = HashMap::new();
    for p in &module.params {
        let v = match overrides.get(&p.name) {
            Some(v) => *v,
            None => const_eval(&p.value, &params)?,
        };
        params.insert(p.name.clone(), v);
    }
    collect_body_params(&module.items, overrides, &mut params)?;

    // Declare port signals.
    for p in &module.ports {
        let (width, _) = match &p.range {
            Some(r) => range_width(r, &params)?,
            None => (1, 0),
        };
        push_signal(ctx, flat_name(prefix, &p.name), width, 0, 0);
    }

    flatten_items(ctx, &module.items, module, prefix, &params, depth)?;

    // Record parameter constants as pseudo-signals so expressions can read
    // them at runtime.
    for (name, value) in &params {
        let flat = flat_name(prefix, name);
        if ctx.design.signal(&flat).is_none() {
            push_signal(ctx, flat.clone(), 64, 0, 0);
        }
        ctx.design.constants.push((flat, *value));
    }
    Ok(())
}

fn collect_body_params(
    items: &[Item],
    overrides: &HashMap<String, u64>,
    params: &mut HashMap<String, u64>,
) -> Result<(), ElabError> {
    for item in items {
        match item {
            Item::Param(p) => {
                let v = match overrides.get(&p.name) {
                    Some(v) if !p.local => *v,
                    _ => const_eval(&p.value, params)?,
                };
                params.insert(p.name.clone(), v);
            }
            Item::Generate(inner) => collect_body_params(inner, overrides, params)?,
            _ => {}
        }
    }
    Ok(())
}

fn push_signal(ctx: &mut Ctx<'_>, name: String, width: u32, depth: u32, mem_base: u64) {
    if ctx.design.signal(&name).is_none() {
        ctx.design.signals.push(FlatSignal { name, width, depth, mem_base });
    }
}

fn flatten_items(
    ctx: &mut Ctx<'_>,
    items: &[Item],
    module: &Module,
    prefix: &str,
    params: &HashMap<String, u64>,
    depth: u32,
) -> Result<(), ElabError> {
    for item in items {
        match item {
            Item::Net(d) => {
                let (width, _) = match &d.range {
                    Some(r) => range_width(r, params)?,
                    None => {
                        if d.kind == NetKind::Integer {
                            (32, 0)
                        } else {
                            (1, 0)
                        }
                    }
                };
                for n in &d.names {
                    let flat = flat_name(prefix, &n.name);
                    match &n.unpacked {
                        Some(u) => {
                            let msb = const_eval(&u.msb, params)? as i64;
                            let lsb = const_eval(&u.lsb, params)? as i64;
                            let words = (msb - lsb).unsigned_abs() + 1;
                            if words > 1 << 20 {
                                return Err(ElabError::new(format!(
                                    "memory `{}` with {words} words is too large",
                                    n.name
                                )));
                            }
                            push_signal(ctx, flat, width, words as u32, msb.min(lsb) as u64);
                        }
                        None => push_signal(ctx, flat, width, 0, 0),
                    }
                    if let Some(init) = &n.init {
                        let flat = flat_name(prefix, &n.name);
                        if let Ok(v) = const_eval(init, params) {
                            ctx.design.constants.push((flat, v));
                        } else {
                            ctx.design.assigns.push(ContinuousAssign {
                                lhs: LValue::Ident(flat),
                                rhs: rename_expr(init, prefix),
                                line: 0,
                            });
                        }
                    }
                }
            }
            Item::Param(_) => {} // handled in collect_body_params
            Item::Assign(a) => {
                ctx.design.assigns.push(ContinuousAssign {
                    lhs: rename_lvalue(&a.lhs, prefix),
                    rhs: rename_expr(&a.rhs, prefix),
                    line: a.line,
                });
            }
            Item::Always(a) => {
                ctx.design.always.push(AlwaysBlock {
                    sensitivity: rename_sensitivity(&a.sensitivity, prefix),
                    body: rename_stmt(&a.body, prefix),
                    line: a.line,
                });
            }
            Item::Initial(_) => {
                // Initial blocks are testbench constructs; synthesizable
                // designs under simulation ignore them.
            }
            Item::Instance(inst) => {
                flatten_instance(ctx, inst, module, prefix, params, depth)?;
            }
            Item::Generate(inner) => {
                flatten_items(ctx, inner, module, prefix, params, depth)?;
            }
        }
    }
    Ok(())
}

fn flatten_instance(
    ctx: &mut Ctx<'_>,
    inst: &Instance,
    _parent: &Module,
    prefix: &str,
    params: &HashMap<String, u64>,
    depth: u32,
) -> Result<(), ElabError> {
    let child = *ctx
        .modules
        .get(inst.module.as_str())
        .ok_or_else(|| ElabError::new(format!("module `{}` is not defined", inst.module)))?;
    let child_prefix = flat_name(prefix, &inst.name);

    // Parameter overrides.
    let mut overrides = HashMap::new();
    for (i, (name, e)) in inst.params.iter().enumerate() {
        let v = const_eval(e, params)?;
        let pname = match name {
            Some(n) => n.clone(),
            None => child
                .params
                .get(i)
                .map(|p| p.name.clone())
                .ok_or_else(|| ElabError::new("too many positional parameter overrides"))?,
        };
        overrides.insert(pname, v);
    }

    flatten_module(ctx, child, &child_prefix, &overrides, depth + 1)?;

    // Port bindings.
    for (i, (name, conn)) in inst.ports.iter().enumerate() {
        let port = match name {
            Some(n) => child
                .port(n)
                .ok_or_else(|| {
                    ElabError::new(format!("module `{}` has no port `{n}`", child.name))
                })?
                .clone(),
            None => child
                .ports
                .get(i)
                .cloned()
                .ok_or_else(|| ElabError::new("too many positional port connections"))?,
        };
        let Some(conn) = conn else { continue };
        let child_sig = flat_name(&child_prefix, &port.name);
        let conn_renamed = rename_expr(conn, prefix);
        match port.dir {
            PortDir::Input => {
                ctx.design.assigns.push(ContinuousAssign {
                    lhs: LValue::Ident(child_sig),
                    rhs: conn_renamed,
                    line: inst.line,
                });
            }
            PortDir::Output | PortDir::Inout => {
                let lhs = expr_to_lvalue(&conn_renamed).ok_or_else(|| {
                    ElabError::new(format!(
                        "output port `{}` of instance `{}` is connected to a non-assignable expression",
                        port.name, inst.name
                    ))
                })?;
                ctx.design.assigns.push(ContinuousAssign {
                    lhs,
                    rhs: Expr::Ident(child_sig),
                    line: inst.line,
                });
            }
        }
    }
    Ok(())
}

fn expr_to_lvalue(e: &Expr) -> Option<LValue> {
    match e {
        Expr::Ident(n) => Some(LValue::Ident(n.clone())),
        Expr::Index(n, i) => Some(LValue::Index(n.clone(), (**i).clone())),
        Expr::RangeSelect(n, a, b) => Some(LValue::Range(n.clone(), (**a).clone(), (**b).clone())),
        Expr::Concat(parts) => {
            let mut out = Vec::with_capacity(parts.len());
            for p in parts {
                out.push(expr_to_lvalue(p)?);
            }
            Some(LValue::Concat(out))
        }
        _ => None,
    }
}

// ---- renaming (prefixing) walkers ----

fn rename_sensitivity(s: &Sensitivity, prefix: &str) -> Sensitivity {
    match s {
        Sensitivity::Star => Sensitivity::Star,
        Sensitivity::Signals(sig) => {
            Sensitivity::Signals(sig.iter().map(|s| flat_name(prefix, s)).collect())
        }
        Sensitivity::Edges(es) => Sensitivity::Edges(
            es.iter()
                .map(|e| EdgeSpec { edge: e.edge, signal: flat_name(prefix, &e.signal) })
                .collect(),
        ),
    }
}

fn rename_lvalue(lv: &LValue, prefix: &str) -> LValue {
    match lv {
        LValue::Ident(n) => LValue::Ident(flat_name(prefix, n)),
        LValue::Index(n, e) => LValue::Index(flat_name(prefix, n), rename_expr(e, prefix)),
        LValue::Range(n, a, b) => {
            LValue::Range(flat_name(prefix, n), rename_expr(a, prefix), rename_expr(b, prefix))
        }
        LValue::Concat(parts) => {
            LValue::Concat(parts.iter().map(|p| rename_lvalue(p, prefix)).collect())
        }
    }
}

fn rename_stmt(s: &Stmt, prefix: &str) -> Stmt {
    match s {
        Stmt::Blocking(lv, e) => Stmt::Blocking(rename_lvalue(lv, prefix), rename_expr(e, prefix)),
        Stmt::NonBlocking(lv, e) => {
            Stmt::NonBlocking(rename_lvalue(lv, prefix), rename_expr(e, prefix))
        }
        Stmt::If { cond, then_branch, else_branch } => Stmt::If {
            cond: rename_expr(cond, prefix),
            then_branch: Box::new(rename_stmt(then_branch, prefix)),
            else_branch: else_branch.as_ref().map(|e| Box::new(rename_stmt(e, prefix))),
        },
        Stmt::Case { kind, subject, arms } => Stmt::Case {
            kind: *kind,
            subject: rename_expr(subject, prefix),
            arms: arms
                .iter()
                .map(|a| CaseArm {
                    labels: a.labels.iter().map(|l| rename_expr(l, prefix)).collect(),
                    body: rename_stmt(&a.body, prefix),
                })
                .collect(),
        },
        Stmt::For { init, cond, step, body } => Stmt::For {
            init: Box::new(rename_stmt(init, prefix)),
            cond: rename_expr(cond, prefix),
            step: Box::new(rename_stmt(step, prefix)),
            body: Box::new(rename_stmt(body, prefix)),
        },
        Stmt::Block(stmts) => Stmt::Block(stmts.iter().map(|s| rename_stmt(s, prefix)).collect()),
        Stmt::SystemCall(n, args) => {
            Stmt::SystemCall(n.clone(), args.iter().map(|a| rename_expr(a, prefix)).collect())
        }
        Stmt::Empty => Stmt::Empty,
    }
}

fn rename_expr(e: &Expr, prefix: &str) -> Expr {
    match e {
        Expr::Ident(n) => Expr::Ident(flat_name(prefix, n)),
        Expr::Literal { .. } | Expr::StringLit(_) => e.clone(),
        Expr::Unary(op, a) => Expr::Unary(*op, Box::new(rename_expr(a, prefix))),
        Expr::Binary(op, a, b) => {
            Expr::Binary(*op, Box::new(rename_expr(a, prefix)), Box::new(rename_expr(b, prefix)))
        }
        Expr::Ternary(c, a, b) => Expr::Ternary(
            Box::new(rename_expr(c, prefix)),
            Box::new(rename_expr(a, prefix)),
            Box::new(rename_expr(b, prefix)),
        ),
        Expr::Concat(es) => Expr::Concat(es.iter().map(|x| rename_expr(x, prefix)).collect()),
        Expr::Repeat(n, x) => {
            Expr::Repeat(Box::new(rename_expr(n, prefix)), Box::new(rename_expr(x, prefix)))
        }
        Expr::Index(n, i) => Expr::Index(flat_name(prefix, n), Box::new(rename_expr(i, prefix))),
        Expr::RangeSelect(n, a, b) => Expr::RangeSelect(
            flat_name(prefix, n),
            Box::new(rename_expr(a, prefix)),
            Box::new(rename_expr(b, prefix)),
        ),
        Expr::IndexedSelect { name, base, width, ascending } => Expr::IndexedSelect {
            name: flat_name(prefix, name),
            base: Box::new(rename_expr(base, prefix)),
            width: Box::new(rename_expr(width, prefix)),
            ascending: *ascending,
        },
        Expr::Call(f, args) => {
            Expr::Call(f.clone(), args.iter().map(|a| rename_expr(a, prefix)).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn flattens_single_module() {
        let f = parse("module m(input [3:0] a, output [3:0] y); assign y = ~a; endmodule").unwrap();
        let d = elaborate(&f, "m").unwrap();
        assert_eq!(d.inputs, vec!["a"]);
        assert_eq!(d.outputs, vec!["y"]);
        assert_eq!(d.signal("a").unwrap().width, 4);
        assert_eq!(d.assigns.len(), 1);
    }

    #[test]
    fn flattens_hierarchy_with_prefixes() {
        let f = parse(
            "module top(input a, output y); inv u0(.i(a), .o(y)); endmodule\n\
             module inv(input i, output o); assign o = ~i; endmodule",
        )
        .unwrap();
        let d = elaborate(&f, "top").unwrap();
        assert!(d.signal("u0.i").is_some());
        assert!(d.signal("u0.o").is_some());
        // 1 child assign + 2 port bindings
        assert_eq!(d.assigns.len(), 3);
    }

    #[test]
    fn parameter_override_applies() {
        let f = parse(
            "module top(input [7:0] a, output [7:0] y); pass #(.W(8)) u0(.i(a), .o(y)); endmodule\n\
             module pass #(parameter W = 4)(input [W-1:0] i, output [W-1:0] o); assign o = i; endmodule",
        )
        .unwrap();
        let d = elaborate(&f, "top").unwrap();
        assert_eq!(d.signal("u0.i").unwrap().width, 8);
    }

    #[test]
    fn missing_module_errors() {
        let f = parse("module top(input a, output y); nope u0(.p(a), .q(y)); endmodule").unwrap();
        assert!(elaborate(&f, "top").is_err());
    }

    #[test]
    fn missing_top_errors() {
        let f = parse("module m(input a, output y); assign y = a; endmodule").unwrap();
        assert!(elaborate(&f, "zzz").is_err());
    }

    #[test]
    fn recursive_instantiation_errors() {
        let f = parse("module a(input x, output y); a u0(.x(x), .y(y)); endmodule").unwrap();
        let err = elaborate(&f, "a").unwrap_err();
        assert!(err.message.contains("recursive") || err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn localparam_recorded_as_constant() {
        let f =
            parse("module m(input a, output y); localparam ONE = 1; assign y = a & ONE; endmodule")
                .unwrap();
        let d = elaborate(&f, "m").unwrap();
        assert!(d.constants.iter().any(|(n, v)| n == "ONE" && *v == 1));
    }

    #[test]
    fn memory_declared_with_depth() {
        let f = parse(
            "module m(input clk, input [3:0] a, input [7:0] d, input we, output reg [7:0] q);\n\
             reg [7:0] mem [0:15];\n\
             always @(posedge clk) begin if (we) mem[a] <= d; q <= mem[a]; end endmodule",
        )
        .unwrap();
        let d = elaborate(&f, "m").unwrap();
        let mem = d.signal("mem").unwrap();
        assert_eq!(mem.width, 8);
        assert_eq!(mem.depth, 16);
    }

    #[test]
    fn positional_connections_map_in_order() {
        let f = parse(
            "module top(input a, input b, output y); and2 u0(a, b, y); endmodule\n\
             module and2(input p, input q, output r); assign r = p & q; endmodule",
        )
        .unwrap();
        let d = elaborate(&f, "top").unwrap();
        // input bindings `u0.p = a`, `u0.q = b`, plus the child's own
        // `u0.r = u0.p & u0.q`
        assert_eq!(
            d.assigns
                .iter()
                .filter(|a| matches!(&a.lhs, LValue::Ident(n) if n.starts_with("u0.")))
                .count(),
            3
        );
        assert!(d.assigns.iter().any(|a| matches!(&a.lhs, LValue::Ident(n) if n == "y")
            && matches!(&a.rhs, Expr::Ident(n) if n == "u0.r")));
    }

    #[test]
    fn width_over_64_errors() {
        let f = parse("module m(input [127:0] a, output y); assign y = a[0]; endmodule").unwrap();
        assert!(elaborate(&f, "m").is_err());
    }
}
