//! # pyranet-verilog
//!
//! A from-scratch Verilog-2001-subset front end and simulator, built as the
//! EDA substrate for the PyraNet reproduction (DAC 2025).
//!
//! The PyraNet curation pipeline needs four capabilities from its Verilog
//! toolchain, and this crate provides all of them without external tools:
//!
//! 1. **Lexing/parsing** ([`lexer`], [`parser`], [`ast`]) — a recursive
//!    descent parser for the synthesizable subset used by the corpus:
//!    modules, ports, parameters, `wire`/`reg` declarations, continuous
//!    assigns, `always` blocks (`@*` and edge-sensitive), `if`/`case`/`for`,
//!    expressions, and module instantiation.
//! 2. **Syntax checking** ([`check`]) — the stand-in for Icarus Verilog in
//!    the paper's pipeline. It distinguishes *syntax errors* (hard reject)
//!    from *dependency issues* (undefined module references; kept but
//!    demoted to Layer 6), exactly the two failure classes of §III-A.2.
//! 3. **Style & complexity metrics** ([`lint`], [`metrics`]) — the signals
//!    the ranking judge (GPT-4o-mini in the paper) consumes to produce the
//!    0–20 quality score and the Basic/Intermediate/Advanced/Expert
//!    complexity tier.
//! 4. **Simulation** ([`sim`]) — a two-state simulator for the
//!    VerilogEval-substitute functional checks (pass@k requires running the
//!    generated module against a golden testbench), with a compile-once
//!    bytecode VM fast path and the event-driven interpreter retained as
//!    the bit-identical reference oracle ([`SimMode`]).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use pyranet_verilog::{parse, check::SyntaxVerdict, check_source};
//!
//! let src = "module half_adder(input a, input b, output s, output c);\n\
//!            assign s = a ^ b;\n  assign c = a & b;\nendmodule\n";
//! let file = parse(src)?;
//! assert_eq!(file.modules.len(), 1);
//! assert_eq!(check_source(src), SyntaxVerdict::Clean);
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod check;
pub mod lexer;
pub mod lint;
pub mod metrics;
pub mod parser;
pub mod pretty;
pub mod sim;
pub mod token;

pub use ast::{Module, SourceFile};
pub use check::{check_file, check_source, SyntaxVerdict};
pub use lexer::Lexer;
pub use parser::{parse, ParseError};
pub use sim::{SimDesign, SimInstance, SimMode, Simulator, Value};

/// Convenience: lex and parse `src`, returning the first module, if any.
///
/// # Errors
///
/// Returns [`ParseError`] when the source does not lex or parse, or when it
/// contains no module declaration.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let m = pyranet_verilog::parse_module("module m(input a, output y); assign y = ~a; endmodule")?;
/// assert_eq!(m.name, "m");
/// # Ok(())
/// # }
/// ```
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let file = parse(src)?;
    file.modules
        .into_iter()
        .next()
        .ok_or_else(|| ParseError::new(0, "source contains no module declaration"))
}
