//! Abstract syntax tree for the Verilog-2001 subset.
//!
//! The AST is deliberately close to the concrete syntax: the curation
//! pipeline's lint and metric passes walk it directly, and the
//! pretty-printer ([`crate::pretty`]) can regenerate canonical source from
//! it (a property the test suite checks round-trips through the parser).

use serde::{Deserialize, Serialize};

/// A parsed source file: one or more module declarations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceFile {
    /// Modules in declaration order.
    pub modules: Vec<Module>,
}

impl SourceFile {
    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// Zeroes all source-line annotations, leaving a purely structural AST.
    ///
    /// Useful when comparing two parses of differently-formatted sources
    /// (e.g. pretty-printer round trips, semantic deduplication).
    pub fn strip_lines(&mut self) {
        for m in &mut self.modules {
            m.line = 0;
            strip_items(&mut m.items);
        }
    }
}

fn strip_items(items: &mut [Item]) {
    for item in items {
        match item {
            Item::Assign(a) => a.line = 0,
            Item::Always(a) => a.line = 0,
            Item::Instance(i) => i.line = 0,
            Item::Generate(inner) => strip_items(inner),
            _ => {}
        }
    }
}

/// A `module … endmodule` declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module identifier.
    pub name: String,
    /// Parameters declared in the `#(…)` header (or header-less body
    /// `parameter` declarations are folded in here as well).
    pub params: Vec<Param>,
    /// Port list in declaration order.
    pub ports: Vec<Port>,
    /// Body items in declaration order.
    pub items: Vec<Item>,
    /// Source line of the `module` keyword.
    pub line: u32,
}

impl Module {
    /// Returns the port with the given name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Iterates over input ports.
    pub fn inputs(&self) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(|p| p.dir == PortDir::Input)
    }

    /// Iterates over output ports.
    pub fn outputs(&self) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(|p| p.dir == PortDir::Output)
    }
}

/// A `parameter`/`localparam` declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter identifier.
    pub name: String,
    /// Default value expression.
    pub value: Expr,
    /// True for `localparam`.
    pub local: bool,
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDir {
    /// `input`
    Input,
    /// `output`
    Output,
    /// `inout`
    Inout,
}

/// A module port.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Port {
    /// Port identifier.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// Declared as `reg` (for outputs driven from always blocks).
    pub is_reg: bool,
    /// Optional `[msb:lsb]` range.
    pub range: Option<Range>,
    /// Declared `signed`.
    pub signed: bool,
}

/// A `[msb:lsb]` range. Both bounds are constant expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Range {
    /// Most-significant bound.
    pub msb: Expr,
    /// Least-significant bound.
    pub lsb: Expr,
}

/// Kind of a net/variable declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetKind {
    /// `wire` (also `tri`, `wand`, `wor` are folded into this for the subset)
    Wire,
    /// `reg`
    Reg,
    /// `integer` (treated as a 32-bit reg)
    Integer,
    /// `genvar`
    Genvar,
}

/// One declared net/variable name, with optional packed range and initial value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetDecl {
    /// Declaration kind.
    pub kind: NetKind,
    /// Shared packed range for all names in this declaration.
    pub range: Option<Range>,
    /// Declared `signed`.
    pub signed: bool,
    /// Declared names with optional unpacked (memory) dimensions and optional
    /// initialiser (`wire x = expr;`).
    pub names: Vec<DeclName>,
}

/// A single name inside a net declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeclName {
    /// Identifier.
    pub name: String,
    /// Optional unpacked dimension (memories): `reg [7:0] mem [0:255];`.
    pub unpacked: Option<Range>,
    /// Optional initialiser expression.
    pub init: Option<Expr>,
}

/// A module body item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Item {
    /// Net or variable declaration.
    Net(NetDecl),
    /// Parameter declared in the body.
    Param(Param),
    /// `assign lhs = rhs;`
    Assign(ContinuousAssign),
    /// `always @(…) stmt`
    Always(AlwaysBlock),
    /// `initial stmt`
    Initial(Stmt),
    /// Module instantiation.
    Instance(Instance),
    /// `generate … endgenerate` region (items kept verbatim; the subset does
    /// not elaborate generate loops, but parses them for metric purposes).
    Generate(Vec<Item>),
}

/// A continuous assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContinuousAssign {
    /// Left-hand side.
    pub lhs: LValue,
    /// Right-hand side.
    pub rhs: Expr,
    /// Source line.
    pub line: u32,
}

/// The sensitivity list of an always block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Sensitivity {
    /// `@*` or `@(*)`
    Star,
    /// `@(a or b or c)` / `@(a, b)` — level-sensitive list.
    Signals(Vec<String>),
    /// `@(posedge clk or negedge rst_n)` — edge-sensitive list.
    Edges(Vec<EdgeSpec>),
}

/// One `posedge sig` / `negedge sig` entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeSpec {
    /// Edge polarity.
    pub edge: Edge,
    /// Signal name.
    pub signal: String,
}

/// Edge polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Edge {
    /// Rising edge.
    Pos,
    /// Falling edge.
    Neg,
}

/// An `always` block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlwaysBlock {
    /// Sensitivity list.
    pub sensitivity: Sensitivity,
    /// Body statement (usually a `begin … end` block).
    pub body: Stmt,
    /// Source line of the `always` keyword.
    pub line: u32,
}

/// A procedural statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `lhs = rhs;`
    Blocking(LValue, Expr),
    /// `lhs <= rhs;`
    NonBlocking(LValue, Expr),
    /// `if (cond) then_ [else else_]`
    If {
        /// Condition expression.
        cond: Expr,
        /// Then branch.
        then_branch: Box<Stmt>,
        /// Optional else branch.
        else_branch: Option<Box<Stmt>>,
    },
    /// `case (subject) arms endcase` (`casez`/`casex` noted via `kind`).
    Case {
        /// Case flavour.
        kind: CaseKind,
        /// Subject expression.
        subject: Expr,
        /// Arms in source order.
        arms: Vec<CaseArm>,
    },
    /// `for (init; cond; step) body`
    For {
        /// Loop variable initialisation.
        init: Box<Stmt>,
        /// Loop condition.
        cond: Expr,
        /// Per-iteration step statement.
        step: Box<Stmt>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `begin [: label] … end`
    Block(Vec<Stmt>),
    /// A system task call such as `$display(…);` — parsed, ignored in
    /// simulation.
    SystemCall(String, Vec<Expr>),
    /// `;` — empty statement.
    Empty,
}

/// Case statement flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaseKind {
    /// `case`
    Case,
    /// `casez`
    Casez,
    /// `casex`
    Casex,
}

/// One arm of a case statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseArm {
    /// Match labels; empty means `default`.
    pub labels: Vec<Expr>,
    /// Arm body.
    pub body: Stmt,
}

/// An assignable target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LValue {
    /// Plain identifier.
    Ident(String),
    /// Single bit/element select: `x[i]`.
    Index(String, Expr),
    /// Constant part select: `x[msb:lsb]`.
    Range(String, Expr, Expr),
    /// Concatenation of lvalues: `{c, s}`.
    Concat(Vec<LValue>),
}

impl LValue {
    /// Names of all identifiers written by this lvalue.
    pub fn targets(&self) -> Vec<&str> {
        match self {
            LValue::Ident(n) | LValue::Index(n, _) | LValue::Range(n, _, _) => vec![n],
            LValue::Concat(parts) => parts.iter().flat_map(|p| p.targets()).collect(),
        }
    }
}

/// A module instantiation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Instantiated module name.
    pub module: String,
    /// Instance name.
    pub name: String,
    /// Parameter overrides `#(…)`; named (`Some`) or positional (`None`) keys.
    pub params: Vec<(Option<String>, Expr)>,
    /// Port connections; named or positional like `params`. `None` expression
    /// models an explicitly unconnected port `.p()`.
    pub ports: Vec<(Option<String>, Option<Expr>)>,
    /// Source line.
    pub line: u32,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `!`
    LogicalNot,
    /// `~`
    BitNot,
    /// `&` (reduction)
    RedAnd,
    /// `|` (reduction)
    RedOr,
    /// `^` (reduction)
    RedXor,
    /// `~&` (reduction)
    RedNand,
    /// `~|` (reduction)
    RedNor,
    /// `~^` (reduction)
    RedXnor,
    /// `+` (unary plus, identity)
    Plus,
}

/// Binary operators in precedence-relevant groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `**`
    Pow,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `~^`
    BitXnor,
    /// `&&`
    LogicalAnd,
    /// `||`
    LogicalOr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `===`
    CaseEq,
    /// `!==`
    CaseNe,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<<<`
    AShl,
    /// `>>>`
    AShr,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Identifier reference.
    Ident(String),
    /// Literal value. `width == 0` means unsized.
    Literal {
        /// Declared width (0 when unsized).
        width: u16,
        /// Value, `x`/`z` digits as zero.
        value: u64,
        /// Base used in the source (2/8/10/16); drives pretty-printing.
        base: u8,
        /// Whether the source literal had `x`/`z` digits.
        has_unknown: bool,
    },
    /// String literal (only valid in system call arguments).
    StringLit(String),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `{a, b, c}`
    Concat(Vec<Expr>),
    /// `{n{expr}}`
    Repeat(Box<Expr>, Box<Expr>),
    /// `x[i]`
    Index(String, Box<Expr>),
    /// `x[msb:lsb]`
    RangeSelect(String, Box<Expr>, Box<Expr>),
    /// `x[base +: width]` / `x[base -: width]`
    IndexedSelect {
        /// Signal name.
        name: String,
        /// Base expression.
        base: Box<Expr>,
        /// Width expression (constant).
        width: Box<Expr>,
        /// True for `+:`, false for `-:`.
        ascending: bool,
    },
    /// Function-style call `f(a, b)` (system functions like `$signed` too).
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Unsized decimal literal helper.
    pub fn number(v: u64) -> Expr {
        Expr::Literal { width: 0, value: v, base: 10, has_unknown: false }
    }

    /// Sized literal helper.
    pub fn sized(width: u16, value: u64, base: u8) -> Expr {
        Expr::Literal { width, value, base, has_unknown: false }
    }

    /// Identifier helper.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident(name.into())
    }

    /// Collects the identifiers read by this expression into `out`.
    pub fn collect_idents<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Ident(n) => out.push(n),
            Expr::Literal { .. } | Expr::StringLit(_) => {}
            Expr::Unary(_, e) => e.collect_idents(out),
            Expr::Binary(_, a, b) => {
                a.collect_idents(out);
                b.collect_idents(out);
            }
            Expr::Ternary(c, a, b) => {
                c.collect_idents(out);
                a.collect_idents(out);
                b.collect_idents(out);
            }
            Expr::Concat(es) => {
                for e in es {
                    e.collect_idents(out);
                }
            }
            Expr::Repeat(n, e) => {
                n.collect_idents(out);
                e.collect_idents(out);
            }
            Expr::Index(n, i) => {
                out.push(n);
                i.collect_idents(out);
            }
            Expr::RangeSelect(n, a, b) => {
                out.push(n);
                a.collect_idents(out);
                b.collect_idents(out);
            }
            Expr::IndexedSelect { name, base, width, .. } => {
                out.push(name);
                base.collect_idents(out);
                width.collect_idents(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_idents(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_idents_walks_everything() {
        let e = Expr::Ternary(
            Box::new(Expr::ident("sel")),
            Box::new(Expr::Binary(
                BinaryOp::Add,
                Box::new(Expr::ident("a")),
                Box::new(Expr::number(1)),
            )),
            Box::new(Expr::Concat(vec![
                Expr::ident("b"),
                Expr::Index("mem".into(), Box::new(Expr::ident("i"))),
            ])),
        );
        let mut ids = Vec::new();
        e.collect_idents(&mut ids);
        assert_eq!(ids, vec!["sel", "a", "b", "mem", "i"]);
    }

    #[test]
    fn lvalue_targets() {
        let lv = LValue::Concat(vec![
            LValue::Ident("c".into()),
            LValue::Index("s".into(), Expr::number(0)),
        ]);
        assert_eq!(lv.targets(), vec!["c", "s"]);
    }

    #[test]
    fn module_port_queries() {
        let m = Module {
            name: "m".into(),
            params: vec![],
            ports: vec![
                Port {
                    name: "a".into(),
                    dir: PortDir::Input,
                    is_reg: false,
                    range: None,
                    signed: false,
                },
                Port {
                    name: "y".into(),
                    dir: PortDir::Output,
                    is_reg: true,
                    range: None,
                    signed: false,
                },
            ],
            items: vec![],
            line: 1,
        };
        assert_eq!(m.inputs().count(), 1);
        assert_eq!(m.outputs().count(), 1);
        assert!(m.port("a").is_some());
        assert!(m.port("z").is_none());
    }
}
