//! Token definitions for the Verilog lexer.

use std::fmt;

/// A lexical token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// Creates a token at the given line.
    pub fn new(kind: TokenKind, line: u32) -> Self {
        Token { kind, line }
    }
}

/// The set of token kinds recognised by the lexer.
///
/// This covers the Verilog-2001 synthesizable subset that the PyraNet corpus
/// generators emit and the curation pipeline must judge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier (including escaped identifiers, with the backslash kept).
    Ident(String),
    /// A reserved keyword such as `module` or `assign`.
    Keyword(Keyword),
    /// An unsized decimal literal, e.g. `42`.
    UnsizedNumber(u64),
    /// A sized/based literal, e.g. `4'b1010`: (width, base, value, has_unknown).
    ///
    /// `has_unknown` is set when the literal contains `x`/`z` digits; the
    /// two-state simulator treats those bits as zero but the parser keeps
    /// the fact around for linting.
    SizedNumber {
        /// Bit width before the base marker (0 when written as `'b…`).
        width: u16,
        /// Numeric base: 2, 8, 10 or 16.
        base: u8,
        /// Value with `x`/`z` digits mapped to 0.
        value: u64,
        /// Whether the literal contained `x` or `z` digits.
        has_unknown: bool,
    },
    /// A string literal (without the surrounding quotes).
    StringLit(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `#`
    Hash,
    /// `@`
    At,
    /// `?`
    Question,
    /// `=`
    Assign,
    /// `<=` in statement position (also the comparison operator; the parser
    /// disambiguates by context).
    LtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `**`
    Power,
    /// `!`
    Bang,
    /// `~`
    Tilde,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~^` or `^~`
    Xnor,
    /// `~&`
    Nand,
    /// `~|`
    Nor,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `===`
    CaseEq,
    /// `!==`
    CaseNotEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<<<`
    AShl,
    /// `>>>`
    AShr,
    /// `+:` (indexed part-select, ascending)
    PlusColon,
    /// `-:` (indexed part-select, descending)
    MinusColon,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k}`"),
            TokenKind::UnsizedNumber(v) => write!(f, "number `{v}`"),
            TokenKind::SizedNumber { width, base, value, .. } => {
                write!(f, "sized number `{width}'{base}:{value}`")
            }
            TokenKind::StringLit(s) => write!(f, "string {s:?}"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::LBracket => f.write_str("`[`"),
            TokenKind::RBracket => f.write_str("`]`"),
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
            TokenKind::Semi => f.write_str("`;`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Colon => f.write_str("`:`"),
            TokenKind::Dot => f.write_str("`.`"),
            TokenKind::Hash => f.write_str("`#`"),
            TokenKind::At => f.write_str("`@`"),
            TokenKind::Question => f.write_str("`?`"),
            TokenKind::Assign => f.write_str("`=`"),
            TokenKind::LtEq => f.write_str("`<=`"),
            TokenKind::Plus => f.write_str("`+`"),
            TokenKind::Minus => f.write_str("`-`"),
            TokenKind::Star => f.write_str("`*`"),
            TokenKind::Slash => f.write_str("`/`"),
            TokenKind::Percent => f.write_str("`%`"),
            TokenKind::Power => f.write_str("`**`"),
            TokenKind::Bang => f.write_str("`!`"),
            TokenKind::Tilde => f.write_str("`~`"),
            TokenKind::Amp => f.write_str("`&`"),
            TokenKind::Pipe => f.write_str("`|`"),
            TokenKind::Caret => f.write_str("`^`"),
            TokenKind::Xnor => f.write_str("`~^`"),
            TokenKind::Nand => f.write_str("`~&`"),
            TokenKind::Nor => f.write_str("`~|`"),
            TokenKind::AndAnd => f.write_str("`&&`"),
            TokenKind::OrOr => f.write_str("`||`"),
            TokenKind::EqEq => f.write_str("`==`"),
            TokenKind::NotEq => f.write_str("`!=`"),
            TokenKind::CaseEq => f.write_str("`===`"),
            TokenKind::CaseNotEq => f.write_str("`!==`"),
            TokenKind::Lt => f.write_str("`<`"),
            TokenKind::Gt => f.write_str("`>`"),
            TokenKind::GtEq => f.write_str("`>=`"),
            TokenKind::Shl => f.write_str("`<<`"),
            TokenKind::Shr => f.write_str("`>>`"),
            TokenKind::AShl => f.write_str("`<<<`"),
            TokenKind::AShr => f.write_str("`>>>`"),
            TokenKind::PlusColon => f.write_str("`+:`"),
            TokenKind::MinusColon => f.write_str("`-:`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

macro_rules! keywords {
    ($($variant:ident => $text:literal),+ $(,)?) => {
        /// Reserved words recognised by the lexer.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[allow(missing_docs)]
        pub enum Keyword {
            $($variant),+
        }

        impl Keyword {
            /// Looks up a keyword from its source text.
            ///
            /// Infallible lookup, so not the `FromStr` trait (which would
            /// force an error type on every caller).
            #[allow(clippy::should_implement_trait)]
            pub fn from_str(s: &str) -> Option<Keyword> {
                match s {
                    $($text => Some(Keyword::$variant),)+
                    _ => None,
                }
            }

            /// The source text of this keyword.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Keyword::$variant => $text,)+
                }
            }
        }

        impl fmt::Display for Keyword {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }
    };
}

keywords! {
    Module => "module",
    Endmodule => "endmodule",
    Input => "input",
    Output => "output",
    Inout => "inout",
    Wire => "wire",
    Reg => "reg",
    Integer => "integer",
    Real => "real",
    Parameter => "parameter",
    Localparam => "localparam",
    Assign => "assign",
    Always => "always",
    Initial => "initial",
    Begin => "begin",
    End => "end",
    If => "if",
    Else => "else",
    Case => "case",
    Casez => "casez",
    Casex => "casex",
    Endcase => "endcase",
    Default => "default",
    For => "for",
    While => "while",
    Repeat => "repeat",
    Forever => "forever",
    Posedge => "posedge",
    Negedge => "negedge",
    Or => "or",
    Signed => "signed",
    Unsigned => "unsigned",
    Generate => "generate",
    Endgenerate => "endgenerate",
    Genvar => "genvar",
    Function => "function",
    Endfunction => "endfunction",
    Task => "task",
    Endtask => "endtask",
    Supply0 => "supply0",
    Supply1 => "supply1",
    Tri => "tri",
    Wand => "wand",
    Wor => "wor",
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [Keyword::Module, Keyword::Endmodule, Keyword::Posedge, Keyword::Casez] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
    }

    #[test]
    fn non_keyword_is_none() {
        assert_eq!(Keyword::from_str("adder"), None);
        assert_eq!(Keyword::from_str(""), None);
        assert_eq!(Keyword::from_str("Module"), None, "keywords are case-sensitive");
    }

    #[test]
    fn token_display_is_nonempty() {
        let kinds = [
            TokenKind::Ident("x".into()),
            TokenKind::UnsizedNumber(7),
            TokenKind::SizedNumber { width: 4, base: 2, value: 10, has_unknown: false },
            TokenKind::LtEq,
            TokenKind::Eof,
        ];
        for k in kinds {
            assert!(!k.to_string().is_empty());
        }
    }
}
