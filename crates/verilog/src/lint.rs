//! Style linting over source text and AST.
//!
//! The paper ranks every sample 0–20 by "overall Verilog coding style and
//! the efficiency of the code" (§III-A.4, Fig. 3). Our deterministic judge
//! consumes the [`LintReport`] produced here: each finding is a style or
//! efficiency defect with a severity weight, and the pipeline's ranker maps
//! the weighted defect count onto the 0–20 scale.

use crate::ast::*;
use std::collections::HashSet;

/// Category of a lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// Line exceeds 100 characters.
    LongLine,
    /// Tab characters used for indentation.
    TabIndent,
    /// Trailing whitespace on a line.
    TrailingWhitespace,
    /// Identifier shorter than 2 chars used for a port (non-clock/reset).
    CrypticPortName,
    /// Module has no comments at all and more than 10 lines.
    NoComments,
    /// A `case` statement without a `default` arm.
    CaseWithoutDefault,
    /// Blocking assignment inside an edge-sensitive always block.
    BlockingInSequential,
    /// Non-blocking assignment inside a combinational always block.
    NonBlockingInComb,
    /// Level-sensitive list that names signals instead of `@*`.
    ExplicitSensitivityList,
    /// A signal assigned in a combinational always block but (syntactically)
    /// not covered in every branch — a latch-inference smell.
    PossibleLatch,
    /// Magic number: unsized decimal literal > 1 used in an expression.
    MagicNumber,
    /// Duplicated right-hand side: the same non-trivial expression assigned
    /// to two different signals (inefficiency).
    DuplicatedLogic,
    /// Deeply nested conditionals (depth > 4).
    DeepNesting,
    /// Output port left completely undriven.
    UndrivenOutput,
    /// Declared net never read nor written.
    DeadSignal,
    /// A literal with `x`/`z` digits in synthesizable code.
    UnknownDigits,
    /// Module name does not match `[a-z][a-z0-9_]*` (style convention).
    BadModuleName,
}

impl LintKind {
    /// Severity weight used by the ranking judge (higher = worse).
    pub fn weight(self) -> f64 {
        use LintKind::*;
        match self {
            // Fig. 3 of the paper scores a half adder with single-letter
            // ports 20/20, so cryptic names barely register.
            CrypticPortName => 0.1,
            LongLine | TrailingWhitespace | TabIndent => 0.25,
            BadModuleName | NoComments => 0.5,
            ExplicitSensitivityList | MagicNumber => 0.75,
            CaseWithoutDefault | DeepNesting | UnknownDigits => 1.0,
            DuplicatedLogic | DeadSignal => 1.25,
            BlockingInSequential | NonBlockingInComb | PossibleLatch => 1.5,
            UndrivenOutput => 2.0,
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Category.
    pub kind: LintKind,
    /// 1-based line (0 when not line-anchored).
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

/// The result of linting one module + its source text.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    /// All findings.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Sum of severity weights — the judge's raw penalty.
    pub fn penalty(&self) -> f64 {
        self.findings.iter().map(|f| f.kind.weight()).sum()
    }

    /// Number of findings of a given kind.
    pub fn count(&self, kind: LintKind) -> usize {
        self.findings.iter().filter(|f| f.kind == kind).count()
    }
}

/// Lints `module` together with the raw `src` text it was parsed from.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use pyranet_verilog::lint::lint_module;
/// let src = "module m(input a, output y); assign y = a; endmodule";
/// let m = pyranet_verilog::parse_module(src)?;
/// assert!(lint_module(&m, src).penalty() < 1.0);
/// # Ok(())
/// # }
/// ```
pub fn lint_module(module: &Module, src: &str) -> LintReport {
    let mut report = LintReport::default();
    lint_text(src, &mut report);
    lint_structure(module, &mut report);
    report
}

fn lint_text(src: &str, report: &mut LintReport) {
    let mut has_comment = false;
    let mut line_count = 0u32;
    for (i, line) in src.lines().enumerate() {
        let lineno = (i + 1) as u32;
        line_count += 1;
        if line.len() > 100 {
            report.findings.push(Finding {
                kind: LintKind::LongLine,
                line: lineno,
                message: format!("line is {} characters long", line.len()),
            });
        }
        if line.starts_with('\t') {
            report.findings.push(Finding {
                kind: LintKind::TabIndent,
                line: lineno,
                message: "tab character used for indentation".into(),
            });
        }
        if line.ends_with(' ') || line.ends_with('\t') {
            report.findings.push(Finding {
                kind: LintKind::TrailingWhitespace,
                line: lineno,
                message: "trailing whitespace".into(),
            });
        }
        if line.contains("//") || line.contains("/*") {
            has_comment = true;
        }
    }
    if !has_comment && line_count > 10 {
        report.findings.push(Finding {
            kind: LintKind::NoComments,
            line: 0,
            message: "module longer than 10 lines has no comments".into(),
        });
    }
}

fn is_clockish(name: &str) -> bool {
    let n = name.to_ascii_lowercase();
    n == "clk" || n == "clock" || n == "rst" || n == "rst_n" || n == "reset" || n == "en"
}

fn lint_structure(module: &Module, report: &mut LintReport) {
    // module naming convention
    let name_ok = module.name.chars().next().map(|c| c.is_ascii_lowercase()).unwrap_or(false)
        && module.name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    if !name_ok {
        report.findings.push(Finding {
            kind: LintKind::BadModuleName,
            line: module.line,
            message: format!("module name `{}` violates lower_snake_case", module.name),
        });
    }

    for p in &module.ports {
        if p.name.len() < 2 && !is_clockish(&p.name) {
            report.findings.push(Finding {
                kind: LintKind::CrypticPortName,
                line: module.line,
                message: format!("port `{}` has a single-character name", p.name),
            });
        }
    }

    let mut driven: HashSet<String> = HashSet::new();
    let mut read: HashSet<String> = HashSet::new();
    let mut declared: HashSet<String> = HashSet::new();
    let mut rhs_exprs: Vec<(String, u32)> = Vec::new();

    for p in &module.ports {
        declared.insert(p.name.clone());
        if p.dir == PortDir::Input {
            // inputs are externally driven
            driven.insert(p.name.clone());
        }
        if p.dir == PortDir::Output {
            // outputs are externally read
            read.insert(p.name.clone());
        }
    }

    walk_items(&module.items, report, &mut driven, &mut read, &mut declared, &mut rhs_exprs);

    // duplicated non-trivial RHS
    let mut seen: HashSet<&str> = HashSet::new();
    for (rhs, line) in &rhs_exprs {
        if rhs.len() > 8 && !seen.insert(rhs.as_str()) {
            report.findings.push(Finding {
                kind: LintKind::DuplicatedLogic,
                line: *line,
                message: format!("expression `{rhs}` is computed more than once"),
            });
        }
    }

    for p in module.outputs() {
        if !driven.contains(&p.name) {
            report.findings.push(Finding {
                kind: LintKind::UndrivenOutput,
                line: module.line,
                message: format!("output `{}` is never driven", p.name),
            });
        }
    }
    for d in &declared {
        if !driven.contains(d) && !read.contains(d) {
            report.findings.push(Finding {
                kind: LintKind::DeadSignal,
                line: 0,
                message: format!("signal `{d}` is never used"),
            });
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn walk_items(
    items: &[Item],
    report: &mut LintReport,
    driven: &mut HashSet<String>,
    read: &mut HashSet<String>,
    declared: &mut HashSet<String>,
    rhs_exprs: &mut Vec<(String, u32)>,
) {
    for item in items {
        match item {
            Item::Net(d) => {
                for n in &d.names {
                    declared.insert(n.name.clone());
                    if n.init.is_some() {
                        driven.insert(n.name.clone());
                    }
                }
            }
            Item::Param(_) => {}
            Item::Assign(a) => {
                note_expr_reads(&a.rhs, read, report);
                for t in a.lhs.targets() {
                    driven.insert(t.to_owned());
                }
                rhs_exprs.push((crate::pretty::print_expr(&a.rhs), a.line));
            }
            Item::Always(a) => {
                let sequential = matches!(a.sensitivity, Sensitivity::Edges(_));
                if let Sensitivity::Signals(_) = a.sensitivity {
                    report.findings.push(Finding {
                        kind: LintKind::ExplicitSensitivityList,
                        line: a.line,
                        message: "explicit sensitivity list; prefer `@*`".into(),
                    });
                }
                if let Sensitivity::Edges(es) = &a.sensitivity {
                    for e in es {
                        read.insert(e.signal.clone());
                    }
                }
                walk_stmt(&a.body, sequential, 1, a.line, report, driven, read);
                if !sequential {
                    detect_latches(&a.body, a.line, report);
                }
            }
            Item::Initial(body) => {
                walk_stmt(body, false, 1, 0, report, driven, read);
            }
            Item::Instance(inst) => {
                for (_, e) in inst.ports.iter().filter_map(|(n, e)| e.as_ref().map(|e| (n, e))) {
                    note_expr_reads(e, read, report);
                    // An instance output drives whatever it connects to; we
                    // cannot tell direction without the definition, so count
                    // connected identifiers as both read and driven.
                    let mut ids = Vec::new();
                    e.collect_idents(&mut ids);
                    for id in ids {
                        driven.insert(id.to_owned());
                    }
                }
            }
            Item::Generate(inner) => {
                walk_items(inner, report, driven, read, declared, rhs_exprs);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn walk_stmt(
    stmt: &Stmt,
    sequential: bool,
    depth: u32,
    line: u32,
    report: &mut LintReport,
    driven: &mut HashSet<String>,
    read: &mut HashSet<String>,
) {
    if depth > 4 {
        report.findings.push(Finding {
            kind: LintKind::DeepNesting,
            line,
            message: format!("conditional nesting depth {depth} exceeds 4"),
        });
    }
    match stmt {
        Stmt::Blocking(lv, e) => {
            if sequential {
                report.findings.push(Finding {
                    kind: LintKind::BlockingInSequential,
                    line,
                    message: "blocking assignment in edge-sensitive always block".into(),
                });
            }
            note_expr_reads(e, read, report);
            for t in lv.targets() {
                driven.insert(t.to_owned());
            }
        }
        Stmt::NonBlocking(lv, e) => {
            if !sequential {
                report.findings.push(Finding {
                    kind: LintKind::NonBlockingInComb,
                    line,
                    message: "non-blocking assignment in combinational always block".into(),
                });
            }
            note_expr_reads(e, read, report);
            for t in lv.targets() {
                driven.insert(t.to_owned());
            }
        }
        Stmt::If { cond, then_branch, else_branch } => {
            note_expr_reads(cond, read, report);
            walk_stmt(then_branch, sequential, depth + 1, line, report, driven, read);
            if let Some(e) = else_branch {
                walk_stmt(e, sequential, depth + 1, line, report, driven, read);
            }
        }
        Stmt::Case { subject, arms, .. } => {
            note_expr_reads(subject, read, report);
            let has_default = arms.iter().any(|a| a.labels.is_empty());
            if !has_default {
                report.findings.push(Finding {
                    kind: LintKind::CaseWithoutDefault,
                    line,
                    message: "case statement has no default arm".into(),
                });
            }
            for arm in arms {
                for l in &arm.labels {
                    note_expr_reads(l, read, report);
                }
                walk_stmt(&arm.body, sequential, depth + 1, line, report, driven, read);
            }
        }
        Stmt::For { init, cond, step, body } => {
            // Loop headers are exempt from the magic-number scan: `i < 8`
            // is idiomatic, so only record the reads.
            let mut ids = Vec::new();
            cond.collect_idents(&mut ids);
            if let (Stmt::Blocking(lv, e) | Stmt::NonBlocking(lv, e), _) = (&**init, ()) {
                e.collect_idents(&mut ids);
                for t in lv.targets() {
                    driven.insert(t.to_owned());
                }
            }
            if let (Stmt::Blocking(lv, e) | Stmt::NonBlocking(lv, e), _) = (&**step, ()) {
                e.collect_idents(&mut ids);
                for t in lv.targets() {
                    driven.insert(t.to_owned());
                }
            }
            for id in ids {
                read.insert(id.to_owned());
            }
            walk_stmt(body, sequential, depth + 1, line, report, driven, read);
        }
        Stmt::Block(stmts) => {
            for s in stmts {
                walk_stmt(s, sequential, depth, line, report, driven, read);
            }
        }
        Stmt::SystemCall(_, args) => {
            for a in args {
                note_expr_reads(a, read, report);
            }
        }
        Stmt::Empty => {}
    }
}

fn note_expr_reads(e: &Expr, read: &mut HashSet<String>, report: &mut LintReport) {
    let mut ids = Vec::new();
    e.collect_idents(&mut ids);
    for id in ids {
        read.insert(id.to_owned());
    }
    scan_literals(e, report);
}

fn scan_literals(e: &Expr, report: &mut LintReport) {
    match e {
        Expr::Literal { width, value, has_unknown, .. } => {
            if *has_unknown {
                report.findings.push(Finding {
                    kind: LintKind::UnknownDigits,
                    line: 0,
                    message: "literal contains x/z digits".into(),
                });
            }
            if *width == 0 && *value > 1 {
                report.findings.push(Finding {
                    kind: LintKind::MagicNumber,
                    line: 0,
                    message: format!("unsized magic number {value}"),
                });
            }
        }
        Expr::Unary(_, a) => scan_literals(a, report),
        Expr::Binary(_, a, b) => {
            scan_literals(a, report);
            scan_literals(b, report);
        }
        Expr::Ternary(c, a, b) => {
            scan_literals(c, report);
            scan_literals(a, report);
            scan_literals(b, report);
        }
        Expr::Concat(es) => {
            for e in es {
                scan_literals(e, report);
            }
        }
        Expr::Repeat(_, e) => scan_literals(e, report),
        // Subscripts (`a[3]`, `a[7:4]`, `a[i*8 +: 8]`) use bare indices
        // idiomatically; they are exempt from the magic-number scan.
        Expr::Index(_, _) | Expr::RangeSelect(_, _, _) | Expr::IndexedSelect { .. } => {}
        Expr::Call(_, args) => {
            for a in args {
                scan_literals(a, report);
            }
        }
        Expr::Ident(_) | Expr::StringLit(_) => {}
    }
}

/// Latch-smell detection: in a combinational block, a signal assigned in an
/// `if` without `else` (or in some case arms but not all and no default) and
/// never assigned unconditionally before, may infer a latch.
fn detect_latches(body: &Stmt, line: u32, report: &mut LintReport) {
    let mut unconditional: HashSet<String> = HashSet::new();
    let mut conditional: HashSet<String> = HashSet::new();
    collect_assignment_coverage(body, true, &mut unconditional, &mut conditional);
    for sig in conditional.difference(&unconditional) {
        report.findings.push(Finding {
            kind: LintKind::PossibleLatch,
            line,
            message: format!("`{sig}` is only assigned on some paths; latch may be inferred"),
        });
    }
}

/// Walks statements tracking which signals are assigned on *every* path
/// (`unconditional`) vs only some (`conditional`).
fn collect_assignment_coverage(
    stmt: &Stmt,
    all_paths: bool,
    unconditional: &mut HashSet<String>,
    conditional: &mut HashSet<String>,
) {
    match stmt {
        Stmt::Blocking(lv, _) | Stmt::NonBlocking(lv, _) => {
            for t in lv.targets() {
                if all_paths {
                    unconditional.insert(t.to_owned());
                } else {
                    conditional.insert(t.to_owned());
                }
            }
        }
        Stmt::If { then_branch, else_branch, .. } => {
            match else_branch {
                Some(e) => {
                    // assigned on both → unconditional if assigned in both branches
                    let mut ut = HashSet::new();
                    let mut ct = HashSet::new();
                    collect_assignment_coverage(then_branch, true, &mut ut, &mut ct);
                    let mut ue = HashSet::new();
                    let mut ce = HashSet::new();
                    collect_assignment_coverage(e, true, &mut ue, &mut ce);
                    for s in ut.intersection(&ue) {
                        if all_paths {
                            unconditional.insert(s.clone());
                        } else {
                            conditional.insert(s.clone());
                        }
                    }
                    for s in ut.symmetric_difference(&ue).chain(ct.iter()).chain(ce.iter()) {
                        conditional.insert(s.clone());
                    }
                }
                None => {
                    collect_assignment_coverage(then_branch, false, unconditional, conditional);
                }
            }
        }
        Stmt::Case { arms, .. } => {
            let has_default = arms.iter().any(|a| a.labels.is_empty());
            if has_default && !arms.is_empty() {
                // intersection over all arms counts as unconditional
                let mut sets: Vec<HashSet<String>> = Vec::new();
                for arm in arms {
                    let mut u = HashSet::new();
                    let mut c = HashSet::new();
                    collect_assignment_coverage(&arm.body, true, &mut u, &mut c);
                    for s in c {
                        conditional.insert(s);
                    }
                    sets.push(u);
                }
                if let Some(first) = sets.first() {
                    let common: HashSet<String> = sets[1..]
                        .iter()
                        .fold(first.clone(), |acc, s| acc.intersection(s).cloned().collect());
                    for s in common.iter() {
                        if all_paths {
                            unconditional.insert(s.clone());
                        } else {
                            conditional.insert(s.clone());
                        }
                    }
                    for set in &sets {
                        for s in set.difference(&common) {
                            conditional.insert(s.clone());
                        }
                    }
                }
            } else {
                for arm in arms {
                    collect_assignment_coverage(&arm.body, false, unconditional, conditional);
                }
            }
        }
        Stmt::Block(stmts) => {
            for s in stmts {
                collect_assignment_coverage(s, all_paths, unconditional, conditional);
            }
        }
        Stmt::For { body, .. } => {
            collect_assignment_coverage(body, false, unconditional, conditional);
        }
        Stmt::SystemCall(_, _) | Stmt::Empty => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_module;

    fn lint(src: &str) -> LintReport {
        let m = parse_module(src).expect("parse");
        lint_module(&m, src)
    }

    #[test]
    fn clean_code_has_low_penalty() {
        let r = lint(
            "// A half adder.\nmodule half_adder(input a, input b, output sum, output cout);\n\
             assign sum = a ^ b;\n  assign cout = a & b;\nendmodule\n",
        );
        assert!(r.penalty() < 1.0, "{:?}", r.findings);
    }

    #[test]
    fn detects_blocking_in_sequential() {
        let r = lint(
            "module m(input clk, input d, output reg q);\n\
             always @(posedge clk) q = d;\nendmodule",
        );
        assert_eq!(r.count(LintKind::BlockingInSequential), 1);
    }

    #[test]
    fn detects_nonblocking_in_comb() {
        let r = lint("module m(input a, output reg y);\nalways @* y <= a;\nendmodule");
        assert_eq!(r.count(LintKind::NonBlockingInComb), 1);
    }

    #[test]
    fn detects_case_without_default() {
        let r = lint(
            "module m(input [1:0] s, output reg y);\n\
             always @* case (s) 2'd0: y = 1'b0; 2'd1: y = 1'b1; 2'd2: y = 1'b0; 2'd3: y = 1'b1; endcase\nendmodule",
        );
        assert_eq!(r.count(LintKind::CaseWithoutDefault), 1);
    }

    #[test]
    fn detects_possible_latch() {
        let r = lint(
            "module m(input en, input d, output reg q);\n\
             always @* if (en) q = d;\nendmodule",
        );
        assert_eq!(r.count(LintKind::PossibleLatch), 1);
    }

    #[test]
    fn no_latch_when_fully_assigned() {
        let r = lint(
            "module m(input en, input d, output reg q);\n\
             always @* begin q = 1'b0; if (en) q = d; end\nendmodule",
        );
        assert_eq!(r.count(LintKind::PossibleLatch), 0);
    }

    #[test]
    fn no_latch_with_else() {
        let r = lint(
            "module m(input en, input d, output reg q);\n\
             always @* if (en) q = d; else q = 1'b0;\nendmodule",
        );
        assert_eq!(r.count(LintKind::PossibleLatch), 0);
    }

    #[test]
    fn detects_undriven_output() {
        let r = lint("module m(input a, output y, output z);\nassign y = a;\nendmodule");
        assert_eq!(r.count(LintKind::UndrivenOutput), 1);
    }

    #[test]
    fn detects_dead_signal() {
        let r = lint("module m(input a, output y);\nwire unused_net;\nassign y = a;\nendmodule");
        assert_eq!(r.count(LintKind::DeadSignal), 1);
    }

    #[test]
    fn detects_explicit_sensitivity_list() {
        let r = lint(
            "module m(input a, input b, output reg y);\nalways @(a or b) y = a & b;\nendmodule",
        );
        assert_eq!(r.count(LintKind::ExplicitSensitivityList), 1);
    }

    #[test]
    fn detects_long_line_and_trailing_ws() {
        let long = format!(
            "module m(input a, output y);\nassign y = a; // {}\nassign y = a; \nendmodule",
            "x".repeat(100)
        );
        // note: second assign to same wire is fine for lint (check.rs would object
        // to double-drive only in stricter modes); lint only looks at style.
        let m = parse_module(&long).unwrap();
        let r = lint_module(&m, &long);
        assert_eq!(r.count(LintKind::LongLine), 1);
        assert_eq!(r.count(LintKind::TrailingWhitespace), 1);
    }

    #[test]
    fn detects_magic_number() {
        let r = lint("module m(input [7:0] a, output [7:0] y);\nassign y = a + 37;\nendmodule");
        assert_eq!(r.count(LintKind::MagicNumber), 1);
    }

    #[test]
    fn no_magic_number_for_sized_literals() {
        let r = lint("module m(input [7:0] a, output [7:0] y);\nassign y = a + 8'd37;\nendmodule");
        assert_eq!(r.count(LintKind::MagicNumber), 0);
    }

    #[test]
    fn detects_bad_module_name() {
        let r = lint("module MyModule(input a, output y);\nassign y = a;\nendmodule");
        assert_eq!(r.count(LintKind::BadModuleName), 1);
    }

    #[test]
    fn detects_duplicated_logic() {
        let r = lint(
            "module m(input [7:0] a, b, output [7:0] x, output [7:0] y);\n\
             assign x = (a + b) ^ (a - b);\nassign y = (a + b) ^ (a - b);\nendmodule",
        );
        assert_eq!(r.count(LintKind::DuplicatedLogic), 1);
    }

    #[test]
    fn penalty_is_weight_sum() {
        let r = lint(
            "module m(input en, input d, output reg q);\n\
             always @* if (en) q = d;\nendmodule",
        );
        let manual: f64 = r.findings.iter().map(|f| f.kind.weight()).sum();
        assert!((r.penalty() - manual).abs() < 1e-12);
    }
}
