//! Canonical source regeneration from the AST.
//!
//! The corpus generators build [`crate::ast`] values and print them with
//! this module; the test suite checks `parse(pretty(m)) == m` on everything
//! the generators can emit, which pins down both the printer and the parser.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a one-line ANSI module header (the "interface line" VerilogEval
/// supplies in its prompts): `module counter(input clk, output reg [7:0] q);`.
pub fn interface_line(m: &Module) -> String {
    let mut s = format!("module {}(", m.name);
    for (i, p) in m.ports.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(match p.dir {
            PortDir::Input => "input",
            PortDir::Output => "output",
            PortDir::Inout => "inout",
        });
        if p.is_reg {
            s.push_str(" reg");
        }
        if let Some(r) = &p.range {
            let _ = write!(s, " [{}:{}]", print_expr(&r.msb), print_expr(&r.lsb));
        }
        s.push(' ');
        s.push_str(&p.name);
    }
    s.push_str(");");
    s
}

/// Pretty-prints a whole source file.
pub fn print_file(file: &SourceFile) -> String {
    let mut out = String::new();
    for (i, m) in file.modules.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_module(m));
    }
    out
}

/// Pretty-prints a single module with two-space indentation.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let m = pyranet_verilog::parse_module("module m(input a, output y); assign y = ~a; endmodule")?;
/// let src = pyranet_verilog::pretty::print_module(&m);
/// assert!(src.starts_with("module m"));
/// # Ok(())
/// # }
/// ```
pub fn print_module(m: &Module) -> String {
    let mut s = String::new();
    s.push_str("module ");
    s.push_str(&m.name);
    if !m.params.is_empty() {
        s.push_str(" #(\n");
        for (i, p) in m.params.iter().enumerate() {
            let _ = write!(s, "  parameter {} = {}", p.name, print_expr(&p.value));
            s.push_str(if i + 1 < m.params.len() { ",\n" } else { "\n" });
        }
        s.push(')');
    }
    if m.ports.is_empty() {
        s.push_str(";\n");
    } else {
        s.push_str(" (\n");
        for (i, p) in m.ports.iter().enumerate() {
            s.push_str("  ");
            s.push_str(match p.dir {
                PortDir::Input => "input",
                PortDir::Output => "output",
                PortDir::Inout => "inout",
            });
            if p.is_reg {
                s.push_str(" reg");
            }
            if p.signed {
                s.push_str(" signed");
            }
            if let Some(r) = &p.range {
                let _ = write!(s, " [{}:{}]", print_expr(&r.msb), print_expr(&r.lsb));
            }
            s.push(' ');
            s.push_str(&p.name);
            s.push_str(if i + 1 < m.ports.len() { ",\n" } else { "\n" });
        }
        s.push_str(");\n");
    }
    for item in &m.items {
        print_item(&mut s, item, 1);
    }
    s.push_str("endmodule\n");
    s
}

fn indent(s: &mut String, level: usize) {
    for _ in 0..level {
        s.push_str("  ");
    }
}

fn print_item(s: &mut String, item: &Item, level: usize) {
    match item {
        Item::Net(d) => {
            indent(s, level);
            s.push_str(match d.kind {
                NetKind::Wire => "wire",
                NetKind::Reg => "reg",
                NetKind::Integer => "integer",
                NetKind::Genvar => "genvar",
            });
            if d.signed {
                s.push_str(" signed");
            }
            if let Some(r) = &d.range {
                let _ = write!(s, " [{}:{}]", print_expr(&r.msb), print_expr(&r.lsb));
            }
            s.push(' ');
            for (i, n) in d.names.iter().enumerate() {
                s.push_str(&n.name);
                if let Some(u) = &n.unpacked {
                    let _ = write!(s, " [{}:{}]", print_expr(&u.msb), print_expr(&u.lsb));
                }
                if let Some(init) = &n.init {
                    let _ = write!(s, " = {}", print_expr(init));
                }
                if i + 1 < d.names.len() {
                    s.push_str(", ");
                }
            }
            s.push_str(";\n");
        }
        Item::Param(p) => {
            indent(s, level);
            let _ = writeln!(
                s,
                "{} {} = {};",
                if p.local { "localparam" } else { "parameter" },
                p.name,
                print_expr(&p.value)
            );
        }
        Item::Assign(a) => {
            indent(s, level);
            let _ = writeln!(s, "assign {} = {};", print_lvalue(&a.lhs), print_expr(&a.rhs));
        }
        Item::Always(a) => {
            indent(s, level);
            s.push_str("always @");
            match &a.sensitivity {
                Sensitivity::Star => s.push('*'),
                Sensitivity::Signals(sig) => {
                    let _ = write!(s, "({})", sig.join(" or "));
                }
                Sensitivity::Edges(es) => {
                    s.push('(');
                    for (i, e) in es.iter().enumerate() {
                        if i > 0 {
                            s.push_str(" or ");
                        }
                        let _ = write!(
                            s,
                            "{} {}",
                            if e.edge == Edge::Pos { "posedge" } else { "negedge" },
                            e.signal
                        );
                    }
                    s.push(')');
                }
            }
            s.push(' ');
            print_stmt(s, &a.body, level, true);
        }
        Item::Initial(body) => {
            indent(s, level);
            s.push_str("initial ");
            print_stmt(s, body, level, true);
        }
        Item::Instance(inst) => {
            indent(s, level);
            s.push_str(&inst.module);
            if !inst.params.is_empty() {
                s.push_str(" #(");
                for (i, (name, e)) in inst.params.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    match name {
                        Some(n) => {
                            let _ = write!(s, ".{n}({})", print_expr(e));
                        }
                        None => s.push_str(&print_expr(e)),
                    }
                }
                s.push(')');
            }
            s.push(' ');
            s.push_str(&inst.name);
            s.push('(');
            for (i, (name, e)) in inst.ports.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                match (name, e) {
                    (Some(n), Some(e)) => {
                        let _ = write!(s, ".{n}({})", print_expr(e));
                    }
                    (Some(n), None) => {
                        let _ = write!(s, ".{n}()");
                    }
                    (None, Some(e)) => s.push_str(&print_expr(e)),
                    (None, None) => {}
                }
            }
            s.push_str(");\n");
        }
        Item::Generate(items) => {
            indent(s, level);
            s.push_str("generate\n");
            for it in items {
                print_item(s, it, level + 1);
            }
            indent(s, level);
            s.push_str("endgenerate\n");
        }
    }
}

/// `inline_lead` means the caller already printed the leading indent (e.g.
/// after `always @* `).
fn print_stmt(s: &mut String, stmt: &Stmt, level: usize, inline_lead: bool) {
    if !inline_lead {
        indent(s, level);
    }
    match stmt {
        Stmt::Block(stmts) => {
            s.push_str("begin\n");
            for st in stmts {
                print_stmt(s, st, level + 1, false);
            }
            indent(s, level);
            s.push_str("end\n");
        }
        Stmt::Blocking(lv, e) => {
            let _ = writeln!(s, "{} = {};", print_lvalue(lv), print_expr(e));
        }
        Stmt::NonBlocking(lv, e) => {
            let _ = writeln!(s, "{} <= {};", print_lvalue(lv), print_expr(e));
        }
        Stmt::If { cond, then_branch, else_branch } => {
            let _ = write!(s, "if ({}) ", print_expr(cond));
            print_stmt(s, then_branch, level, true);
            if let Some(e) = else_branch {
                indent(s, level);
                s.push_str("else ");
                print_stmt(s, e, level, true);
            }
        }
        Stmt::Case { kind, subject, arms } => {
            let kw = match kind {
                CaseKind::Case => "case",
                CaseKind::Casez => "casez",
                CaseKind::Casex => "casex",
            };
            let _ = writeln!(s, "{kw} ({})", print_expr(subject));
            for arm in arms {
                indent(s, level + 1);
                if arm.labels.is_empty() {
                    s.push_str("default: ");
                } else {
                    let labels: Vec<String> = arm.labels.iter().map(print_expr).collect();
                    let _ = write!(s, "{}: ", labels.join(", "));
                }
                print_stmt(s, &arm.body, level + 1, true);
            }
            indent(s, level);
            s.push_str("endcase\n");
        }
        Stmt::For { init, cond, step, body } => {
            s.push_str("for (");
            print_assign_inline(s, init);
            let _ = write!(s, "; {}; ", print_expr(cond));
            print_assign_inline(s, step);
            s.push_str(") ");
            print_stmt(s, body, level, true);
        }
        Stmt::SystemCall(name, args) => {
            s.push_str(name);
            if !args.is_empty() {
                s.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&print_expr(a));
                }
                s.push(')');
            }
            s.push_str(";\n");
        }
        Stmt::Empty => s.push_str(";\n"),
    }
}

fn print_assign_inline(s: &mut String, stmt: &Stmt) {
    match stmt {
        Stmt::Blocking(lv, e) => {
            let _ = write!(s, "{} = {}", print_lvalue(lv), print_expr(e));
        }
        Stmt::NonBlocking(lv, e) => {
            let _ = write!(s, "{} <= {}", print_lvalue(lv), print_expr(e));
        }
        other => {
            // Only assignments are legal in for-headers; anything else is a
            // generator bug, render as empty to keep output parseable.
            debug_assert!(false, "non-assignment in for header: {other:?}");
        }
    }
}

/// Pretty-prints an lvalue.
pub fn print_lvalue(lv: &LValue) -> String {
    match lv {
        LValue::Ident(n) => n.clone(),
        LValue::Index(n, e) => format!("{n}[{}]", print_expr(e)),
        LValue::Range(n, a, b) => format!("{n}[{}:{}]", print_expr(a), print_expr(b)),
        LValue::Concat(parts) => {
            let inner: Vec<String> = parts.iter().map(print_lvalue).collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

fn precedence(e: &Expr) -> u8 {
    match e {
        Expr::Binary(op, _, _) => {
            use BinaryOp::*;
            match op {
                LogicalOr => 1,
                LogicalAnd => 2,
                BitOr => 3,
                BitXor | BitXnor => 4,
                BitAnd => 5,
                Eq | Ne | CaseEq | CaseNe => 6,
                Lt | Le | Gt | Ge => 7,
                Shl | Shr | AShl | AShr => 8,
                Add | Sub => 9,
                Mul | Div | Mod => 10,
                Pow => 11,
            }
        }
        Expr::Ternary(_, _, _) => 0,
        Expr::Unary(_, _) => 12,
        _ => 13,
    }
}

/// Pretty-prints an expression with minimal necessary parentheses.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Ident(n) => n.clone(),
        Expr::Literal { width, value, base, has_unknown: _ } => {
            if *width == 0 && *base == 10 {
                format!("{value}")
            } else {
                let marker = match base {
                    2 => 'b',
                    8 => 'o',
                    16 => 'h',
                    _ => 'd',
                };
                let digits = match base {
                    2 => format!("{value:b}"),
                    8 => format!("{value:o}"),
                    16 => format!("{value:x}"),
                    _ => format!("{value}"),
                };
                if *width == 0 {
                    format!("'{marker}{digits}")
                } else {
                    format!("{width}'{marker}{digits}")
                }
            }
        }
        Expr::StringLit(s) => format!("{s:?}"),
        Expr::Unary(op, inner) => {
            use UnaryOp::*;
            let sym = match op {
                Neg => "-",
                Plus => "+",
                LogicalNot => "!",
                BitNot => "~",
                RedAnd => "&",
                RedOr => "|",
                RedXor => "^",
                RedNand => "~&",
                RedNor => "~|",
                RedXnor => "~^",
            };
            let needs = precedence(inner) < 12;
            if needs {
                format!("{sym}({})", print_expr(inner))
            } else {
                format!("{sym}{}", print_expr(inner))
            }
        }
        Expr::Binary(op, a, b) => {
            use BinaryOp::*;
            let sym = match op {
                Add => "+",
                Sub => "-",
                Mul => "*",
                Div => "/",
                Mod => "%",
                Pow => "**",
                BitAnd => "&",
                BitOr => "|",
                BitXor => "^",
                BitXnor => "~^",
                LogicalAnd => "&&",
                LogicalOr => "||",
                Eq => "==",
                Ne => "!=",
                CaseEq => "===",
                CaseNe => "!==",
                Lt => "<",
                Le => "<=",
                Gt => ">",
                Ge => ">=",
                Shl => "<<",
                Shr => ">>",
                AShl => "<<<",
                AShr => ">>>",
            };
            let prec = precedence(e);
            let left =
                if precedence(a) < prec { format!("({})", print_expr(a)) } else { print_expr(a) };
            // Right child needs parens when equal precedence (left-assoc).
            let right =
                if precedence(b) <= prec { format!("({})", print_expr(b)) } else { print_expr(b) };
            format!("{left} {sym} {right}")
        }
        Expr::Ternary(c, a, b) => {
            let cond =
                if precedence(c) == 0 { format!("({})", print_expr(c)) } else { print_expr(c) };
            format!("{cond} ? {} : {}", print_expr(a), print_expr(b))
        }
        Expr::Concat(parts) => {
            let inner: Vec<String> = parts.iter().map(print_expr).collect();
            format!("{{{}}}", inner.join(", "))
        }
        Expr::Repeat(n, inner) => {
            format!("{{{}{{{}}}}}", print_expr(n), print_expr(inner))
        }
        Expr::Index(n, i) => format!("{n}[{}]", print_expr(i)),
        Expr::RangeSelect(n, a, b) => {
            format!("{n}[{}:{}]", print_expr(a), print_expr(b))
        }
        Expr::IndexedSelect { name, base, width, ascending } => {
            format!(
                "{name}[{} {}: {}]",
                print_expr(base),
                if *ascending { "+" } else { "-" },
                print_expr(width)
            )
        }
        Expr::Call(f, args) => {
            let inner: Vec<String> = args.iter().map(print_expr).collect();
            format!("{f}({})", inner.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn round_trip(src: &str) {
        let mut f1 = parse(src).expect("first parse");
        let printed = print_file(&f1);
        let mut f2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        f1.strip_lines();
        f2.strip_lines();
        assert_eq!(f1, f2, "round trip mismatch:\n{printed}");
    }

    #[test]
    fn round_trips_half_adder() {
        round_trip(
            "module half_adder(input a, input b, output s, output c);\n\
             assign s = a ^ b; assign c = a & b; endmodule",
        );
    }

    #[test]
    fn round_trips_counter() {
        round_trip(
            "module counter #(parameter W = 4)(input clk, input rst, output reg [W-1:0] q);\n\
             always @(posedge clk) begin if (rst) q <= 0; else q <= q + 1'b1; end endmodule",
        );
    }

    #[test]
    fn round_trips_case() {
        round_trip(
            "module dec(input [1:0] s, output reg [3:0] y);\n\
             always @* case (s) 2'd0: y = 4'b0001; 2'd1: y = 4'b0010; \
             2'd2: y = 4'b0100; default: y = 4'b1000; endcase endmodule",
        );
    }

    #[test]
    fn round_trips_instance() {
        round_trip(
            "module top(input a, output y); inv u0(.in(a), .out(y)); endmodule\n\
             module inv(input in, output out); assign out = ~in; endmodule",
        );
    }

    #[test]
    fn round_trips_for_loop() {
        round_trip(
            "module rev(input [7:0] a, output reg [7:0] y); integer i;\n\
             always @* for (i = 0; i < 8; i = i + 1) y[i] = a[7 - i]; endmodule",
        );
    }

    #[test]
    fn parens_preserved_for_precedence() {
        // (a + b) * c must not print as a + b * c
        let src =
            "module m(input [7:0] a, b, c, output [7:0] y); assign y = (a + b) * c; endmodule";
        round_trip(src);
        let f = parse(src).unwrap();
        let printed = print_file(&f);
        assert!(printed.contains("(a + b) * c"), "{printed}");
    }

    #[test]
    fn sub_right_assoc_parens() {
        // a - (b - c) must keep the parens
        let src =
            "module m(input [7:0] a, b, c, output [7:0] y); assign y = a - (b - c); endmodule";
        round_trip(src);
    }

    #[test]
    fn literal_forms() {
        assert_eq!(print_expr(&Expr::number(42)), "42");
        assert_eq!(print_expr(&Expr::sized(4, 10, 2)), "4'b1010");
        assert_eq!(print_expr(&Expr::sized(8, 255, 16)), "8'hff");
        assert_eq!(print_expr(&Expr::sized(3, 5, 10)), "3'd5");
    }

    #[test]
    fn round_trips_concat_and_repeat() {
        round_trip(
            "module m(input [3:0] a, output [15:0] y, output [7:0] z);\n\
             assign y = {4{a}}; assign z = {a, a[3:0]}; endmodule",
        );
    }
}
