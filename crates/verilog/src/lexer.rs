//! Hand-written lexer for the Verilog-2001 subset.
//!
//! The lexer is also the first line of defence in the curation pipeline:
//! encoding problems, unterminated comments/strings and malformed literals
//! all surface here as [`LexError`], which the pipeline maps to the paper's
//! "broken file" rejection class.

use crate::token::{Keyword, Token, TokenKind};
use std::error::Error;
use std::fmt;

/// An error produced while lexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line number where the error occurred.
    pub line: u32,
    /// Human-readable description, lowercase without trailing punctuation.
    pub message: String,
}

impl LexError {
    pub(crate) fn new(line: u32, message: impl Into<String>) -> Self {
        LexError { line, message: message.into() }
    }
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl Error for LexError {}

/// Streaming lexer over a source string.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use pyranet_verilog::Lexer;
/// let tokens = Lexer::new("assign y = a & b;").tokenize()?;
/// assert_eq!(tokens.len(), 7); // assign y = a & b ; (Eof excluded)
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Lexer<'src> {
    src: &'src [u8],
    pos: usize,
    line: u32,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'src str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: 1 }
    }

    /// Lexes the whole input, excluding the trailing [`TokenKind::Eof`].
    ///
    /// # Errors
    ///
    /// Returns [`LexError`] on unterminated comments/strings, malformed
    /// based literals, or bytes that cannot start any token.
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            if tok.kind == TokenKind::Eof {
                return Ok(out);
            }
            out.push(tok);
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn peek3(&self) -> Option<u8> {
        self.src.get(self.pos + 2).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(LexError::new(start, "unterminated block comment"));
                            }
                        }
                    }
                }
                // Compiler directives (`timescale, `define, …) are skipped to
                // the end of the line; the subset does not expand macros.
                Some(b'`') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia()?;
        let line = self.line;
        let Some(b) = self.peek() else {
            return Ok(Token::new(TokenKind::Eof, line));
        };
        let kind = match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'$' => self.lex_ident(),
            b'\\' => self.lex_escaped_ident()?,
            b'0'..=b'9' => self.lex_number(false)?,
            b'\'' => self.lex_number(true)?,
            b'"' => self.lex_string()?,
            _ => self.lex_symbol()?,
        };
        Ok(Token::new(kind, line))
    }

    fn lex_ident(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'$' {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        match Keyword::from_str(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_owned()),
        }
    }

    fn lex_escaped_ident(&mut self) -> Result<TokenKind, LexError> {
        let line = self.line;
        self.bump(); // backslash
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_whitespace() {
                break;
            }
            self.bump();
        }
        if self.pos == start {
            return Err(LexError::new(line, "empty escaped identifier"));
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| LexError::new(line, "escaped identifier is not valid utf-8"))?;
        Ok(TokenKind::Ident(format!("\\{text}")))
    }

    /// Lexes a numeric literal. `tick_first` is true when the literal starts
    /// with `'` (an unsized based literal like `'b1010`).
    fn lex_number(&mut self, tick_first: bool) -> Result<TokenKind, LexError> {
        let line = self.line;
        let mut width: u64 = 0;
        if !tick_first {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b.is_ascii_digit() || b == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
            let digits = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
            let clean: String = digits.chars().filter(|c| *c != '_').collect();
            width = clean.parse::<u64>().map_err(|_| {
                LexError::new(line, format!("integer literal `{digits}` overflows"))
            })?;
            if self.peek() != Some(b'\'') {
                return Ok(TokenKind::UnsizedNumber(width));
            }
        }
        // based literal: `'` [sS]? base digits
        self.bump(); // tick
        let mut signed_marker = false;
        if matches!(self.peek(), Some(b's') | Some(b'S')) {
            signed_marker = true;
            self.bump();
        }
        let _ = signed_marker; // kept for future signed-literal support
        let base = match self.peek() {
            Some(b'b') | Some(b'B') => 2u8,
            Some(b'o') | Some(b'O') => 8,
            Some(b'd') | Some(b'D') => 10,
            Some(b'h') | Some(b'H') => 16,
            other => {
                return Err(LexError::new(
                    line,
                    format!("expected base marker after `'`, found {other:?}"),
                ));
            }
        };
        self.bump();
        self.skip_trivia()?; // Verilog allows whitespace between base and digits
        let mut value: u64 = 0;
        let mut ndigits = 0usize;
        let mut has_unknown = false;
        while let Some(b) = self.peek() {
            let digit: Option<u64> = match (base, b) {
                (_, b'_') => {
                    self.bump();
                    continue;
                }
                (_, b'x') | (_, b'X') | (_, b'z') | (_, b'Z') | (_, b'?') => {
                    has_unknown = true;
                    Some(0)
                }
                (2, b'0'..=b'1') => Some((b - b'0') as u64),
                (8, b'0'..=b'7') => Some((b - b'0') as u64),
                (10, b'0'..=b'9') => Some((b - b'0') as u64),
                (16, b'0'..=b'9') => Some((b - b'0') as u64),
                (16, b'a'..=b'f') => Some((b - b'a' + 10) as u64),
                (16, b'A'..=b'F') => Some((b - b'A' + 10) as u64),
                _ => None,
            };
            match digit {
                Some(d) => {
                    value = value
                        .checked_mul(base as u64)
                        .and_then(|v| v.checked_add(d))
                        .unwrap_or(u64::MAX);
                    ndigits += 1;
                    self.bump();
                }
                None => break,
            }
        }
        if ndigits == 0 {
            return Err(LexError::new(line, "based literal has no digits"));
        }
        if width > u16::MAX as u64 {
            return Err(LexError::new(line, "literal width is unreasonably large"));
        }
        Ok(TokenKind::SizedNumber { width: width as u16, base, value, has_unknown })
    }

    fn lex_string(&mut self) -> Result<TokenKind, LexError> {
        let line = self.line;
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(TokenKind::StringLit(s)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(other) => s.push(other as char),
                    None => return Err(LexError::new(line, "unterminated string literal")),
                },
                Some(b'\n') | None => {
                    return Err(LexError::new(line, "unterminated string literal"));
                }
                Some(other) => s.push(other as char),
            }
        }
    }

    fn lex_symbol(&mut self) -> Result<TokenKind, LexError> {
        use TokenKind::*;
        let line = self.line;
        let b = self.bump().expect("caller checked peek");
        let kind = match b {
            b'(' => LParen,
            b')' => RParen,
            b'[' => LBracket,
            b']' => RBracket,
            b'{' => LBrace,
            b'}' => RBrace,
            b';' => Semi,
            b',' => Comma,
            b'.' => Dot,
            b'#' => Hash,
            b'@' => At,
            b'?' => Question,
            b':' => Colon,
            b'+' => {
                if self.peek() == Some(b':') {
                    self.bump();
                    PlusColon
                } else {
                    Plus
                }
            }
            b'-' => {
                if self.peek() == Some(b':') {
                    self.bump();
                    MinusColon
                } else {
                    Minus
                }
            }
            b'*' => {
                if self.peek() == Some(b'*') {
                    self.bump();
                    Power
                } else {
                    Star
                }
            }
            b'/' => Slash,
            b'%' => Percent,
            b'=' => match (self.peek(), self.peek2()) {
                (Some(b'='), Some(b'=')) => {
                    self.bump();
                    self.bump();
                    CaseEq
                }
                (Some(b'='), _) => {
                    self.bump();
                    EqEq
                }
                _ => Assign,
            },
            b'!' => match (self.peek(), self.peek2()) {
                (Some(b'='), Some(b'=')) => {
                    self.bump();
                    self.bump();
                    CaseNotEq
                }
                (Some(b'='), _) => {
                    self.bump();
                    NotEq
                }
                _ => Bang,
            },
            b'<' => match (self.peek(), self.peek2()) {
                (Some(b'<'), Some(b'<')) => {
                    self.bump();
                    self.bump();
                    AShl
                }
                (Some(b'<'), _) => {
                    self.bump();
                    Shl
                }
                (Some(b'='), _) => {
                    self.bump();
                    LtEq
                }
                _ => Lt,
            },
            b'>' => match (self.peek(), self.peek2()) {
                (Some(b'>'), Some(b'>')) => {
                    self.bump();
                    self.bump();
                    AShr
                }
                (Some(b'>'), _) => {
                    self.bump();
                    Shr
                }
                (Some(b'='), _) => {
                    self.bump();
                    GtEq
                }
                _ => Gt,
            },
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.bump();
                    AndAnd
                } else {
                    Amp
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    OrOr
                } else {
                    Pipe
                }
            }
            b'^' => {
                if self.peek() == Some(b'~') {
                    self.bump();
                    Xnor
                } else {
                    Caret
                }
            }
            b'~' => match self.peek() {
                Some(b'^') => {
                    self.bump();
                    Xnor
                }
                Some(b'&') => {
                    self.bump();
                    Nand
                }
                Some(b'|') => {
                    self.bump();
                    Nor
                }
                _ => Tilde,
            },
            other => {
                return Err(LexError::new(line, format!("unexpected byte 0x{other:02x} in input")));
            }
        };
        // silence unused warning for peek3 in case future lookahead shrinks
        let _ = self.peek3();
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src).tokenize().expect("lex").into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_assign() {
        assert_eq!(
            kinds("assign y = a ^ b;"),
            vec![
                Keyword(crate::token::Keyword::Assign),
                Ident("y".into()),
                Assign,
                Ident("a".into()),
                Caret,
                Ident("b".into()),
                Semi,
            ]
        );
    }

    #[test]
    fn lexes_sized_numbers() {
        assert_eq!(
            kinds("4'b1010 8'hFF 'd42 16'habcd"),
            vec![
                SizedNumber { width: 4, base: 2, value: 10, has_unknown: false },
                SizedNumber { width: 8, base: 16, value: 255, has_unknown: false },
                SizedNumber { width: 0, base: 10, value: 42, has_unknown: false },
                SizedNumber { width: 16, base: 16, value: 0xabcd, has_unknown: false },
            ]
        );
    }

    #[test]
    fn lexes_unknown_digits() {
        match &kinds("4'b10xz")[0] {
            SizedNumber { has_unknown, value, .. } => {
                assert!(has_unknown);
                assert_eq!(*value, 0b1000);
            }
            other => panic!("unexpected token {other:?}"),
        }
    }

    #[test]
    fn underscores_in_numbers() {
        assert_eq!(kinds("1_000"), vec![UnsizedNumber(1000)]);
        assert_eq!(
            kinds("8'b1010_1010"),
            vec![SizedNumber { width: 8, base: 2, value: 0b1010_1010, has_unknown: false }]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n b /* block \n multi */ c"),
            vec![Ident("a".into()), Ident("b".into()), Ident("c".into()),]
        );
    }

    #[test]
    fn directives_are_skipped() {
        assert_eq!(kinds("`timescale 1ns/1ps\nwire"), vec![Keyword(crate::token::Keyword::Wire)]);
    }

    #[test]
    fn unterminated_block_comment_errors() {
        let err = Lexer::new("/* oops").tokenize().unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::new("\"abc").tokenize().is_err());
        assert!(Lexer::new("\"abc\ndef\"").tokenize().is_err());
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            kinds("<= >= == != === !== << >> <<< >>> && || ** ~^ ~& ~| +: -:"),
            vec![
                LtEq, GtEq, EqEq, NotEq, CaseEq, CaseNotEq, Shl, Shr, AShl, AShr, AndAnd, OrOr,
                Power, Xnor, Nand, Nor, PlusColon, MinusColon
            ]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = Lexer::new("a\nb\n\nc").tokenize().unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn escaped_identifier() {
        assert_eq!(kinds("\\my+sig x"), vec![Ident("\\my+sig".into()), Ident("x".into())]);
    }

    #[test]
    fn based_literal_without_digits_errors() {
        assert!(Lexer::new("4'b;").tokenize().is_err());
    }

    #[test]
    fn system_identifiers() {
        assert_eq!(kinds("$display"), vec![Ident("$display".into())]);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(kinds("").is_empty());
        assert!(kinds("   \n\t ").is_empty());
    }
}
