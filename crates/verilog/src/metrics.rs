//! Structural complexity metrics.
//!
//! The paper labels every sample Basic / Intermediate / Advanced / Expert
//! "closely following the methodology presented in the MEV-LLM work"
//! (§III-A.4). MEV-LLM's tiers key off design complexity — size, state,
//! hierarchy, and control structure — which [`StructuralMetrics`] captures
//! and [`ComplexityTier::classify`] maps to the four tiers.

use crate::ast::*;
use serde::{Deserialize, Serialize};

/// Raw structural counts extracted from a module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StructuralMetrics {
    /// Number of ports.
    pub ports: u32,
    /// Total declared bit width across ports (unsized ports count as 1).
    pub port_bits: u32,
    /// Continuous assignments.
    pub assigns: u32,
    /// Combinational always blocks.
    pub comb_blocks: u32,
    /// Edge-sensitive always blocks.
    pub seq_blocks: u32,
    /// Module instantiations.
    pub instances: u32,
    /// `if` statements.
    pub ifs: u32,
    /// `case` statements.
    pub cases: u32,
    /// Total case arms.
    pub case_arms: u32,
    /// `for`/loop statements.
    pub loops: u32,
    /// Expression operator count (unary + binary + ternary).
    pub operators: u32,
    /// Maximum expression depth.
    pub max_expr_depth: u32,
    /// Maximum statement nesting depth.
    pub max_stmt_depth: u32,
    /// Declared internal nets/regs (not ports).
    pub internal_signals: u32,
    /// Parameters.
    pub parameters: u32,
    /// Memories (unpacked arrays).
    pub memories: u32,
}

impl StructuralMetrics {
    /// A single scalar complexity score combining the counts.
    ///
    /// The weights favour stateful and hierarchical structure over sheer
    /// expression volume, matching the intuition that an FSM is more
    /// complex than a wide adder.
    pub fn score(&self) -> f64 {
        f64::from(self.ports) * 0.5
            + f64::from(self.port_bits) * 0.05
            + f64::from(self.assigns) * 1.0
            + f64::from(self.comb_blocks) * 2.0
            + f64::from(self.seq_blocks) * 3.0
            + f64::from(self.instances) * 3.0
            + f64::from(self.ifs) * 1.0
            + f64::from(self.cases) * 2.0
            + f64::from(self.case_arms) * 0.5
            + f64::from(self.loops) * 2.5
            + f64::from(self.operators) * 0.25
            + f64::from(self.max_expr_depth) * 0.5
            + f64::from(self.max_stmt_depth) * 1.0
            + f64::from(self.internal_signals) * 0.75
            + f64::from(self.parameters) * 1.0
            + f64::from(self.memories) * 4.0
    }
}

/// The four MEV-LLM complexity tiers used to organise each PyraNet layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ComplexityTier {
    /// Purely combinational, tiny interface.
    Basic,
    /// Modest combinational/sequential designs.
    Intermediate,
    /// Multi-process or hierarchical designs.
    Advanced,
    /// Large stateful/hierarchical designs (FSMs with memories, …).
    Expert,
}

impl ComplexityTier {
    /// All tiers in curriculum order (the order fine-tuning visits them).
    pub const ALL: [ComplexityTier; 4] = [
        ComplexityTier::Basic,
        ComplexityTier::Intermediate,
        ComplexityTier::Advanced,
        ComplexityTier::Expert,
    ];

    /// Classifies a score produced by [`StructuralMetrics::score`].
    pub fn classify(score: f64) -> ComplexityTier {
        if score < 8.0 {
            ComplexityTier::Basic
        } else if score < 20.0 {
            ComplexityTier::Intermediate
        } else if score < 45.0 {
            ComplexityTier::Advanced
        } else {
            ComplexityTier::Expert
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ComplexityTier::Basic => "Basic",
            ComplexityTier::Intermediate => "Intermediate",
            ComplexityTier::Advanced => "Advanced",
            ComplexityTier::Expert => "Expert",
        }
    }
}

impl std::fmt::Display for ComplexityTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Computes structural metrics for a module.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use pyranet_verilog::metrics::{measure, ComplexityTier};
/// let m = pyranet_verilog::parse_module(
///     "module m(input a, input b, output y); assign y = a & b; endmodule")?;
/// let s = measure(&m);
/// assert_eq!(ComplexityTier::classify(s.score()), ComplexityTier::Basic);
/// # Ok(())
/// # }
/// ```
pub fn measure(m: &Module) -> StructuralMetrics {
    let mut s = StructuralMetrics {
        ports: m.ports.len() as u32,
        parameters: m.params.len() as u32,
        ..Default::default()
    };
    for p in &m.ports {
        s.port_bits += p.range.as_ref().map(|r| const_width(r).unwrap_or(8)).unwrap_or(1);
    }
    measure_items(&m.items, &mut s);
    s
}

/// Evaluates `[msb:lsb]` to a width when both bounds are integer literals.
fn const_width(r: &Range) -> Option<u32> {
    fn const_val(e: &Expr) -> Option<i64> {
        match e {
            Expr::Literal { value, .. } => Some(*value as i64),
            Expr::Binary(BinaryOp::Sub, a, b) => Some(const_val(a)? - const_val(b)?),
            Expr::Binary(BinaryOp::Add, a, b) => Some(const_val(a)? + const_val(b)?),
            _ => None,
        }
    }
    let msb = const_val(&r.msb)?;
    let lsb = const_val(&r.lsb)?;
    Some((msb - lsb).unsigned_abs() as u32 + 1)
}

fn measure_items(items: &[Item], s: &mut StructuralMetrics) {
    for item in items {
        match item {
            Item::Net(d) => {
                s.internal_signals += d.names.len() as u32;
                s.memories += d.names.iter().filter(|n| n.unpacked.is_some()).count() as u32;
            }
            Item::Param(_) => s.parameters += 1,
            Item::Assign(a) => {
                s.assigns += 1;
                measure_expr(&a.rhs, 1, s);
            }
            Item::Always(a) => {
                if matches!(a.sensitivity, Sensitivity::Edges(_)) {
                    s.seq_blocks += 1;
                } else {
                    s.comb_blocks += 1;
                }
                measure_stmt(&a.body, 1, s);
            }
            Item::Initial(b) => measure_stmt(b, 1, s),
            Item::Instance(inst) => {
                s.instances += 1;
                for (_, e) in &inst.ports {
                    if let Some(e) = e {
                        measure_expr(e, 1, s);
                    }
                }
            }
            Item::Generate(inner) => measure_items(inner, s),
        }
    }
}

fn measure_stmt(stmt: &Stmt, depth: u32, s: &mut StructuralMetrics) {
    s.max_stmt_depth = s.max_stmt_depth.max(depth);
    match stmt {
        Stmt::Blocking(_, e) | Stmt::NonBlocking(_, e) => measure_expr(e, 1, s),
        Stmt::If { cond, then_branch, else_branch } => {
            s.ifs += 1;
            measure_expr(cond, 1, s);
            measure_stmt(then_branch, depth + 1, s);
            if let Some(e) = else_branch {
                measure_stmt(e, depth + 1, s);
            }
        }
        Stmt::Case { subject, arms, .. } => {
            s.cases += 1;
            s.case_arms += arms.len() as u32;
            measure_expr(subject, 1, s);
            for arm in arms {
                measure_stmt(&arm.body, depth + 1, s);
            }
        }
        Stmt::For { cond, body, .. } => {
            s.loops += 1;
            measure_expr(cond, 1, s);
            measure_stmt(body, depth + 1, s);
        }
        Stmt::Block(stmts) => {
            for st in stmts {
                measure_stmt(st, depth, s);
            }
        }
        Stmt::SystemCall(_, _) | Stmt::Empty => {}
    }
}

fn measure_expr(e: &Expr, depth: u32, s: &mut StructuralMetrics) {
    s.max_expr_depth = s.max_expr_depth.max(depth);
    match e {
        Expr::Unary(_, a) => {
            s.operators += 1;
            measure_expr(a, depth + 1, s);
        }
        Expr::Binary(_, a, b) => {
            s.operators += 1;
            measure_expr(a, depth + 1, s);
            measure_expr(b, depth + 1, s);
        }
        Expr::Ternary(c, a, b) => {
            s.operators += 1;
            measure_expr(c, depth + 1, s);
            measure_expr(a, depth + 1, s);
            measure_expr(b, depth + 1, s);
        }
        Expr::Concat(es) => {
            for x in es {
                measure_expr(x, depth + 1, s);
            }
        }
        Expr::Repeat(_, x) => measure_expr(x, depth + 1, s),
        Expr::Index(_, i) => measure_expr(i, depth + 1, s),
        Expr::RangeSelect(_, a, b) => {
            measure_expr(a, depth + 1, s);
            measure_expr(b, depth + 1, s);
        }
        Expr::IndexedSelect { base, width, .. } => {
            measure_expr(base, depth + 1, s);
            measure_expr(width, depth + 1, s);
        }
        Expr::Call(_, args) => {
            for a in args {
                measure_expr(a, depth + 1, s);
            }
        }
        Expr::Ident(_) | Expr::Literal { .. } | Expr::StringLit(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_module;

    fn score(src: &str) -> f64 {
        measure(&parse_module(src).unwrap()).score()
    }

    #[test]
    fn half_adder_is_basic() {
        let s = score("module ha(input a, input b, output s, output c); assign s = a ^ b; assign c = a & b; endmodule");
        assert_eq!(ComplexityTier::classify(s), ComplexityTier::Basic);
    }

    #[test]
    fn counter_is_intermediate() {
        let s = score(
            "module counter(input clk, input rst, input en, output reg [7:0] q);\n\
             always @(posedge clk) begin\n\
               if (rst) q <= 8'd0; else if (en) q <= q + 8'd1;\n\
             end endmodule",
        );
        assert_eq!(ComplexityTier::classify(s), ComplexityTier::Intermediate, "score={s}");
    }

    #[test]
    fn fsm_is_advanced_or_expert() {
        let s = score(
            "module fsm(input clk, input rst, input x, output reg y, output reg [1:0] dbg);\n\
             reg [1:0] state, next;\n\
             always @(posedge clk) begin if (rst) state <= 2'd0; else state <= next; end\n\
             always @* begin\n\
               next = state; y = 1'b0; dbg = state;\n\
               case (state)\n\
                 2'd0: if (x) next = 2'd1;\n\
                 2'd1: begin next = 2'd2; y = 1'b1; end\n\
                 2'd2: if (!x) next = 2'd0; else next = 2'd3;\n\
                 default: next = 2'd0;\n\
               endcase\n\
             end endmodule",
        );
        let tier = ComplexityTier::classify(s);
        assert!(tier >= ComplexityTier::Advanced, "score={s}, tier={tier}");
    }

    #[test]
    fn memory_design_is_expert() {
        let s = score(
            "module regfile(input clk, input we, input [4:0] ra, wa, input [31:0] wd, output [31:0] rd);\n\
             reg [31:0] mem [0:31];\n\
             reg [31:0] rbuf;\n\
             always @(posedge clk) begin\n\
               if (we) mem[wa] <= wd;\n\
               rbuf <= mem[ra];\n\
             end\n\
             assign rd = rbuf;\n\
             endmodule",
        );
        assert!(s >= 20.0, "score={s}");
    }

    #[test]
    fn tiers_are_ordered() {
        assert!(ComplexityTier::Basic < ComplexityTier::Intermediate);
        assert!(ComplexityTier::Advanced < ComplexityTier::Expert);
        assert_eq!(ComplexityTier::ALL.len(), 4);
    }

    #[test]
    fn classify_boundaries() {
        assert_eq!(ComplexityTier::classify(0.0), ComplexityTier::Basic);
        assert_eq!(ComplexityTier::classify(8.0), ComplexityTier::Intermediate);
        assert_eq!(ComplexityTier::classify(20.0), ComplexityTier::Advanced);
        assert_eq!(ComplexityTier::classify(45.0), ComplexityTier::Expert);
        assert_eq!(ComplexityTier::classify(1e9), ComplexityTier::Expert);
    }

    #[test]
    fn score_monotone_in_blocks() {
        let simple = score("module m(input a, output y); assign y = a; endmodule");
        let bigger = score(
            "module m(input clk, input a, output reg y, output z);\n\
             wire t; assign t = ~a; assign z = t;\n\
             always @(posedge clk) y <= t; endmodule",
        );
        assert!(bigger > simple);
    }

    #[test]
    fn const_width_evaluation() {
        let m =
            parse_module("module m(input [7:0] a, output [15:0] y); assign y = {a, a}; endmodule")
                .unwrap();
        let s = measure(&m);
        assert_eq!(s.port_bits, 8 + 16);
    }
}
