//! Recursive-descent parser for the Verilog-2001 subset.
//!
//! Grammar coverage (see crate docs): module headers with ANSI and
//! non-ANSI port styles, parameters, net declarations, continuous assigns,
//! always/initial blocks, if/case/for statements, full expression precedence,
//! concatenation/replication, part selects, and module instantiation.

use crate::ast::*;
use crate::lexer::{LexError, Lexer};
use crate::token::{Keyword as Kw, Token, TokenKind as Tk};
use std::error::Error;
use std::fmt;

/// A parse (or lex) error with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number, 0 when unknown.
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

impl ParseError {
    /// Creates a new parse error.
    pub fn new(line: u32, message: impl Into<String>) -> Self {
        ParseError { line, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { line: e.line, message: e.message }
    }
}

/// Parses a complete source file.
///
/// # Errors
///
/// Returns [`ParseError`] on any lexical or syntactic violation. The error
/// carries the 1-based source line, which the curation pipeline records.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = pyranet_verilog::parse("module t(input a, output y); assign y = a; endmodule")?;
/// assert_eq!(f.modules[0].ports.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse(src: &str) -> Result<SourceFile, ParseError> {
    let tokens = Lexer::new(src).tokenize()?;
    Parser::new(tokens).source_file()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Tk {
        self.tokens.get(self.pos).map(|t| &t.kind).unwrap_or(&Tk::Eof)
    }

    fn line(&self) -> u32 {
        self.tokens.get(self.pos).or_else(|| self.tokens.last()).map(|t| t.line).unwrap_or(0)
    }

    fn bump(&mut self) -> Tk {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone()).unwrap_or(Tk::Eof);
        self.pos += 1;
        t
    }

    fn eat(&mut self, tk: &Tk) -> bool {
        if self.peek() == tk {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        self.eat(&Tk::Keyword(kw))
    }

    fn expect(&mut self, tk: Tk) -> PResult<()> {
        if self.peek() == &tk {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {tk}, found {}", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: Kw) -> PResult<()> {
        self.expect(Tk::Keyword(kw))
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.peek() {
            Tk::Ident(_) => match self.bump() {
                Tk::Ident(s) => Ok(s),
                _ => unreachable!(),
            },
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.line(), message)
    }

    fn source_file(mut self) -> PResult<SourceFile> {
        let mut modules = Vec::new();
        while self.peek() != &Tk::Eof {
            if self.peek() == &Tk::Keyword(Kw::Module) {
                modules.push(self.module()?);
            } else {
                return Err(
                    self.err(format!("expected `module` at top level, found {}", self.peek()))
                );
            }
        }
        Ok(SourceFile { modules })
    }

    fn module(&mut self) -> PResult<Module> {
        let line = self.line();
        self.expect_kw(Kw::Module)?;
        let name = self.expect_ident()?;
        let mut params = Vec::new();
        if self.eat(&Tk::Hash) {
            self.expect(Tk::LParen)?;
            loop {
                // `parameter` keyword is optional inside the header list after
                // the first entry.
                self.eat_kw(Kw::Parameter);
                // optional range on parameter, rarely used — skip if present
                if self.peek() == &Tk::LBracket {
                    let _ = self.range()?;
                }
                let pname = self.expect_ident()?;
                self.expect(Tk::Assign)?;
                let value = self.expr()?;
                params.push(Param { name: pname, value, local: false });
                if !self.eat(&Tk::Comma) {
                    break;
                }
            }
            self.expect(Tk::RParen)?;
        }
        let mut ports = Vec::new();
        let mut nonansi_names: Vec<String> = Vec::new();
        if self.eat(&Tk::LParen) {
            if self.peek() != &Tk::RParen {
                // Decide ANSI vs non-ANSI by the first token.
                match self.peek() {
                    Tk::Keyword(Kw::Input) | Tk::Keyword(Kw::Output) | Tk::Keyword(Kw::Inout) => {
                        self.ansi_port_list(&mut ports)?;
                    }
                    _ => loop {
                        nonansi_names.push(self.expect_ident()?);
                        if !self.eat(&Tk::Comma) {
                            break;
                        }
                    },
                }
            }
            self.expect(Tk::RParen)?;
        }
        self.expect(Tk::Semi)?;

        let mut items = Vec::new();
        loop {
            match self.peek() {
                Tk::Keyword(Kw::Endmodule) => {
                    self.bump();
                    break;
                }
                Tk::Eof => return Err(self.err("unexpected end of input inside module body")),
                Tk::Keyword(Kw::Input) | Tk::Keyword(Kw::Output) | Tk::Keyword(Kw::Inout) => {
                    // non-ANSI port direction declaration in the body
                    self.nonansi_port_decl(&mut ports, &nonansi_names)?;
                }
                _ => items.extend(self.item()?),
            }
        }
        // Order non-ANSI ports by the header list, not the body declarations.
        if !nonansi_names.is_empty() {
            let mut ordered = Vec::with_capacity(nonansi_names.len());
            for n in &nonansi_names {
                if let Some(p) = ports.iter().find(|p| &p.name == n) {
                    ordered.push(p.clone());
                }
                // A header name with no body direction declaration is a
                // semantic (check-stage) issue, not a parse error.
            }
            ports = ordered;
        }
        Ok(Module { name, params, ports, items, line })
    }

    fn ansi_port_list(&mut self, ports: &mut Vec<Port>) -> PResult<()> {
        let mut dir = PortDir::Input;
        let mut is_reg = false;
        let mut range: Option<Range> = None;
        let mut signed = false;
        loop {
            let mut explicit = false;
            match self.peek() {
                Tk::Keyword(Kw::Input) => {
                    self.bump();
                    dir = PortDir::Input;
                    explicit = true;
                }
                Tk::Keyword(Kw::Output) => {
                    self.bump();
                    dir = PortDir::Output;
                    explicit = true;
                }
                Tk::Keyword(Kw::Inout) => {
                    self.bump();
                    dir = PortDir::Inout;
                    explicit = true;
                }
                _ => {}
            }
            if explicit {
                is_reg = false;
                range = None;
                signed = false;
                if self.eat_kw(Kw::Reg) {
                    is_reg = true;
                } else {
                    self.eat_kw(Kw::Wire);
                }
                if self.eat_kw(Kw::Signed) {
                    signed = true;
                }
                if self.peek() == &Tk::LBracket {
                    range = Some(self.range()?);
                }
            }
            let name = self.expect_ident()?;
            ports.push(Port { name, dir, is_reg, range: range.clone(), signed });
            if !self.eat(&Tk::Comma) {
                return Ok(());
            }
        }
    }

    fn nonansi_port_decl(&mut self, ports: &mut Vec<Port>, header: &[String]) -> PResult<()> {
        let dir = match self.bump() {
            Tk::Keyword(Kw::Input) => PortDir::Input,
            Tk::Keyword(Kw::Output) => PortDir::Output,
            Tk::Keyword(Kw::Inout) => PortDir::Inout,
            _ => unreachable!("caller checked direction keyword"),
        };
        let is_reg = self.eat_kw(Kw::Reg);
        if !is_reg {
            self.eat_kw(Kw::Wire);
        }
        let signed = self.eat_kw(Kw::Signed);
        let range = if self.peek() == &Tk::LBracket { Some(self.range()?) } else { None };
        loop {
            let name = self.expect_ident()?;
            if !header.is_empty() && !header.contains(&name) {
                return Err(self.err(format!(
                    "port `{name}` declared in body but missing from module header"
                )));
            }
            ports.push(Port { name, dir, is_reg, range: range.clone(), signed });
            if !self.eat(&Tk::Comma) {
                break;
            }
        }
        self.expect(Tk::Semi)?;
        Ok(())
    }

    fn range(&mut self) -> PResult<Range> {
        self.expect(Tk::LBracket)?;
        let msb = self.expr()?;
        self.expect(Tk::Colon)?;
        let lsb = self.expr()?;
        self.expect(Tk::RBracket)?;
        Ok(Range { msb, lsb })
    }

    fn item(&mut self) -> PResult<Vec<Item>> {
        match self.peek().clone() {
            Tk::Keyword(Kw::Wire)
            | Tk::Keyword(Kw::Tri)
            | Tk::Keyword(Kw::Wand)
            | Tk::Keyword(Kw::Wor)
            | Tk::Keyword(Kw::Supply0)
            | Tk::Keyword(Kw::Supply1)
            | Tk::Keyword(Kw::Reg)
            | Tk::Keyword(Kw::Integer)
            | Tk::Keyword(Kw::Genvar) => self.net_decl().map(|d| vec![Item::Net(d)]),
            Tk::Keyword(Kw::Parameter) | Tk::Keyword(Kw::Localparam) => {
                let local = self.peek() == &Tk::Keyword(Kw::Localparam);
                self.bump();
                if self.peek() == &Tk::LBracket {
                    let _ = self.range()?;
                }
                let mut params = Vec::new();
                loop {
                    let name = self.expect_ident()?;
                    self.expect(Tk::Assign)?;
                    let value = self.expr()?;
                    params.push(Param { name, value, local });
                    if !self.eat(&Tk::Comma) {
                        break;
                    }
                }
                self.expect(Tk::Semi)?;
                Ok(params.into_iter().map(Item::Param).collect())
            }
            Tk::Keyword(Kw::Assign) => {
                let line = self.line();
                self.bump();
                // Optional drive strength / delay are not in the subset.
                let lhs = self.lvalue()?;
                self.expect(Tk::Assign)?;
                let rhs = self.expr()?;
                self.expect(Tk::Semi)?;
                Ok(vec![Item::Assign(ContinuousAssign { lhs, rhs, line })])
            }
            Tk::Keyword(Kw::Always) => {
                let line = self.line();
                self.bump();
                self.expect(Tk::At)?;
                let sensitivity = self.sensitivity()?;
                let body = self.stmt()?;
                Ok(vec![Item::Always(AlwaysBlock { sensitivity, body, line })])
            }
            Tk::Keyword(Kw::Initial) => {
                self.bump();
                let body = self.stmt()?;
                Ok(vec![Item::Initial(body)])
            }
            Tk::Keyword(Kw::Generate) => {
                self.bump();
                let mut items = Vec::new();
                while !self.eat_kw(Kw::Endgenerate) {
                    if self.peek() == &Tk::Eof {
                        return Err(self.err("unexpected end of input inside generate region"));
                    }
                    items.extend(self.item()?);
                }
                Ok(vec![Item::Generate(items)])
            }
            Tk::Ident(_) => self.instance().map(|i| vec![Item::Instance(i)]),
            other => Err(self.err(format!("unexpected {other} in module body"))),
        }
    }

    fn net_decl(&mut self) -> PResult<NetDecl> {
        let kind = match self.bump() {
            Tk::Keyword(Kw::Wire)
            | Tk::Keyword(Kw::Tri)
            | Tk::Keyword(Kw::Wand)
            | Tk::Keyword(Kw::Wor)
            | Tk::Keyword(Kw::Supply0)
            | Tk::Keyword(Kw::Supply1) => NetKind::Wire,
            Tk::Keyword(Kw::Reg) => NetKind::Reg,
            Tk::Keyword(Kw::Integer) => NetKind::Integer,
            Tk::Keyword(Kw::Genvar) => NetKind::Genvar,
            other => return Err(self.err(format!("expected net kind, found {other}"))),
        };
        let signed = self.eat_kw(Kw::Signed);
        let range = if self.peek() == &Tk::LBracket { Some(self.range()?) } else { None };
        let mut names = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let unpacked = if self.peek() == &Tk::LBracket { Some(self.range()?) } else { None };
            let init = if self.eat(&Tk::Assign) { Some(self.expr()?) } else { None };
            names.push(DeclName { name, unpacked, init });
            if !self.eat(&Tk::Comma) {
                break;
            }
        }
        self.expect(Tk::Semi)?;
        Ok(NetDecl { kind, range, signed, names })
    }

    fn sensitivity(&mut self) -> PResult<Sensitivity> {
        if self.eat(&Tk::Star) {
            return Ok(Sensitivity::Star);
        }
        self.expect(Tk::LParen)?;
        if self.eat(&Tk::Star) {
            self.expect(Tk::RParen)?;
            return Ok(Sensitivity::Star);
        }
        match self.peek() {
            Tk::Keyword(Kw::Posedge) | Tk::Keyword(Kw::Negedge) => {
                let mut edges = Vec::new();
                loop {
                    let edge = match self.bump() {
                        Tk::Keyword(Kw::Posedge) => Edge::Pos,
                        Tk::Keyword(Kw::Negedge) => Edge::Neg,
                        other => {
                            return Err(self.err(format!("expected edge keyword, found {other}")));
                        }
                    };
                    let signal = self.expect_ident()?;
                    edges.push(EdgeSpec { edge, signal });
                    if !(self.eat_kw(Kw::Or) || self.eat(&Tk::Comma)) {
                        break;
                    }
                }
                self.expect(Tk::RParen)?;
                Ok(Sensitivity::Edges(edges))
            }
            _ => {
                let mut sigs = Vec::new();
                loop {
                    sigs.push(self.expect_ident()?);
                    if !(self.eat_kw(Kw::Or) || self.eat(&Tk::Comma)) {
                        break;
                    }
                }
                self.expect(Tk::RParen)?;
                Ok(Sensitivity::Signals(sigs))
            }
        }
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        match self.peek().clone() {
            Tk::Keyword(Kw::Begin) => {
                self.bump();
                if self.eat(&Tk::Colon) {
                    let _label = self.expect_ident()?;
                }
                let mut stmts = Vec::new();
                while !self.eat_kw(Kw::End) {
                    if self.peek() == &Tk::Eof {
                        return Err(self.err("unexpected end of input inside begin/end block"));
                    }
                    stmts.push(self.stmt()?);
                }
                Ok(Stmt::Block(stmts))
            }
            Tk::Keyword(Kw::If) => {
                self.bump();
                self.expect(Tk::LParen)?;
                let cond = self.expr()?;
                self.expect(Tk::RParen)?;
                let then_branch = Box::new(self.stmt()?);
                let else_branch =
                    if self.eat_kw(Kw::Else) { Some(Box::new(self.stmt()?)) } else { None };
                Ok(Stmt::If { cond, then_branch, else_branch })
            }
            Tk::Keyword(Kw::Case) | Tk::Keyword(Kw::Casez) | Tk::Keyword(Kw::Casex) => {
                let kind = match self.bump() {
                    Tk::Keyword(Kw::Case) => CaseKind::Case,
                    Tk::Keyword(Kw::Casez) => CaseKind::Casez,
                    _ => CaseKind::Casex,
                };
                self.expect(Tk::LParen)?;
                let subject = self.expr()?;
                self.expect(Tk::RParen)?;
                let mut arms = Vec::new();
                while !self.eat_kw(Kw::Endcase) {
                    if self.peek() == &Tk::Eof {
                        return Err(self.err("unexpected end of input inside case statement"));
                    }
                    let labels = if self.eat_kw(Kw::Default) {
                        self.eat(&Tk::Colon);
                        Vec::new()
                    } else {
                        let mut labels = vec![self.expr()?];
                        while self.eat(&Tk::Comma) {
                            labels.push(self.expr()?);
                        }
                        self.expect(Tk::Colon)?;
                        labels
                    };
                    let body = self.stmt()?;
                    arms.push(CaseArm { labels, body });
                }
                Ok(Stmt::Case { kind, subject, arms })
            }
            Tk::Keyword(Kw::For) => {
                self.bump();
                self.expect(Tk::LParen)?;
                let init = Box::new(self.assign_stmt_no_semi()?);
                self.expect(Tk::Semi)?;
                let cond = self.expr()?;
                self.expect(Tk::Semi)?;
                let step = Box::new(self.assign_stmt_no_semi()?);
                self.expect(Tk::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::For { init, cond, step, body })
            }
            Tk::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tk::Ident(name) if name.starts_with('$') => {
                self.bump();
                let mut args = Vec::new();
                if self.eat(&Tk::LParen) {
                    if self.peek() != &Tk::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tk::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Tk::RParen)?;
                }
                self.expect(Tk::Semi)?;
                Ok(Stmt::SystemCall(name, args))
            }
            Tk::Hash => {
                // `#10 stmt` delays are parsed and ignored (testbench-ish code
                // shows up in scraped corpora).
                self.bump();
                let _ = self.expr()?;
                self.stmt()
            }
            _ => {
                let s = self.assign_stmt_no_semi()?;
                self.expect(Tk::Semi)?;
                Ok(s)
            }
        }
    }

    /// Parses `lhs = rhs` / `lhs <= rhs` without the trailing semicolon
    /// (shared by statement and for-loop header positions).
    fn assign_stmt_no_semi(&mut self) -> PResult<Stmt> {
        let lhs = self.lvalue()?;
        match self.bump() {
            Tk::Assign => Ok(Stmt::Blocking(lhs, self.expr()?)),
            Tk::LtEq => Ok(Stmt::NonBlocking(lhs, self.expr()?)),
            other => Err(self.err(format!("expected `=` or `<=`, found {other}"))),
        }
    }

    fn lvalue(&mut self) -> PResult<LValue> {
        if self.eat(&Tk::LBrace) {
            let mut parts = Vec::new();
            loop {
                parts.push(self.lvalue()?);
                if !self.eat(&Tk::Comma) {
                    break;
                }
            }
            self.expect(Tk::RBrace)?;
            return Ok(LValue::Concat(parts));
        }
        let name = self.expect_ident()?;
        if self.eat(&Tk::LBracket) {
            let first = self.expr()?;
            if self.eat(&Tk::Colon) {
                let lsb = self.expr()?;
                self.expect(Tk::RBracket)?;
                Ok(LValue::Range(name, first, lsb))
            } else {
                self.expect(Tk::RBracket)?;
                Ok(LValue::Index(name, first))
            }
        } else {
            Ok(LValue::Ident(name))
        }
    }

    fn instance(&mut self) -> PResult<Instance> {
        let line = self.line();
        let module = self.expect_ident()?;
        let mut params = Vec::new();
        if self.eat(&Tk::Hash) {
            self.expect(Tk::LParen)?;
            if self.peek() != &Tk::RParen {
                loop {
                    if self.eat(&Tk::Dot) {
                        let pname = self.expect_ident()?;
                        self.expect(Tk::LParen)?;
                        let value = self.expr()?;
                        self.expect(Tk::RParen)?;
                        params.push((Some(pname), value));
                    } else {
                        params.push((None, self.expr()?));
                    }
                    if !self.eat(&Tk::Comma) {
                        break;
                    }
                }
            }
            self.expect(Tk::RParen)?;
        }
        let name = self.expect_ident()?;
        self.expect(Tk::LParen)?;
        let mut ports = Vec::new();
        if self.peek() != &Tk::RParen {
            loop {
                if self.eat(&Tk::Dot) {
                    let pname = self.expect_ident()?;
                    self.expect(Tk::LParen)?;
                    let value = if self.peek() == &Tk::RParen { None } else { Some(self.expr()?) };
                    self.expect(Tk::RParen)?;
                    ports.push((Some(pname), value));
                } else {
                    ports.push((None, Some(self.expr()?)));
                }
                if !self.eat(&Tk::Comma) {
                    break;
                }
            }
        }
        self.expect(Tk::RParen)?;
        self.expect(Tk::Semi)?;
        Ok(Instance { module, name, params, ports, line })
    }

    // ---- expressions with precedence climbing ----

    fn expr(&mut self) -> PResult<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let cond = self.binary(0)?;
        if self.eat(&Tk::Question) {
            let a = self.expr()?;
            self.expect(Tk::Colon)?;
            let b = self.expr()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b)))
        } else {
            Ok(cond)
        }
    }

    /// Binary-operator precedence (low→high), Verilog-2001 table.
    fn bin_op(&self, min_prec: u8) -> Option<(BinaryOp, u8)> {
        use BinaryOp::*;
        let (op, prec) = match self.peek() {
            Tk::OrOr => (LogicalOr, 1),
            Tk::AndAnd => (LogicalAnd, 2),
            Tk::Pipe => (BitOr, 3),
            Tk::Caret => (BitXor, 4),
            Tk::Xnor => (BitXnor, 4),
            Tk::Amp => (BitAnd, 5),
            Tk::EqEq => (Eq, 6),
            Tk::NotEq => (Ne, 6),
            Tk::CaseEq => (CaseEq, 6),
            Tk::CaseNotEq => (CaseNe, 6),
            Tk::Lt => (Lt, 7),
            Tk::LtEq => (Le, 7),
            Tk::Gt => (Gt, 7),
            Tk::GtEq => (Ge, 7),
            Tk::Shl => (Shl, 8),
            Tk::Shr => (Shr, 8),
            Tk::AShl => (AShl, 8),
            Tk::AShr => (AShr, 8),
            Tk::Plus => (Add, 9),
            Tk::Minus => (Sub, 9),
            Tk::Star => (Mul, 10),
            Tk::Slash => (Div, 10),
            Tk::Percent => (Mod, 10),
            Tk::Power => (Pow, 11),
            _ => return None,
        };
        (prec >= min_prec).then_some((op, prec))
    }

    fn binary(&mut self, min_prec: u8) -> PResult<Expr> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = self.bin_op(min_prec) {
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> PResult<Expr> {
        use UnaryOp::*;
        let op = match self.peek() {
            Tk::Minus => Some(Neg),
            Tk::Plus => Some(Plus),
            Tk::Bang => Some(LogicalNot),
            Tk::Tilde => Some(BitNot),
            Tk::Amp => Some(RedAnd),
            Tk::Pipe => Some(RedOr),
            Tk::Caret => Some(RedXor),
            Tk::Nand => Some(RedNand),
            Tk::Nor => Some(RedNor),
            Tk::Xnor => Some(RedXnor),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            return Ok(Expr::Unary(op, Box::new(operand)));
        }
        self.primary()
    }

    fn primary(&mut self) -> PResult<Expr> {
        match self.peek().clone() {
            Tk::UnsizedNumber(v) => {
                self.bump();
                Ok(Expr::number(v))
            }
            Tk::SizedNumber { width, base, value, has_unknown } => {
                self.bump();
                Ok(Expr::Literal { width, value, base, has_unknown })
            }
            Tk::StringLit(s) => {
                self.bump();
                Ok(Expr::StringLit(s))
            }
            Tk::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tk::RParen)?;
                Ok(e)
            }
            Tk::LBrace => {
                self.bump();
                let first = self.expr()?;
                // replication {n{expr}}?
                if self.peek() == &Tk::LBrace {
                    self.bump();
                    let inner = self.expr()?;
                    self.expect(Tk::RBrace)?;
                    self.expect(Tk::RBrace)?;
                    return Ok(Expr::Repeat(Box::new(first), Box::new(inner)));
                }
                let mut parts = vec![first];
                while self.eat(&Tk::Comma) {
                    parts.push(self.expr()?);
                }
                self.expect(Tk::RBrace)?;
                Ok(Expr::Concat(parts))
            }
            Tk::Ident(name) => {
                self.bump();
                if self.eat(&Tk::LBracket) {
                    let first = self.expr()?;
                    match self.peek() {
                        Tk::Colon => {
                            self.bump();
                            let lsb = self.expr()?;
                            self.expect(Tk::RBracket)?;
                            Ok(Expr::RangeSelect(name, Box::new(first), Box::new(lsb)))
                        }
                        Tk::PlusColon | Tk::MinusColon => {
                            let ascending = self.bump() == Tk::PlusColon;
                            let width = self.expr()?;
                            self.expect(Tk::RBracket)?;
                            Ok(Expr::IndexedSelect {
                                name,
                                base: Box::new(first),
                                width: Box::new(width),
                                ascending,
                            })
                        }
                        _ => {
                            self.expect(Tk::RBracket)?;
                            Ok(Expr::Index(name, Box::new(first)))
                        }
                    }
                } else if self.peek() == &Tk::LParen && name.starts_with('$') {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Tk::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tk::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Tk::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_half_adder() {
        let src = "module half_adder(input a, input b, output sum, output cout);\n\
                   assign sum = a ^ b;\n  assign cout = a & b;\nendmodule";
        let f = parse(src).unwrap();
        let m = &f.modules[0];
        assert_eq!(m.name, "half_adder");
        assert_eq!(m.ports.len(), 4);
        assert_eq!(m.items.len(), 2);
    }

    #[test]
    fn parses_vector_ports() {
        let src = "module add8(input [7:0] a, b, input cin, output [7:0] s, output cout);\n\
                   assign {cout, s} = a + b + cin;\nendmodule";
        let f = parse(src).unwrap();
        let m = &f.modules[0];
        assert_eq!(m.ports.len(), 5);
        assert_eq!(m.ports[1].name, "b");
        assert!(m.ports[1].range.is_some(), "b inherits the [7:0] range");
        assert!(m.ports[2].range.is_none(), "cin resets the range");
    }

    #[test]
    fn parses_sequential_counter() {
        let src = "module counter #(parameter WIDTH = 8) (\n\
                     input clk, input rst, input en,\n\
                     output reg [WIDTH-1:0] count);\n\
                   always @(posedge clk or posedge rst) begin\n\
                     if (rst) count <= 0;\n\
                     else if (en) count <= count + 1'b1;\n\
                   end\nendmodule";
        let f = parse(src).unwrap();
        let m = &f.modules[0];
        assert_eq!(m.params.len(), 1);
        assert!(m.port("count").unwrap().is_reg);
        match &m.items[0] {
            Item::Always(a) => match &a.sensitivity {
                Sensitivity::Edges(es) => assert_eq!(es.len(), 2),
                other => panic!("expected edges, got {other:?}"),
            },
            other => panic!("expected always, got {other:?}"),
        }
    }

    #[test]
    fn parses_case_fsm() {
        let src = "module fsm(input clk, input rst, input x, output reg y);\n\
                   reg [1:0] state, next;\n\
                   localparam S0 = 2'd0;\n\
                   always @(posedge clk) state <= rst ? S0 : next;\n\
                   always @* begin\n\
                     next = state; y = 1'b0;\n\
                     case (state)\n\
                       S0: if (x) next = 2'd1;\n\
                       2'd1: begin next = 2'd2; y = 1'b1; end\n\
                       default: next = S0;\n\
                     endcase\n\
                   end\nendmodule";
        let f = parse(src).unwrap();
        let m = &f.modules[0];
        assert_eq!(m.items.len(), 4);
    }

    #[test]
    fn parses_instantiation() {
        let src = "module top(input [3:0] a, b, output [3:0] s, output c);\n\
                   wire [2:0] carry;\n\
                   full_adder fa0(.a(a[0]), .b(b[0]), .cin(1'b0), .s(s[0]), .cout(carry[0]));\n\
                   full_adder #(.W(1)) fa1(a[1], b[1], carry[0], s[1], carry[1]);\n\
                   endmodule";
        let f = parse(src).unwrap();
        let m = &f.modules[0];
        let inst_count = m.items.iter().filter(|i| matches!(i, Item::Instance(_))).count();
        assert_eq!(inst_count, 2);
    }

    #[test]
    fn parses_nonansi_ports() {
        let src = "module nona(a, b, y);\n  input a, b;\n  output y;\n\
                   assign y = a | b;\nendmodule";
        let f = parse(src).unwrap();
        let m = &f.modules[0];
        assert_eq!(m.ports.len(), 3);
        assert_eq!(m.ports[0].name, "a");
        assert_eq!(m.ports[2].dir, PortDir::Output);
    }

    #[test]
    fn parses_for_loop() {
        let src = "module rev(input [7:0] a, output reg [7:0] y);\n\
                   integer i;\n\
                   always @* begin\n\
                     for (i = 0; i < 8; i = i + 1) y[i] = a[7 - i];\n\
                   end\nendmodule";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn precedence_mul_over_add() {
        let f =
            parse("module m(input [7:0] a, b, c, output [7:0] y); assign y = a + b * c; endmodule")
                .unwrap();
        match &f.modules[0].items[0] {
            Item::Assign(a) => match &a.rhs {
                Expr::Binary(BinaryOp::Add, _, rhs) => {
                    assert!(matches!(**rhs, Expr::Binary(BinaryOp::Mul, _, _)));
                }
                other => panic!("expected Add at top, got {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn missing_semicolon_is_error() {
        let src = "module m(input a, output y); assign y = a endmodule";
        let err = parse(src).unwrap_err();
        assert!(err.line >= 1);
    }

    #[test]
    fn missing_endmodule_is_error() {
        assert!(parse("module m(input a, output y); assign y = a;").is_err());
    }

    #[test]
    fn garbage_is_error() {
        assert!(parse("this is not verilog at all").is_err());
        assert!(parse("module ;").is_err());
    }

    #[test]
    fn parses_concat_repeat() {
        let src = "module m(input [3:0] a, output [15:0] y); assign y = {4{a}}; endmodule";
        let f = parse(src).unwrap();
        match &f.modules[0].items[0] {
            Item::Assign(a) => assert!(matches!(a.rhs, Expr::Repeat(_, _))),
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_indexed_part_select() {
        let src = "module m(input [31:0] a, input [1:0] sel, output [7:0] y);\n\
                   assign y = a[sel*8 +: 8];\nendmodule";
        let f = parse(src).unwrap();
        match &f.modules[0].items[0] {
            Item::Assign(a) => {
                assert!(matches!(a.rhs, Expr::IndexedSelect { ascending: true, .. }));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_multiple_modules() {
        let src = "module a(input x, output y); assign y = x; endmodule\n\
                   module b(input x, output y); assign y = ~x; endmodule";
        let f = parse(src).unwrap();
        assert_eq!(f.modules.len(), 2);
        assert!(f.module("b").is_some());
    }

    #[test]
    fn parses_ternary_chain() {
        let src = "module m(input [1:0] s, input [3:0] d, output y);\n\
                   assign y = s == 2'd0 ? d[0] : s == 2'd1 ? d[1] : s == 2'd2 ? d[2] : d[3];\n\
                   endmodule";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn parses_signed_decl_and_reduction() {
        let src = "module m(input signed [7:0] a, output p, output z);\n\
                   assign p = ^a;\n  assign z = ~|a;\nendmodule";
        let f = parse(src).unwrap();
        assert!(f.modules[0].ports[0].signed);
    }

    #[test]
    fn parses_memory_decl() {
        let src = "module m(input clk, input [3:0] addr, input [7:0] din, input we, output reg [7:0] dout);\n\
                   reg [7:0] mem [0:15];\n\
                   always @(posedge clk) begin\n\
                     if (we) mem[addr] <= din;\n\
                     dout <= mem[addr];\n\
                   end\nendmodule";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn empty_port_list_ok() {
        assert!(parse("module t(); endmodule").is_ok());
        assert!(parse("module t; endmodule").is_ok());
    }

    #[test]
    fn initial_block_with_system_call() {
        let src = "module t; initial begin $display(\"hi\"); $finish; end endmodule";
        assert!(parse(src).is_ok());
    }
}
