//! Wire types for the serve daemon: one JSON object per line in, one per
//! line out.
//!
//! The vendored serde derive has no `#[serde(default)]`, so every field
//! is required on the wire — a request that omits `temperature` is a
//! malformed request, reported with its line number, not silently
//! defaulted.

use serde::{Deserialize, Serialize};

/// One generation request, as read from a `--requests` JSONL file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Caller-chosen identifier; also the RNG stream key, so two requests
    /// with the same id and prompt produce the same completion.
    pub id: String,
    /// Problem description fed through [`Tokenizer::encode_prompt`].
    pub prompt: String,
    /// Requested completion budget (clamped to the context window).
    pub max_new_tokens: usize,
    /// Sampling temperature (0 = greedy argmax).
    pub temperature: f32,
}

/// One finished generation, written as a JSONL row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeResponse {
    /// The request's id, echoed back.
    pub id: String,
    /// Decoded completion text (stops at `<eos>`).
    pub completion: String,
    /// Tokens actually decoded for this request.
    pub decode_tokens: u64,
    /// Prompt tokens dropped from the head to fit the context window.
    pub dropped_prompt_tokens: u64,
    /// Requested new-token slots lost to the context window.
    pub clamped_new_tokens: u64,
    /// `"eos"` if the model stopped itself, `"length"` if the budget ran
    /// out (including budget-zero requests finished at admission).
    pub finish_reason: String,
}

/// Parses a JSONL request file. Blank lines are skipped; a malformed
/// line aborts the whole parse with its 1-based line number, because a
/// replay driver that silently drops requests would make two runs
/// incomparable.
pub fn read_requests_jsonl(text: &str) -> Result<Vec<ServeRequest>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let req: ServeRequest =
            serde_json::from_str(line).map_err(|e| format!("request line {}: {e}", i + 1))?;
        out.push(req);
    }
    Ok(out)
}

/// Serializes responses as JSONL, one object per line, in the order
/// given (callers sort by id first when byte-stable output matters).
pub fn responses_to_jsonl(responses: &[ServeResponse]) -> String {
    let mut out = String::new();
    for r in responses {
        out.push_str(&serde_json::to_string(r).expect("response serializes"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_round_trips_and_reports_bad_lines() {
        let reqs = vec![
            ServeRequest {
                id: "a".into(),
                prompt: "2:1 mux".into(),
                max_new_tokens: 8,
                temperature: 0.7,
            },
            ServeRequest {
                id: "b".into(),
                prompt: "adder".into(),
                max_new_tokens: 0,
                temperature: 0.0,
            },
        ];
        let text =
            reqs.iter().map(|r| serde_json::to_string(r).unwrap() + "\n").collect::<String>();
        let parsed = read_requests_jsonl(&format!("\n{text}\n")).unwrap();
        assert_eq!(parsed, reqs);

        let err = read_requests_jsonl("{\"id\": \"a\"}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = read_requests_jsonl(&format!("{text}not json\n")).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
    }

    #[test]
    fn responses_serialize_one_per_line() {
        let rs = vec![ServeResponse {
            id: "x".into(),
            completion: "module m;".into(),
            decode_tokens: 3,
            dropped_prompt_tokens: 0,
            clamped_new_tokens: 1,
            finish_reason: "eos".into(),
        }];
        let text = responses_to_jsonl(&rs);
        assert_eq!(text.lines().count(), 1);
        let back: ServeResponse = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(back, rs[0]);
    }
}
