//! Prefix (radix) cache: prefilled KV snapshots shared across requests
//! whose *kept* prompt tokens are identical.
//!
//! The key is an FNV-1a hash of the kept token ids, but the stored
//! tokens are compared on every hit — a hash collision degrades to a
//! miss (the prefill reruns, uncached) rather than silently serving
//! another prompt's KV cache. Entries hold `Arc<PrefixState>` so a hit
//! is a pointer bump, not a KV copy; eviction is strict LRU on a
//! monotonic access tick, which keeps replay byte-deterministic.

use std::collections::HashMap;
use std::sync::Arc;

use pyranet_model::PrefixState;

/// What a cache lookup did, for the engine's metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served an existing entry.
    Hit,
    /// Prefilled and inserted (possibly evicting the LRU entry).
    Miss,
    /// Hash matched but tokens differed; prefilled without caching.
    Collision,
    /// Cache disabled (`capacity == 0`); prefilled without caching.
    Bypass,
}

/// Lifetime counters, exposed on [`ReplayOutcome`](crate::ReplayOutcome)
/// and mirrored into `serve.prefix_cache.*` metrics by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub collisions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

#[derive(Debug)]
struct Entry {
    /// The exact kept tokens, kept to verify hits against collisions.
    tokens: Vec<usize>,
    state: Arc<PrefixState>,
    last_used: u64,
}

/// LRU-bounded map from kept-prompt-token hash to a shared
/// [`PrefixState`].
#[derive(Debug)]
pub struct PrefixCache {
    capacity: usize,
    entries: HashMap<u64, Entry>,
    tick: u64,
    stats: CacheStats,
}

/// FNV-1a over the little-endian bytes of each token id.
pub fn token_hash(tokens: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &t in tokens {
        for b in (t as u64).to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

impl PrefixCache {
    /// A cache holding at most `capacity` prefilled prompts; 0 disables
    /// caching entirely (every lookup is a [`CacheOutcome::Bypass`]).
    pub fn new(capacity: usize) -> PrefixCache {
        PrefixCache { capacity, entries: HashMap::new(), tick: 0, stats: CacheStats::default() }
    }

    /// Returns the cached prefix for `tokens`, or runs `prefill` and
    /// (capacity permitting) caches the result.
    pub fn get_or_insert_with(
        &mut self,
        tokens: &[usize],
        prefill: impl FnOnce() -> PrefixState,
    ) -> (Arc<PrefixState>, CacheOutcome) {
        self.tick += 1;
        if self.capacity == 0 {
            return (Arc::new(prefill()), CacheOutcome::Bypass);
        }
        let key = token_hash(tokens);
        if let Some(e) = self.entries.get_mut(&key) {
            if e.tokens == tokens {
                e.last_used = self.tick;
                self.stats.hits += 1;
                return (e.state.clone(), CacheOutcome::Hit);
            }
            // Same 64-bit hash, different prompt: never share KV state.
            self.stats.collisions += 1;
            return (Arc::new(prefill()), CacheOutcome::Collision);
        }
        self.stats.misses += 1;
        let state = Arc::new(prefill());
        if self.entries.len() >= self.capacity {
            // Ticks are unique, so the LRU victim is unambiguous and
            // eviction order is deterministic across runs.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("non-empty cache at capacity");
            self.entries.remove(&victim);
            self.stats.evictions += 1;
        }
        self.entries.insert(
            key,
            Entry { tokens: tokens.to_vec(), state: state.clone(), last_used: self.tick },
        );
        self.stats.entries = self.entries.len();
        (state, CacheOutcome::Miss)
    }

    /// Lifetime hit/miss/eviction/collision counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyranet_model::{DecodeSession, ModelConfig, TransformerLm};

    fn tiny() -> TransformerLm {
        let cfg = ModelConfig {
            name: "cache-tiny".into(),
            d_model: 8,
            n_layers: 1,
            n_heads: 2,
            d_ff: 16,
            max_seq: 16,
            learning_rate: 1e-3,
            seed: 7,
        };
        TransformerLm::new(cfg, 16)
    }

    #[test]
    fn hits_share_state_and_lru_evicts_the_coldest() {
        let lm = tiny();
        let mut session = DecodeSession::new(&lm);
        let mut cache = PrefixCache::new(2);
        let mut fill = |toks: &[usize], cache: &mut PrefixCache| {
            let (state, outcome) = cache.get_or_insert_with(toks, || session.prefill(toks, 0));
            (state, outcome)
        };

        let (a1, o) = fill(&[5, 6], &mut cache);
        assert_eq!(o, CacheOutcome::Miss);
        let (a2, o) = fill(&[5, 6], &mut cache);
        assert_eq!(o, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&a1, &a2), "hit must share, not copy");

        let (_, o) = fill(&[7], &mut cache);
        assert_eq!(o, CacheOutcome::Miss);
        // Touch [5, 6] so [7] is now the LRU entry, then overflow.
        fill(&[5, 6], &mut cache);
        let (_, o) = fill(&[8, 9], &mut cache);
        assert_eq!(o, CacheOutcome::Miss);
        let (_, o) = fill(&[7], &mut cache);
        assert_eq!(o, CacheOutcome::Miss, "[7] was evicted as LRU");
        let (_, o) = fill(&[8, 9], &mut cache);
        assert_eq!(o, CacheOutcome::Hit, "[8, 9] survived");

        let s = cache.stats();
        assert_eq!((s.evictions >= 2, s.entries), (true, 2), "{s:?}");
    }

    #[test]
    fn zero_capacity_bypasses() {
        let lm = tiny();
        let mut session = DecodeSession::new(&lm);
        let mut cache = PrefixCache::new(0);
        for _ in 0..2 {
            let (_, o) = cache.get_or_insert_with(&[5], || session.prefill(&[5], 0));
            assert_eq!(o, CacheOutcome::Bypass);
        }
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
