//! pyranet-serve: a long-lived generation daemon over the decode engine.
//!
//! The PyraNet loop this reproduces is "many clients, one model":
//! requests arrive continuously, and throughput comes from keeping the
//! lock-step decode batch full — a retiring sequence's slot is refilled
//! from the admission queue on the very next step (continuous batching)
//! instead of waiting for the whole batch to drain. Three pieces:
//!
//! - [`ServeEngine`]: bounded admission queue → lock-step batch with
//!   join/leave slots ([`DecodeSession::step_seqs`]), per-request
//!   ChaCha8 RNG keyed by `(seed, request id)` so completions are
//!   byte-identical across arrival orders, batch widths, and thread
//!   counts.
//! - [`PrefixCache`]: prefilled KV snapshots shared (`Arc`, zero-copy)
//!   across requests with identical kept prompts, LRU-bounded, with
//!   token-equality verification against hash collisions.
//! - Backpressure: a full queue rejects the submit and hands the
//!   request back — explicit retry, never unbounded buffering.
//!
//! [`replay`] drives a whole request file offline (no network), which
//! is what `pyranet serve --requests FILE.jsonl` and `bench_serve` use.
//!
//! [`DecodeSession::step_seqs`]: pyranet_model::DecodeSession::step_seqs

mod cache;
mod engine;
mod request;

pub use cache::{token_hash, CacheOutcome, CacheStats, PrefixCache};
pub use engine::{ServeConfig, ServeEngine, TokenizedRequest};
pub use request::{read_requests_jsonl, responses_to_jsonl, ServeRequest, ServeResponse};

use pyranet_model::{Tokenizer, TransformerLm};

/// Everything one offline replay produced, plus the counters a bench or
/// smoke test wants to assert on.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// One response per request, in completion order (sort by `id` for
    /// byte-stable output).
    pub responses: Vec<ServeResponse>,
    /// Total decode tokens emitted.
    pub decode_tokens: u64,
    /// Submits that hit a full queue and were retried (backpressure
    /// events — expected whenever the request file outruns the queue).
    pub resubmissions: u64,
    /// Engine pump iterations (lock-step forward steps).
    pub steps: u64,
    /// Prefix-cache counters.
    pub cache: CacheStats,
}

/// Replays a request list through a fresh [`ServeEngine`] to
/// completion: tokenize everything up front (parallel, order-stable),
/// then feed the queue as fast as backpressure allows while pumping.
/// Deterministic for a given `(cfg.seed, requests)` regardless of
/// `cfg.max_batch`, `cfg.threads`, or the order of `requests`.
pub fn replay(
    lm: &TransformerLm,
    tk: &Tokenizer,
    cfg: ServeConfig,
    requests: &[ServeRequest],
) -> ReplayOutcome {
    let obs = pyranet_obs::global();
    let span = obs.span("serve.replay");
    let mut engine = ServeEngine::new(lm, tk, cfg);
    let mut backlog: std::collections::VecDeque<TokenizedRequest> =
        engine.tokenize_all(requests).into();
    let mut resubmissions = 0u64;
    let mut steps = 0u64;
    loop {
        while let Some(req) = backlog.pop_front() {
            if let Err(rejected) = engine.submit_tokenized(req) {
                // Queue full: put it back and let the batch make room.
                backlog.push_front(rejected);
                resubmissions += 1;
                break;
            }
        }
        let busy = engine.pump();
        steps += 1;
        if !busy && backlog.is_empty() {
            break;
        }
    }
    let decode_tokens = engine.tokens_emitted();
    obs.rate_gauge("serve.tokens_per_sec", decode_tokens as f64, span.stop().as_secs_f64());
    ReplayOutcome {
        responses: engine.take_responses(),
        decode_tokens,
        resubmissions,
        steps,
        cache: engine.cache_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyranet_model::ModelConfig;

    fn tiny() -> (TransformerLm, Tokenizer) {
        let tk = Tokenizer::build(
            [
                "module m ( input a , input b , output y ) ; assign y = a & b ; endmodule",
                "module c ( input clk , output reg q ) ; always @ ( posedge clk ) q <= ~ q ; endmodule",
            ]
            .iter()
            .copied(),
            1,
        );
        let cfg = ModelConfig {
            name: "serve-tiny".into(),
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            d_ff: 32,
            max_seq: 48,
            learning_rate: 1e-3,
            seed: 11,
        };
        let lm = TransformerLm::new(cfg, tk.vocab_size());
        (lm, tk)
    }

    fn requests() -> Vec<ServeRequest> {
        (0..10)
            .map(|i| ServeRequest {
                id: format!("req-{i}"),
                prompt: if i % 2 == 0 { "2:1 mux".into() } else { format!("adder {i}") },
                max_new_tokens: 6 + i % 5,
                temperature: 0.8,
            })
            .collect()
    }

    fn by_id(mut rs: Vec<ServeResponse>) -> Vec<ServeResponse> {
        rs.sort_by(|a, b| a.id.cmp(&b.id));
        rs
    }

    #[test]
    fn completions_are_invariant_under_batch_width_arrival_order_and_threads() {
        let (lm, tk) = tiny();
        let reqs = requests();
        let reference = by_id(
            replay(&lm, &tk, ServeConfig { max_batch: 1, threads: 1, ..Default::default() }, &reqs)
                .responses,
        );
        assert_eq!(reference.len(), reqs.len());

        let mut reversed = reqs.clone();
        reversed.reverse();
        for (max_batch, threads, order) in
            [(4, 1, &reqs), (8, 2, &reqs), (4, 8, &reversed), (8, 1, &reversed)]
        {
            let cfg = ServeConfig { max_batch, threads, ..Default::default() };
            let got = by_id(replay(&lm, &tk, cfg, order).responses);
            assert_eq!(got, reference, "max_batch={max_batch} threads={threads}");
        }
    }

    #[test]
    fn backpressure_rejects_and_replay_retries() {
        let (lm, tk) = tiny();
        let reqs = requests();
        let cfg = ServeConfig { max_batch: 2, queue_depth: 1, ..Default::default() };
        let out = replay(&lm, &tk, cfg, &reqs);
        assert_eq!(out.responses.len(), reqs.len(), "every rejected submit was retried");
        assert!(out.resubmissions > 0, "a depth-1 queue must push back on 10 requests");

        // And a raw engine hands the rejected request back unchanged.
        let cfg = ServeConfig { queue_depth: 1, ..Default::default() };
        let mut engine = ServeEngine::new(&lm, &tk, cfg);
        let toks = engine.tokenize_all(&reqs);
        let mut accepted = 0;
        let mut rejected = 0;
        for t in toks {
            match engine.submit_tokenized(t) {
                Ok(()) => accepted += 1,
                Err(_) => rejected += 1,
            }
        }
        assert_eq!((accepted, rejected), (1, 9));
    }

    #[test]
    fn prefix_cache_is_shared_and_transparent() {
        let (lm, tk) = tiny();
        let reqs = requests();
        let cached = replay(&lm, &tk, ServeConfig::default(), &reqs);
        // Five requests share the "2:1 mux" prompt: one miss, four hits.
        assert!(cached.cache.hits >= 4, "{:?}", cached.cache);
        let uncached =
            replay(&lm, &tk, ServeConfig { prefix_cache_entries: 0, ..Default::default() }, &reqs);
        assert_eq!(uncached.cache.hits, 0);
        assert_eq!(by_id(cached.responses), by_id(uncached.responses));
    }

    #[test]
    fn budget_zero_and_overlong_requests_finish_cleanly() {
        let (lm, tk) = tiny();
        let long_prompt = "mux ".repeat(100);
        let reqs = vec![
            ServeRequest {
                id: "zero".into(),
                prompt: "mux".into(),
                max_new_tokens: 0,
                temperature: 0.5,
            },
            ServeRequest {
                id: "long".into(),
                prompt: long_prompt,
                max_new_tokens: 8,
                temperature: 0.5,
            },
        ];
        let out = replay(&lm, &tk, ServeConfig::default(), &reqs);
        let rs = by_id(out.responses);
        assert_eq!(rs.len(), 2);
        let long = &rs[0];
        assert_eq!(long.id, "long");
        assert!(long.dropped_prompt_tokens > 0, "{long:?}");
        let zero = &rs[1];
        assert_eq!((zero.completion.as_str(), zero.decode_tokens), ("", 0));
        assert_eq!(zero.finish_reason, "length");
    }
}
