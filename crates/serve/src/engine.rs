//! The continuous-batching engine.
//!
//! A [`ServeEngine`] owns one [`DecodeSession`] and runs an arbitrary
//! request stream through it: a bounded admission queue feeds sequences
//! into the lock-step decode batch as running sequences retire on
//! `<eos>` or budget, so the batch stays full instead of draining to the
//! slowest straggler. Because the decode kernels accumulate each output
//! element in a fixed order and rows are independent, a sequence's
//! tokens do not depend on which other sequences share its batch — and
//! each request's sampler is a `ChaCha8Rng` keyed by `(seed, request
//! id)`, so completions are byte-identical regardless of arrival order,
//! batch size, or tokenizer thread count.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use pyranet_exec::{par_map_ref, stream_seed_str, ExecConfig};
use pyranet_model::decode::SeqState;
use pyranet_model::tokenizer::EOS;
use pyranet_model::{
    DecodeSession, KernelMode, PrefixState, PromptPlan, SampleOptions, TokenSampler, Tokenizer,
    TransformerLm,
};
use pyranet_obs::{DEPTH_BUCKETS, DURATION_BUCKETS};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::cache::{CacheOutcome, CacheStats, PrefixCache};
use crate::request::{ServeRequest, ServeResponse};

/// Engine knobs. `max_batch` and `queue_depth` are clamped to at least 1
/// at construction (a zero-depth queue would reject every request and a
/// zero-width batch would never decode — both are configuration errors,
/// not useful modes).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Lock-step batch width: how many sequences decode concurrently.
    pub max_batch: usize,
    /// Admission queue bound; a submit beyond this is rejected
    /// (backpressure), never buffered unboundedly.
    pub queue_depth: usize,
    /// Prefix-cache capacity in prompts (0 disables the cache).
    pub prefix_cache_entries: usize,
    /// Master seed; each request samples from
    /// `stream_seed_str(seed, request.id)`.
    pub seed: u64,
    /// Kernel family for the decode session.
    pub kernel: KernelMode,
    /// Worker threads for request tokenization.
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_batch: 8,
            queue_depth: 64,
            prefix_cache_entries: 32,
            seed: 0x5E21,
            kernel: KernelMode::default(),
            threads: 1,
        }
    }
}

/// A request after tokenization, ready for admission. Produced by
/// [`ServeEngine::tokenize_all`] (or internally by
/// [`ServeEngine::submit`]); opaque so the prompt ids and the id that
/// keys the RNG stream cannot drift apart.
#[derive(Debug, Clone)]
pub struct TokenizedRequest {
    id: String,
    ids: Vec<usize>,
    max_new: usize,
    temperature: f32,
}

/// How a finished sequence stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Finish {
    Running,
    Eos,
    Length,
}

/// A queued request plus its enqueue time (for queue-wait latency).
#[derive(Debug)]
struct Queued {
    req: TokenizedRequest,
    enqueued: Instant,
}

/// One active sequence in the lock-step batch.
struct Slot {
    id: String,
    seq: SeqState,
    prefix: Arc<PrefixState>,
    rng: ChaCha8Rng,
    opts: SampleOptions,
    /// Tokens this sequence may still emit (from its [`PromptPlan`]).
    budget: usize,
    out: Vec<usize>,
    dropped_prompt_tokens: u64,
    clamped_new_tokens: u64,
    enqueued: Instant,
    finish: Finish,
}

impl Slot {
    fn running(&self) -> bool {
        self.finish == Finish::Running
    }
}

/// The continuous-batching serve engine. Drive it with
/// [`submit`](ServeEngine::submit) /
/// [`submit_tokenized`](ServeEngine::submit_tokenized) and
/// [`pump`](ServeEngine::pump); collect finished generations with
/// [`take_responses`](ServeEngine::take_responses).
pub struct ServeEngine<'m> {
    session: DecodeSession<'m>,
    tk: &'m Tokenizer,
    cfg: ServeConfig,
    cache: PrefixCache,
    queue: VecDeque<Queued>,
    slots: Vec<Slot>,
    done: Vec<ServeResponse>,
    /// Sampler weight scratch, shared across slots (each sample
    /// overwrites it in full).
    sample_buf: Vec<f32>,
    /// Decode tokens emitted over the engine's lifetime.
    tokens: u64,
}

impl<'m> ServeEngine<'m> {
    pub fn new(lm: &'m TransformerLm, tk: &'m Tokenizer, cfg: ServeConfig) -> ServeEngine<'m> {
        let mut cfg = cfg;
        cfg.max_batch = cfg.max_batch.max(1);
        cfg.queue_depth = cfg.queue_depth.max(1);
        let session = DecodeSession::new_with(lm, cfg.kernel);
        let cache = PrefixCache::new(cfg.prefix_cache_entries);
        ServeEngine {
            session,
            tk,
            cfg,
            cache,
            queue: VecDeque::new(),
            slots: Vec::new(),
            done: Vec::new(),
            sample_buf: Vec::new(),
            tokens: 0,
        }
    }

    /// Tokenizes a batch of requests in parallel (`cfg.threads` workers).
    /// Pure and order-preserving, so the result is independent of thread
    /// count.
    pub fn tokenize_all(&self, reqs: &[ServeRequest]) -> Vec<TokenizedRequest> {
        let exec = ExecConfig::new().threads(self.cfg.threads);
        par_map_ref(&exec, reqs, |r| TokenizedRequest {
            id: r.id.clone(),
            ids: self.tk.encode_prompt(&r.prompt),
            max_new: r.max_new_tokens,
            temperature: r.temperature,
        })
    }

    /// Enqueues a tokenized request, or rejects it (returning it to the
    /// caller) when the admission queue is full. Rejection is the
    /// backpressure signal: the caller retries after pumping, instead of
    /// the engine buffering an unbounded backlog.
    pub fn submit_tokenized(&mut self, req: TokenizedRequest) -> Result<(), TokenizedRequest> {
        let obs = pyranet_obs::global();
        if self.queue.len() >= self.cfg.queue_depth {
            obs.counter("serve.rejected").add(1);
            return Err(req);
        }
        obs.counter("serve.submitted").add(1);
        self.queue.push_back(Queued { req, enqueued: Instant::now() });
        Ok(())
    }

    /// Tokenizes and enqueues one request; on a full queue the original
    /// request comes back untouched (it is not tokenized first).
    pub fn submit(&mut self, req: ServeRequest) -> Result<(), ServeRequest> {
        if self.queue.len() >= self.cfg.queue_depth {
            pyranet_obs::global().counter("serve.rejected").add(1);
            return Err(req);
        }
        let tokenized = TokenizedRequest {
            id: req.id,
            ids: self.tk.encode_prompt(&req.prompt),
            max_new: req.max_new_tokens,
            temperature: req.temperature,
        };
        self.submit_tokenized(tokenized).map_err(|_| unreachable!("queue had room"))
    }

    /// Queued (admitted but not yet decoding) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Sequences currently decoding in the lock-step batch.
    pub fn active(&self) -> usize {
        self.slots.len()
    }

    /// Prefix-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drains finished generations accumulated since the last call.
    pub fn take_responses(&mut self) -> Vec<ServeResponse> {
        std::mem::take(&mut self.done)
    }

    /// Fills empty batch slots from the queue head. Budget-zero requests
    /// (window full of prompt) finish immediately with an empty
    /// completion instead of occupying a slot the forward pass would
    /// crash on.
    fn admit(&mut self) {
        let obs = pyranet_obs::global();
        while self.slots.len() < self.cfg.max_batch {
            let Some(Queued { req, enqueued }) = self.queue.pop_front() else { break };
            obs.histogram("serve.queue.wait.seconds", &DURATION_BUCKETS)
                .observe(enqueued.elapsed().as_secs_f64());
            let plan = PromptPlan::new(req.ids.len(), req.max_new, self.session.max_seq());
            let kept = &req.ids[plan.dropped_prompt_tokens..];
            // `prefill(kept, 0)` never re-trims (kept ≤ max_seq by
            // construction), so the cached state is a pure function of
            // the kept tokens — safe to share across requests whose
            // budgets differ.
            let session = &mut self.session;
            let (prefix, outcome) =
                self.cache.get_or_insert_with(kept, || session.prefill(kept, 0));
            obs.counter(match outcome {
                CacheOutcome::Hit => "serve.prefix_cache.hits",
                CacheOutcome::Miss => "serve.prefix_cache.misses",
                CacheOutcome::Collision => "serve.prefix_cache.collisions",
                CacheOutcome::Bypass => "serve.prefix_cache.bypass",
            })
            .add(1);
            let mut slot = Slot {
                rng: ChaCha8Rng::seed_from_u64(stream_seed_str(self.cfg.seed, &req.id)),
                id: req.id,
                seq: self.session.open_seq(&prefix),
                prefix,
                opts: SampleOptions { temperature: req.temperature, top_k: 0 },
                budget: plan.new_token_budget,
                out: Vec::new(),
                dropped_prompt_tokens: plan.dropped_prompt_tokens as u64,
                clamped_new_tokens: plan.clamped_new_tokens as u64,
                enqueued,
                finish: Finish::Running,
            };
            if slot.budget == 0 {
                slot.finish = Finish::Length;
                self.finish_slot(slot);
                continue;
            }
            obs.counter("serve.admitted").add(1);
            self.slots.push(slot);
        }
    }

    /// One engine step: admit from the queue, sample every live
    /// sequence, retire finishers, then run one lock-step forward over
    /// the survivors. Returns `true` while any work (queued or active)
    /// remains.
    pub fn pump(&mut self) -> bool {
        self.admit();
        if self.slots.is_empty() {
            return !self.queue.is_empty();
        }
        let obs = pyranet_obs::global();
        obs.histogram("serve.batch.occupancy", &DEPTH_BUCKETS).observe(self.slots.len() as f64);
        obs.histogram("serve.queue.depth", &DEPTH_BUCKETS).observe(self.queue.len() as f64);

        // Sample one token per live sequence off its current logits.
        let mut emitted = 0u64;
        for slot in &mut self.slots {
            let next = slot.rng.next_token(slot.seq.logits(), &slot.opts, &mut self.sample_buf);
            if next == EOS {
                slot.finish = Finish::Eos;
                continue;
            }
            slot.out.push(next);
            slot.seq.push_token(next);
            emitted += 1;
            if slot.out.len() == slot.budget {
                // The window is full: retire before the forward pass —
                // a step for a token that can never be sampled would
                // index position `max_seq` and waste a full forward.
                slot.finish = Finish::Length;
            }
        }
        self.tokens += emitted;
        obs.counter("serve.tokens").add(emitted);

        // Retire finishers; survivors keep their relative order so the
        // batch composition is a pure function of the admission order.
        let slots = std::mem::take(&mut self.slots);
        let mut live = Vec::with_capacity(slots.len());
        for slot in slots {
            if slot.running() {
                live.push(slot);
            } else {
                self.finish_slot(slot);
            }
        }
        self.slots = live;

        // One lock-step forward absorbs each survivor's pending token
        // and refreshes its logits for the next pump.
        let mut rows: Vec<(&mut SeqState, &PrefixState)> =
            self.slots.iter_mut().map(|s| (&mut s.seq, s.prefix.as_ref())).collect();
        self.session.step_seqs(&mut rows);

        !self.slots.is_empty() || !self.queue.is_empty()
    }

    fn finish_slot(&mut self, slot: Slot) {
        let obs = pyranet_obs::global();
        obs.histogram("serve.request.latency.seconds", &DURATION_BUCKETS)
            .observe(slot.enqueued.elapsed().as_secs_f64());
        obs.counter("serve.completed").add(1);
        obs.counter(match slot.finish {
            Finish::Eos => "serve.retired_eos",
            _ => "serve.retired_budget",
        })
        .add(1);
        self.done.push(ServeResponse {
            id: slot.id,
            completion: self.tk.decode(&slot.out),
            decode_tokens: slot.out.len() as u64,
            dropped_prompt_tokens: slot.dropped_prompt_tokens,
            clamped_new_tokens: slot.clamped_new_tokens,
            finish_reason: match slot.finish {
                Finish::Eos => "eos".into(),
                _ => "length".into(),
            },
        });
    }

    /// Total decode tokens emitted over the engine's lifetime.
    pub fn tokens_emitted(&self) -> u64 {
        self.tokens
    }
}
