//! The §IV experiment driver: pretrain a base, apply a fine-tuning recipe,
//! evaluate on both VerilogEval-substitute splits.

use pyranet_eval::{evaluate, human_split, machine_split, EvalOptions, EvalResult};
use pyranet_model::{ModelConfig, Tokenizer, TransformerLm};
use pyranet_pipeline::PyraNetDataset;
use pyranet_train::ablation::{CurriculumOnly, WeightingOnly};
use pyranet_train::baselines::{MgVerilog, OriGen, RtlCoder};
use pyranet_train::pretrain::{budget_for, pretrain_cached};
use pyranet_train::{
    ExampleCache, PyraNetTrainer, RepairTrainer, SftTrainer, TrainConfig, TrainReport,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A fine-tuning recipe from the paper's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Recipe {
    /// No fine-tuning — the pretrained base (Table I "Instruct" rows).
    Baseline,
    /// Plain SFT on the whole PyraNet dataset (Table I "PyraNet-Dataset").
    PyraNetDataset,
    /// Loss weighting + curriculum (Table I "PyraNet-Architecture").
    PyraNetArchitecture,
    /// MG-Verilog recipe (multi-grained SFT).
    MgVerilog,
    /// RTLCoder recipe (quality-feedback SFT).
    RtlCoder,
    /// OriGen recipe (code-to-code augmented SFT, no self-reflection).
    OriGen,
    /// Plain SFT on the label-shuffled dataset (Table IV ablation).
    Erroneous,
    /// Ablation: per-layer loss weights without curriculum ordering.
    WeightingOnly,
    /// Ablation: curriculum ordering without loss weighting.
    CurriculumOnly,
    /// Repair SFT: defect-injected module in, clean original out.
    Repair,
}

impl Recipe {
    /// The Table I row suffix for this recipe.
    pub fn label(self) -> &'static str {
        match self {
            Recipe::Baseline => "(baseline)",
            Recipe::PyraNetDataset => "PyraNet-Dataset",
            Recipe::PyraNetArchitecture => "PyraNet-Architecture",
            Recipe::MgVerilog => "MG-Verilog",
            Recipe::RtlCoder => "RTLCoder",
            Recipe::OriGen => "OriGen",
            Recipe::Erroneous => "erroneous dataset",
            Recipe::WeightingOnly => "weighting-only",
            Recipe::CurriculumOnly => "curriculum-only",
            Recipe::Repair => "repair",
        }
    }
}

/// Options shared by all runs of one experiment.
#[derive(Debug, Clone, Default)]
pub struct ExperimentOptions {
    /// Fine-tuning configuration.
    pub train: TrainConfig,
    /// Evaluation configuration.
    pub eval: EvalOptions,
}

/// Evaluation results on both splits.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalPair {
    /// VerilogEval-Machine analogue.
    pub machine: EvalResult,
    /// VerilogEval-Human analogue.
    pub human: EvalResult,
}

impl EvalPair {
    /// Table I row: machine pass@1/5/10 then human pass@1/5/10.
    pub fn row(&self) -> [f64; 6] {
        [
            self.machine.pass_at(1),
            self.machine.pass_at(5),
            self.machine.pass_at(10),
            self.human.pass_at(1),
            self.human.pass_at(5),
            self.human.pass_at(10),
        ]
    }
}

/// One completed recipe run.
#[derive(Debug, Clone)]
pub struct RecipeRun {
    /// Display name, e.g. `"codeLlama-7B-analog PyraNet-Architecture"`.
    pub name: String,
    /// The fine-tuned model.
    pub model: TransformerLm,
    /// Training telemetry (empty phases for `Recipe::Baseline`).
    pub report: TrainReport,
}

/// The experiment context: a dataset, the shared tokenizer, and a cache of
/// tokenized training examples reused across every recipe run.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// The curated dataset.
    pub dataset: PyraNetDataset,
    /// Tokenizer covering the dataset and both eval splits.
    pub tokenizer: Tokenizer,
    /// Tokenized-example cache shared by pretraining and all recipes. Keys
    /// include a content hash, so label-shuffled (Erroneous) runs never see
    /// stale encodings.
    pub example_cache: ExampleCache,
}

impl Experiment {
    /// Builds the experiment context. The tokenizer covers the dataset plus
    /// the evaluation prompts (a real subword tokenizer covers English; a
    /// word-level one must be given the words).
    pub fn new(dataset: PyraNetDataset) -> Experiment {
        let eval_texts: Vec<String> =
            machine_split().into_iter().chain(human_split()).map(|p| p.description).collect();
        let tokenizer = {
            let mut texts: Vec<&str> = vec!["Interface:"];
            for s in dataset.iter() {
                texts.push(&s.description);
                texts.push(&s.source);
            }
            for t in &eval_texts {
                texts.push(t);
            }
            Tokenizer::build(texts, 1)
        };
        Experiment { dataset, tokenizer, example_cache: ExampleCache::new() }
    }

    /// Pretrains a fresh base model (the "released checkpoint" step) on the
    /// clean upper layers of the dataset — general Verilog competence
    /// without the curated fine-tuning signal.
    pub fn pretrain_base(&self, cfg: &ModelConfig, opts: &ExperimentOptions) -> TransformerLm {
        let mut lm = TransformerLm::new(cfg.clone(), self.tokenizer.vocab_size());
        // Generic corpus: a shuffled sample across all layers (the web is
        // not curated), disjoint seed from fine-tuning.
        let budget = budget_for(&cfg.name);
        pretrain_cached(
            &mut lm,
            &self.tokenizer,
            &self.dataset,
            budget,
            &opts.train,
            &self.example_cache,
        );
        lm
    }

    /// Runs one recipe on a clone of `base`.
    pub fn run(&self, base: &TransformerLm, recipe: Recipe, opts: &ExperimentOptions) -> RecipeRun {
        let mut model = base.clone();
        let tk = &self.tokenizer;
        let cache = &self.example_cache;
        let report = match recipe {
            Recipe::Baseline => TrainReport::new("baseline (no fine-tuning)"),
            Recipe::PyraNetDataset => {
                SftTrainer::run_cached(&mut model, tk, &self.dataset, &opts.train, cache)
            }
            Recipe::PyraNetArchitecture => {
                PyraNetTrainer::run_cached(&mut model, tk, &self.dataset, &opts.train, cache)
            }
            Recipe::MgVerilog => {
                MgVerilog::run_cached(&mut model, tk, &self.dataset, &opts.train, cache)
            }
            Recipe::RtlCoder => {
                RtlCoder::default().run_cached(&mut model, tk, &self.dataset, &opts.train, cache)
            }
            Recipe::OriGen => {
                OriGen::default().run_cached(&mut model, tk, &self.dataset, &opts.train, cache)
            }
            Recipe::Erroneous => {
                let mut rng = ChaCha8Rng::seed_from_u64(opts.train.seed ^ 0xBAD);
                let shuffled = pyranet_pipeline::erroneous::shuffle_labels(&self.dataset, &mut rng);
                SftTrainer::run_cached(&mut model, tk, &shuffled, &opts.train, cache)
            }
            Recipe::WeightingOnly => {
                WeightingOnly::run_cached(&mut model, tk, &self.dataset, &opts.train, cache)
            }
            Recipe::CurriculumOnly => {
                CurriculumOnly::run_cached(&mut model, tk, &self.dataset, &opts.train, cache)
            }
            Recipe::Repair => {
                RepairTrainer::run_cached(&mut model, tk, &self.dataset, &opts.train, cache)
            }
        };
        RecipeRun { name: format!("{} {}", base.cfg.name, recipe.label()), model, report }
    }
}

/// Evaluates a model on both splits.
pub fn evaluate_model(lm: &TransformerLm, tk: &Tokenizer, opts: &EvalOptions) -> EvalPair {
    let machine = evaluate(lm, tk, &machine_split(), opts);
    let human = evaluate(lm, tk, &human_split(), opts);
    EvalPair { machine, human }
}

/// Convenience: pretrain + fine-tune + evaluate in one call.
pub fn run_recipe(
    experiment: &Experiment,
    base_cfg: &ModelConfig,
    recipe: Recipe,
    opts: &ExperimentOptions,
) -> (RecipeRun, EvalPair) {
    let base = experiment.pretrain_base(base_cfg, opts);
    let run = experiment.run(&base, recipe, opts);
    let evals = evaluate_model(&run.model, &experiment.tokenizer, &opts.eval);
    (run, evals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuildOptions, PyraNetBuilder};

    fn tiny_options() -> ExperimentOptions {
        ExperimentOptions {
            train: TrainConfig {
                epochs: 1,
                batch_size: 8,
                max_examples_per_phase: Some(8),
                ..TrainConfig::default()
            },
            eval: EvalOptions {
                samples_per_problem: 2,
                max_new_tokens: 30,
                ..EvalOptions::default()
            },
        }
    }

    fn tiny_base() -> ModelConfig {
        ModelConfig {
            name: "codeLlama-7B-analog".into(),
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            d_ff: 32,
            max_seq: 128,
            learning_rate: 3e-3,
            seed: 2,
        }
    }

    #[test]
    fn recipes_produce_distinct_models() {
        let built = PyraNetBuilder::new(BuildOptions {
            scraped_files: 120,
            seed: 3,
            llm_generation: false,
            ..BuildOptions::default()
        })
        .build();
        let exp = Experiment::new(built.dataset);
        let opts = tiny_options();
        let base = exp.pretrain_base(&tiny_base(), &opts);
        let plain = exp.run(&base, Recipe::PyraNetDataset, &opts);
        let pyra = exp.run(&base, Recipe::PyraNetArchitecture, &opts);
        let baseline = exp.run(&base, Recipe::Baseline, &opts);
        assert!(baseline.report.phases.is_empty());
        assert!(!plain.report.phases.is_empty());
        assert!(pyra.report.phases.len() > plain.report.phases.len(), "layer×tier phases");
        // distinct fine-tunes must change weights differently
        let probe = {
            let (ids, code_start) =
                exp.tokenizer.encode_pair("a counter", "module counter ( input clk ) ; endmodule");
            pyranet_model::transformer::TrainExample { ids, code_start, weight: 1.0 }
        };
        let a = plain.model.nll(&probe).unwrap();
        let b = pyra.model.nll(&probe).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn recipe_labels_are_stable() {
        assert_eq!(Recipe::PyraNetArchitecture.label(), "PyraNet-Architecture");
        assert_eq!(Recipe::Baseline.label(), "(baseline)");
    }
}
