//! # pyranet
//!
//! The PyraNet reproduction façade: one crate that wires the whole system
//! together — corpus synthesis → curation pipeline → six-layer dataset →
//! fine-tuning recipes → VerilogEval-substitute evaluation.
//!
//! The paper (*PyraNet: A Multi-Layered Hierarchical Dataset for Verilog*,
//! DAC 2025) contributes (1) a quality-tiered Verilog dataset and (2) a
//! fine-tuning recipe combining per-layer **loss weighting** with
//! **curriculum learning**. This crate exposes both, plus the experiment
//! harness that regenerates the paper's tables.
//!
//! # Quickstart
//!
//! ```
//! use pyranet::{BuildOptions, PyraNetBuilder};
//!
//! // Build a (small) PyraNet dataset end to end.
//! let built = PyraNetBuilder::new(BuildOptions {
//!     scraped_files: 150,
//!     seed: 42,
//!     llm_generation: false,
//!     ..BuildOptions::default()
//! })
//! .build();
//! assert!(built.dataset.len() > 0);
//! // Six-layer pyramid with the paper's loss weights:
//! let counts = built.dataset.layer_counts();
//! assert_eq!(counts.iter().sum::<usize>(), built.dataset.len());
//! ```
//!
//! See `examples/` for full fine-tune + evaluate flows, and the
//! `pyranet-bench` binaries for the Table I–IV / Fig. 1–3 regenerators.

pub mod experiment;

pub use experiment::{
    evaluate_model, run_recipe, EvalPair, Experiment, ExperimentOptions, Recipe, RecipeRun,
};

pub use pyranet_corpus as corpus;
pub use pyranet_eval as eval;
pub use pyranet_model as model;
pub use pyranet_obs as obs;
pub use pyranet_pipeline as pipeline;
pub use pyranet_serve as serve;
pub use pyranet_train as train;
pub use pyranet_verilog as verilog;

pub use pyranet_eval::EvalOptions;
pub use pyranet_model::ModelConfig;
pub use pyranet_pipeline::{Funnel, Layer, PyraNetDataset};
pub use pyranet_train::TrainConfig;

use pyranet_corpus::CorpusBuilder;
use pyranet_pipeline::Pipeline;

/// Options for building a PyraNet dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildOptions {
    /// Number of "scraped" files in the synthetic pool (paper scale is
    /// 2.4 M; the default here is 1:1000).
    pub scraped_files: usize,
    /// Master seed.
    pub seed: u64,
    /// Include the Fig. 2 pseudo-LLM generation stage.
    pub llm_generation: bool,
    /// Jaccard dedup threshold.
    pub jaccard_threshold: f64,
    /// Worker threads for the corpus and curation hot paths (`0` = auto,
    /// honouring the `PYRANET_THREADS` environment variable). Outputs are
    /// identical at any thread count.
    pub threads: usize,
    /// Opt-in curation stage: reject survivors whose first module fails to
    /// elaborate and instantiate under the given simulation backend
    /// (`None` = disabled, the default). The backend choice is a
    /// performance knob — both modes reject the same samples.
    pub sim_check: Option<pyranet_verilog::SimMode>,
    /// Opt-in incremental curation cache root (`None` = run every stage
    /// from scratch). See `pyranet_pipeline::Pipeline::cache_dir`: warm
    /// rebuilds reuse per-sample stage verdicts and produce byte-identical
    /// output.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            scraped_files: 2400,
            seed: 0xDAC_2025,
            llm_generation: true,
            jaccard_threshold: 0.85,
            threads: 0,
            sim_check: None,
            cache_dir: None,
        }
    }
}

/// Builder for the full corpus → pipeline flow.
#[derive(Debug, Clone)]
pub struct PyraNetBuilder {
    options: BuildOptions,
}

/// A built dataset plus its construction statistics.
#[derive(Debug, Clone)]
pub struct Built {
    /// The curated six-layer dataset.
    pub dataset: PyraNetDataset,
    /// Curation funnel (§III-A.5).
    pub funnel: Funnel,
    /// Fig. 2 generation funnel.
    pub gen_funnel: pyranet_corpus::llmgen::GenFunnel,
    /// Stage provenance of the curation configuration (embeddable into
    /// shard manifests via `ExportMeta`).
    pub provenance: Vec<pyranet_pipeline::StageProvenance>,
}

impl PyraNetBuilder {
    /// Creates a builder.
    pub fn new(options: BuildOptions) -> PyraNetBuilder {
        PyraNetBuilder { options }
    }

    /// Synthesises the pool and runs the curation pipeline.
    pub fn build(&self) -> Built {
        let pool = CorpusBuilder::new(self.options.seed)
            .scraped_files(self.options.scraped_files)
            .llm_generation(self.options.llm_generation)
            .threads(self.options.threads)
            .build();
        let gen_funnel = pool.gen_funnel;
        let mut pipeline = Pipeline::new()
            .jaccard_threshold(self.options.jaccard_threshold)
            .threads(self.options.threads);
        if let Some(mode) = self.options.sim_check {
            pipeline = pipeline.sim_check(mode);
        }
        if let Some(dir) = &self.options.cache_dir {
            pipeline = pipeline.cache_dir(dir.clone());
        }
        let outcome = pipeline.run(pool.samples);
        Built {
            dataset: outcome.dataset,
            funnel: outcome.funnel,
            gen_funnel,
            provenance: outcome.provenance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_layered_dataset() {
        let built = PyraNetBuilder::new(BuildOptions {
            scraped_files: 200,
            seed: 1,
            llm_generation: false,
            ..BuildOptions::default()
        })
        .build();
        assert!(built.dataset.len() > 30);
        assert_eq!(built.funnel.curated, built.dataset.len());
        let counts = built.dataset.layer_counts();
        assert!(counts[5] > 0, "layer 6 holds dependency-issue files");
    }

    #[test]
    fn build_is_deterministic() {
        let opts = BuildOptions {
            scraped_files: 100,
            seed: 9,
            llm_generation: false,
            ..BuildOptions::default()
        };
        let a = PyraNetBuilder::new(opts.clone()).build();
        let b = PyraNetBuilder::new(opts).build();
        assert_eq!(a.dataset, b.dataset);
    }
}
