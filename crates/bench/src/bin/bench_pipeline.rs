//! Curation-throughput benchmark: runs the pipeline at 1/2/4/8 worker
//! threads over the same pool and writes `BENCH_pipeline.json` with
//! per-stage wall time and samples/sec.
//!
//! The determinism contract (tests/determinism.rs) guarantees every run in
//! the sweep produces the same dataset; this binary only measures time.
//! Speedup numbers are relative to the 1-thread run **on the current
//! host** — on a single-core machine every point of the sweep is
//! expected to be ~1.0×.

use pyranet::corpus::CorpusBuilder;
use pyranet::pipeline::{Pipeline, PyraNetDataset, ShardSpec, StageTimings};
use pyranet_bench::Scale;
use serde::Serialize;

/// Runs per thread count; the fastest curation time is reported.
const REPEATS: usize = 3;
/// Thread counts swept.
const SWEEP: [usize; 4] = [1, 2, 4, 8];

#[derive(Serialize)]
struct StageReport {
    /// Wall seconds in the stage (fastest repeat).
    secs: f64,
    /// Samples entering the stage.
    samples_in: u64,
    /// Throughput through the stage.
    samples_per_sec: f64,
}

#[derive(Serialize)]
struct RunReport {
    threads: u64,
    broken: StageReport,
    no_module: StageReport,
    dedup: StageReport,
    syntax_rank: StageReport,
    /// Total curation wall seconds (all four stages).
    curation_secs: f64,
    /// Curation speedup versus the 1-thread run.
    speedup_vs_one_thread: f64,
}

#[derive(Serialize)]
struct PersistReport {
    /// Shards written (fixed-size policy).
    shards: u64,
    /// Samples per shard requested.
    shard_size: u64,
    /// Total shard bytes on disk.
    bytes: u64,
    /// Sharded export wall seconds (fastest repeat; flush-checked writes).
    export_secs: f64,
    /// Export throughput.
    export_samples_per_sec: f64,
    /// Sharded import wall seconds (fastest repeat; checksum-verified).
    import_secs: f64,
    /// Import throughput.
    import_samples_per_sec: f64,
}

#[derive(Serialize)]
struct BenchReport {
    /// `std::thread::available_parallelism()` on the benchmarking host.
    host_parallelism: u64,
    /// Files in the benchmarked pool.
    pool_files: u64,
    /// Repeats per thread count (fastest wins).
    repeats: u64,
    runs: Vec<RunReport>,
    /// Sharded export/import throughput over the curated dataset.
    persist: PersistReport,
}

fn stage(secs: f64, samples_in: usize) -> StageReport {
    StageReport {
        secs,
        samples_in: samples_in as u64,
        samples_per_sec: if secs > 0.0 { samples_in as f64 / secs } else { 0.0 },
    }
}

fn curation_secs(t: &StageTimings) -> f64 {
    (t.broken + t.no_module + t.dedup + t.syntax_rank).as_secs_f64()
}

/// Times the sharded export/import round trip (fixed-size shards, auto
/// threads) over the curated dataset; fastest of [`REPEATS`] wins.
fn bench_persist(ds: &PyraNetDataset) -> PersistReport {
    let exec = pyranet_exec::ExecConfig::new();
    let shard_size = (ds.len() / 8).max(1);
    let dir = std::env::temp_dir().join(format!("pyranet-bench-persist-{}", std::process::id()));
    let mut export_secs = f64::INFINITY;
    let mut import_secs = f64::INFINITY;
    let mut shards = 0u64;
    let mut bytes = 0u64;
    for _ in 0..REPEATS {
        let t = std::time::Instant::now();
        let manifest =
            ds.to_shards(&dir, ShardSpec::MaxSamples(shard_size), &exec).expect("sharded export");
        export_secs = export_secs.min(t.elapsed().as_secs_f64());
        shards = manifest.shards.len() as u64;
        bytes = manifest.shards.iter().map(|s| s.bytes).sum();

        let t = std::time::Instant::now();
        let back = PyraNetDataset::from_shards(&dir, &exec).expect("sharded import");
        import_secs = import_secs.min(t.elapsed().as_secs_f64());
        assert_eq!(&back, ds, "round trip must be lossless");
    }
    std::fs::remove_dir_all(&dir).ok();
    let rate = |secs: f64| if secs > 0.0 { ds.len() as f64 / secs } else { 0.0 };
    eprintln!(
        "persist: {} samples -> {shards} shard(s), {bytes} bytes; \
         export {export_secs:.3}s ({:.0}/s), import {import_secs:.3}s ({:.0}/s)",
        ds.len(),
        rate(export_secs),
        rate(import_secs)
    );
    PersistReport {
        shards,
        shard_size: shard_size as u64,
        bytes,
        export_secs,
        export_samples_per_sec: rate(export_secs),
        import_secs,
        import_samples_per_sec: rate(import_secs),
    }
}

fn main() {
    let opts = Scale::from_env().build_options();
    let pool = CorpusBuilder::new(opts.seed)
        .scraped_files(opts.scraped_files)
        .llm_generation(false)
        .build();
    let n = pool.samples.len();
    eprintln!("pool: {n} files; sweeping {SWEEP:?} threads, {REPEATS} repeats each");

    let mut base_curation = 0.0f64;
    let mut runs = Vec::new();
    for threads in SWEEP {
        let mut best: Option<(StageTimings, f64, pyranet::Funnel)> = None;
        for _ in 0..REPEATS {
            let pipeline = Pipeline::new().threads(threads);
            let (outcome, timings) = pipeline.run_timed(pool.samples.clone());
            let secs = curation_secs(&timings);
            if best.as_ref().is_none_or(|(_, b, _)| secs < *b) {
                best = Some((timings, secs, outcome.funnel));
            }
        }
        let (timings, secs, funnel) = best.expect("at least one repeat");
        if threads == 1 {
            base_curation = secs;
        }
        // Stage 1–3 input counts follow the funnel; stage 4's input count
        // is recorded directly in the timings.
        let no_module_in = funnel.collected - funnel.rejected_broken;
        let dedup_in = no_module_in - funnel.rejected_no_module;
        runs.push(RunReport {
            threads: threads as u64,
            broken: stage(timings.broken.as_secs_f64(), funnel.collected),
            no_module: stage(timings.no_module.as_secs_f64(), no_module_in),
            dedup: stage(timings.dedup.as_secs_f64(), dedup_in),
            syntax_rank: stage(timings.syntax_rank.as_secs_f64(), timings.syntax_in),
            curation_secs: secs,
            speedup_vs_one_thread: if secs > 0.0 { base_curation / secs } else { 1.0 },
        });
        eprintln!(
            "threads={threads}: {:.3}s curation ({:.2}x vs 1 thread)",
            secs,
            if secs > 0.0 { base_curation / secs } else { 1.0 }
        );
    }

    let persist = bench_persist(&Pipeline::new().run(pool.samples.clone()).dataset);

    let report = BenchReport {
        host_parallelism: std::thread::available_parallelism().map_or(1, |p| p.get()) as u64,
        pool_files: n as u64,
        repeats: REPEATS as u64,
        runs,
        persist,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!("{json}");
    eprintln!("wrote BENCH_pipeline.json");
}
