//! Diagnostic probe: train one model and print its raw generations so the
//! training/generation loop can be inspected end to end.
//!
//! Not part of the paper's artefacts; used to tune the reproduction.

use pyranet::eval::machine_split;
use pyranet::experiment::Recipe;
use pyranet::model::SampleOptions;
use pyranet::train::TrainConfig;
use pyranet::{BuildOptions, Experiment, ExperimentOptions, ModelConfig, PyraNetBuilder};
use rand::SeedableRng;

fn main() {
    let scraped: usize =
        std::env::var("PROBE_FILES").ok().and_then(|v| v.parse().ok()).unwrap_or(300);
    let cap: usize = std::env::var("PROBE_CAP").ok().and_then(|v| v.parse().ok()).unwrap_or(80);
    let epochs: usize =
        std::env::var("PROBE_EPOCHS").ok().and_then(|v| v.parse().ok()).unwrap_or(2);
    let lr: f32 = std::env::var("PROBE_LR").ok().and_then(|v| v.parse().ok()).unwrap_or(3e-3);
    let lora: i64 = std::env::var("PROBE_LORA").ok().and_then(|v| v.parse().ok()).unwrap_or(8);

    let built = PyraNetBuilder::new(BuildOptions {
        scraped_files: scraped,
        seed: 77,
        ..BuildOptions::default()
    })
    .build();
    eprintln!("dataset: {} samples {:?}", built.dataset.len(), built.dataset.layer_counts());
    let experiment = Experiment::new(built.dataset);
    eprintln!("vocab: {}", experiment.tokenizer.vocab_size());

    let opts = ExperimentOptions {
        train: TrainConfig {
            epochs,
            batch_size: 8,
            learning_rate: lr,
            max_examples_per_phase: Some(cap),
            lora: (lora > 0).then_some(pyranet::model::lora::LoraConfig {
                rank: lora as usize,
                alpha: 2.0 * lora as f32,
            }),
            seed: 7,
            ..TrainConfig::default()
        },
        ..ExperimentOptions::default()
    };
    let cfg = ModelConfig::codellama_7b();
    let t = std::time::Instant::now();
    let base = experiment.pretrain_base(&cfg, &opts);
    eprintln!("pretrain: {:.1?}", t.elapsed());
    let t = std::time::Instant::now();
    let run = experiment.run(&base, Recipe::PyraNetDataset, &opts);
    eprintln!("finetune: {:.1?}", t.elapsed());
    for p in &run.report.phases {
        eprintln!(
            "  phase {}: loss {:.3} -> {:.3} ({} ex)",
            p.name, p.first_loss, p.last_loss, p.examples
        );
    }

    let temp: f32 = std::env::var("PROBE_TEMP").ok().and_then(|v| v.parse().ok()).unwrap_or(0.3);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let sopts = SampleOptions { temperature: temp, top_k: 0 };
    for problem in machine_split().iter().take(4) {
        println!("\n=== {} ===", problem.id);
        println!("prompt: {}", problem.prompt());
        let header_ids = experiment.tokenizer.encode(&problem.header());
        let mut prompt = experiment.tokenizer.encode_prompt(&problem.prompt());
        prompt.extend_from_slice(&header_ids);
        for i in 0..2 {
            let out = run.model.generate(&prompt, 150, &sopts, &mut rng);
            let mut ids = header_ids.clone();
            ids.extend_from_slice(&out);
            let text = experiment.tokenizer.decode(&ids);
            let verdict = pyranet::verilog::check_source(&text);
            println!("--- sample {i} ({} tokens, {:?}) ---", out.len(), verdict_label(&verdict));
            println!("{}", &text[..text.len().min(400)]);
        }
    }
}

fn verdict_label(v: &pyranet::verilog::SyntaxVerdict) -> &'static str {
    match v {
        pyranet::verilog::SyntaxVerdict::Clean => "clean",
        pyranet::verilog::SyntaxVerdict::DependencyIssue { .. } => "dependency",
        pyranet::verilog::SyntaxVerdict::SyntaxError { .. } => "syntax-error",
    }
}
