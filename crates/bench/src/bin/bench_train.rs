//! Model-hot-path benchmark: measures training and generation throughput
//! (tokens/sec) and writes `BENCH_train.json`.
//!
//! The training path is timed once per f32 kernel family — the naive
//! `reference` loops, the cache-`blocked` rework, and the vectorized
//! `simd` lanes — so the per-family speedups directly quantify each
//! kernel generation. Blocked is bit-identical to reference and simd is
//! deterministic (tests/determinism.rs and the model crate's property
//! tests enforce both), so the fastest family is always safe to use.
//!
//! Honours `PYRANET_SCALE` (`quick` for the CI smoke run, `full` default).

use pyranet::corpus::CorpusBuilder;
use pyranet::model::tensor::KernelMode;
use pyranet::model::transformer::TrainExample;
use pyranet::model::{Adam, ModelConfig, SampleOptions, TransformerLm};
use pyranet::pipeline::Pipeline;
use pyranet::train::{build_tokenizer, to_examples, TrainConfig};
use pyranet_bench::Scale;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct PathReport {
    /// Kernel family the path ran with.
    kernel: String,
    /// Wall seconds (fastest repeat).
    secs: f64,
    /// Tokens pushed through the path.
    tokens: u64,
    /// Throughput.
    tokens_per_sec: f64,
}

#[derive(Serialize)]
struct BenchReport {
    /// `std::thread::available_parallelism()` on the benchmarking host.
    host_parallelism: u64,
    /// Training examples per timed pass.
    train_examples: u64,
    /// Batch size used on the train path.
    batch_size: u64,
    /// Repeats per measurement (fastest wins).
    repeats: u64,
    /// SFT micro-budget training with the blocked kernels (default mode).
    train_blocked: PathReport,
    /// Same workload with the naive reference kernels.
    train_reference: PathReport,
    /// Same workload with the vectorized simd kernels.
    train_simd: PathReport,
    /// Blocked-kernel training speedup over the reference kernels.
    speedup_vs_reference: f64,
    /// Simd-kernel training speedup over the blocked kernels.
    speedup_simd_vs_blocked: f64,
    /// Greedy generation with the KV cache (blocked kernels).
    generate: PathReport,
}

fn path(kernel: KernelMode, secs: f64, tokens: usize) -> PathReport {
    PathReport {
        kernel: kernel.to_string(),
        secs,
        tokens: tokens as u64,
        tokens_per_sec: if secs > 0.0 { tokens as f64 / secs } else { 0.0 },
    }
}

/// One full timed pass over `examples`: fresh model + optimizer with the
/// requested kernel family, every batch stepped once. Returns
/// (wall seconds, tokens processed).
fn timed_train_pass(
    cfg: &ModelConfig,
    vocab: usize,
    examples: &[TrainExample],
    tcfg: &TrainConfig,
    mode: KernelMode,
) -> (f64, usize) {
    let mut lm = TransformerLm::new(cfg.clone(), vocab);
    lm.set_kernels(mode);
    let mut opt = Adam::new(lm.trainable_count(), tcfg.learning_rate);
    let tokens: usize = examples.iter().map(|e| e.ids.len()).sum();
    let start = Instant::now();
    for batch in examples.chunks(tcfg.batch_size) {
        lm.train_step(batch, &mut opt);
    }
    (start.elapsed().as_secs_f64(), tokens)
}

fn main() {
    let scale = Scale::from_env();
    let (files, train_examples, repeats, gen_prompts, max_new) = match scale {
        Scale::Quick => (150, 12, 2, 4, 24),
        Scale::Full => (400, 48, 5, 12, 64),
    };

    let pool = CorpusBuilder::new(11).scraped_files(files).llm_generation(false).build();
    let ds = Pipeline::new().run(pool.samples).dataset;
    let tk = build_tokenizer(ds.iter());
    let mut examples = to_examples(ds.iter(), &tk, 1.0);
    examples.truncate(train_examples);
    let cfg = ModelConfig {
        name: "bench".into(),
        d_model: 32,
        n_layers: 2,
        n_heads: 4,
        d_ff: 64,
        max_seq: 160,
        learning_rate: 3e-3,
        seed: 11,
    };
    let tcfg = TrainConfig { batch_size: 8, ..TrainConfig::default() };
    eprintln!(
        "train path: {} examples, batch size {}, {repeats} repeats per kernel mode",
        examples.len(),
        tcfg.batch_size
    );

    let measure = |mode: KernelMode| -> PathReport {
        let mut best = f64::INFINITY;
        let mut tokens = 0usize;
        for _ in 0..repeats {
            let (secs, t) = timed_train_pass(&cfg, tk.vocab_size(), &examples, &tcfg, mode);
            tokens = t;
            if secs < best {
                best = secs;
            }
        }
        path(mode, best, tokens)
    };
    let train_reference = measure(KernelMode::Reference);
    let train_blocked = measure(KernelMode::Blocked);
    let train_simd = measure(KernelMode::Simd);
    let speedup =
        if train_blocked.secs > 0.0 { train_reference.secs / train_blocked.secs } else { 1.0 };
    let speedup_simd =
        if train_simd.secs > 0.0 { train_blocked.secs / train_simd.secs } else { 1.0 };
    eprintln!(
        "train: blocked {:.3}s vs reference {:.3}s ({speedup:.2}x)",
        train_blocked.secs, train_reference.secs
    );
    eprintln!(
        "train: simd {:.3}s vs blocked {:.3}s ({speedup_simd:.2}x)",
        train_simd.secs, train_blocked.secs
    );

    // Generation throughput: train briefly so sampling is non-degenerate,
    // then time greedy decoding over a handful of dataset prompts.
    let mut lm = TransformerLm::new(cfg.clone(), tk.vocab_size());
    let mut opt = Adam::new(lm.trainable_count(), tcfg.learning_rate);
    for batch in examples.chunks(tcfg.batch_size) {
        lm.train_step(batch, &mut opt);
    }
    let opts = SampleOptions { temperature: 0.0, ..SampleOptions::default() };
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let prompts: Vec<Vec<usize>> = examples
        .iter()
        .take(gen_prompts)
        .map(|e| e.ids[..e.code_start.min(e.ids.len())].to_vec())
        .collect();
    let mut best = f64::INFINITY;
    let mut gen_tokens = 0usize;
    for _ in 0..repeats {
        let start = Instant::now();
        let mut produced = 0usize;
        for p in &prompts {
            produced += p.len() + lm.generate(p, max_new, &opts, &mut rng).len();
        }
        let secs = start.elapsed().as_secs_f64();
        gen_tokens = produced;
        if secs < best {
            best = secs;
        }
    }
    let generate = path(KernelMode::Blocked, best, gen_tokens);
    eprintln!("generate: {:.3}s, {:.0} tokens/sec", generate.secs, generate.tokens_per_sec);

    let report = BenchReport {
        host_parallelism: std::thread::available_parallelism().map_or(1, |p| p.get()) as u64,
        train_examples: examples.len() as u64,
        batch_size: tcfg.batch_size as u64,
        repeats: repeats as u64,
        train_blocked,
        train_reference,
        train_simd,
        speedup_vs_reference: speedup,
        speedup_simd_vs_blocked: speedup_simd,
        generate,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write("BENCH_train.json", &json).expect("write BENCH_train.json");
    println!("{json}");
    eprintln!("wrote BENCH_train.json");
}
