//! Regenerates the §III-A.5 curation funnel: collected -> filtered ->
//! curated counts (paper: 2.4 M collected + 150 k generated -> 692,238
//! curated).

use pyranet::PyraNetBuilder;
use pyranet_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let built = PyraNetBuilder::new(scale.build_options()).build();
    println!("CURATION FUNNEL (§III-A.5)");
    println!();
    println!("{}", built.funnel.render());
    println!();
    println!(
        "generation stage (Fig. 2): {} keywords -> {} expanded -> {} responses",
        built.gen_funnel.keywords, built.gen_funnel.expanded, built.gen_funnel.responses
    );
    println!();
    println!(
        "paper scale: 2.4M scraped + 150k generated -> 692,238 curated ({:.1}% survival)",
        100.0 * 692_238.0 / 2_550_000.0
    );
    println!(
        "this run:    {} pooled -> {} curated ({:.1}% survival)",
        built.funnel.collected,
        built.funnel.curated,
        built.funnel.survival_rate() * 100.0
    );
}
