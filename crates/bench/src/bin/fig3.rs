//! Regenerates **Fig. 3**: an example ranking prompt and response — the
//! paper's half-adder scored 20/20.

use pyranet::pipeline::rank::{rank_sample, render_prompt, render_response};

fn main() {
    let code = "module halfAdder(\n  input A,\n  input B,\n  output Sum,\n  output Cout\n);\n\n  assign Sum = A ^ B;\n  assign Cout = A & B;\nendmodule";
    println!("FIG. 3 — example of a prompt and the response used for ranking");
    println!();
    println!("Prompt:");
    for line in render_prompt(code).lines() {
        println!("  {line}");
    }
    println!();
    let module = pyranet::verilog::parse_module(code).expect("figure sample parses");
    let rank = rank_sample(&module, code);
    println!("Response:");
    println!("  {}", render_response(rank));
    println!();
    // The paper's judge (GPT-4o-mini) scores this sample 20/20. Our
    // deterministic judge docks style points for the CamelCase module name
    // and missing comments, which the paper's example keeps.
    let clean = "// Half adder.\nmodule half_adder(\n  input a,\n  input b,\n  output sum,\n  output cout\n);\n  assign sum = a ^ b; // xor\n  assign cout = a & b;\nendmodule\n";
    let m2 = pyranet::verilog::parse_module(clean).expect("clean sample parses");
    println!("(style-clean variant scores: {})", render_response(rank_sample(&m2, clean)));
}
