//! Regenerates **Table II**: pre-trained LLM architectures and fine-tuning
//! information — for both the paper's models and our analogues.

use pyranet::ModelConfig;

fn main() {
    println!("TABLE II — pre-trained LLM architectures and fine-tuning information");
    println!();
    println!("Paper's models (for reference):");
    println!(
        "  {:<34} {:>6} {:>8} {:>9} {:>12} {:>13} {:>10}",
        "Model", "Layers", "# Heads", "Head Size", "Context Size", "learning rate", "# epochs"
    );
    for (name, layers, heads, head, ctx) in [
        ("CodeLlama-7b-Instruct", 32, 32, 128, 100_000),
        ("CodeLlama-13b-Instruct", 40, 40, 128, 100_000),
        ("DeepSeek-Coder-7B-Instruct-v1.5", 30, 30, 128, 4_000),
    ] {
        println!(
            "  {name:<34} {layers:>6} {heads:>8} {head:>9} {ctx:>12} {:>13} {:>10}",
            "2e-4", "1, 2, 3"
        );
    }
    println!();
    println!("This reproduction's analogues:");
    println!(
        "  {:<34} {:>6} {:>8} {:>9} {:>12} {:>13} {:>10}",
        "Model", "Layers", "# Heads", "Head Size", "Context Size", "learning rate", "# epochs"
    );
    for cfg in ModelConfig::all_bases() {
        println!(
            "  {:<34} {:>6} {:>8} {:>9} {:>12} {:>13} {:>10}",
            cfg.name,
            cfg.n_layers,
            cfg.n_heads,
            cfg.head_size(),
            cfg.max_seq,
            format!("{:.0e}", cfg.learning_rate),
            "1, 2, 3"
        );
    }
    println!();
    println!(
        "  (analogue parameter counts at vocab 1500: {})",
        ModelConfig::all_bases()
            .iter()
            .map(|c| format!("{} = {}", c.name, c.param_count(1500)))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
