//! Serve-daemon benchmark: the same request stream replayed through the
//! continuous-batching engine and through a sequential one-request-at-a-
//! time engine, written to `BENCH_serve.json`.
//!
//! * **sequential** — `max_batch = 1`: each request decodes alone, the
//!   next admitted only after the previous retires. This is the serving
//!   analogue of the legacy eval loop.
//! * **continuous** — `max_batch = DEPTH`: the lock-step batch refills
//!   from the admission queue as sequences retire on `<eos>`/budget, so
//!   a straggler never drains the batch.
//!
//! Both paths run the identical request list with identical per-request
//! RNG streams and must produce byte-identical completions (asserted
//! every repeat) — the speedup is pure batching, not a semantics change.
//! Throughput counts decode (completion) tokens only; the prefix cache
//! is enabled on both sides so the win measured is continuous batching,
//! not caching.
//!
//! Honours `PYRANET_SCALE` (`quick` for the CI smoke run, `full`
//! default).

use pyranet::eval::machine_split;
use pyranet::model::{KernelMode, ModelConfig, Tokenizer, TransformerLm};
use pyranet::serve::{replay, ReplayOutcome, ServeConfig, ServeRequest, ServeResponse};
use pyranet_bench::Scale;
use serde::Serialize;
use std::time::Instant;

/// Batch depth of the continuous path (the acceptance bar is depth
/// ≥ 8; 16 keeps the lock-step batch wide enough that the per-step
/// weight traversal amortizes even as the stream drains).
const DEPTH: usize = 16;

#[derive(Serialize)]
struct PathReport {
    /// Lock-step batch width.
    max_batch: u64,
    /// Wall seconds (fastest repeat, whole replay).
    secs: f64,
    /// Decode (completion) tokens produced.
    tokens: u64,
    /// Decode throughput.
    tokens_per_sec: f64,
    /// Engine pump iterations (lock-step forward steps).
    steps: u64,
    /// Prefix-cache hits.
    cache_hits: u64,
    /// Prefix-cache misses.
    cache_misses: u64,
    /// Submits bounced by backpressure and retried.
    resubmissions: u64,
}

#[derive(Serialize)]
struct BenchReport {
    /// `std::thread::available_parallelism()` on the benchmarking host.
    host_parallelism: u64,
    /// Requests in the replayed stream.
    requests: u64,
    /// Admission-queue bound used on both paths.
    queue_depth: u64,
    /// Repeats per measurement (fastest wins).
    repeats: u64,
    /// One request at a time (`max_batch = 1`).
    sequential: PathReport,
    /// Continuous batching at `max_batch = DEPTH`.
    continuous: PathReport,
    /// Continuous throughput over sequential (identical token counts,
    /// so this is also the wall-time ratio).
    speedup: f64,
}

fn path(max_batch: usize, secs: f64, out: &ReplayOutcome) -> PathReport {
    PathReport {
        max_batch: max_batch as u64,
        secs,
        tokens: out.decode_tokens,
        tokens_per_sec: if secs > 0.0 { out.decode_tokens as f64 / secs } else { 0.0 },
        steps: out.steps,
        cache_hits: out.cache.hits,
        cache_misses: out.cache.misses,
        resubmissions: out.resubmissions,
    }
}

fn by_id(mut rs: Vec<ServeResponse>) -> Vec<ServeResponse> {
    rs.sort_by(|a, b| a.id.cmp(&b.id));
    rs
}

fn main() {
    let scale = Scale::from_env();
    let (n_requests, repeats, queue_depth) = match scale {
        Scale::Quick => (16usize, 2usize, 8usize),
        Scale::Full => (48, 4, 16),
    };

    // A serving-sized model: wide enough that the per-layer weights
    // overflow the per-core cache, which is what continuous batching
    // exists to amortize (each lock-step forward streams the weights
    // once for the whole batch instead of once per sequence). Untrained
    // weights are fine — both paths decode the same ids either way.
    let problems = machine_split();
    let corpus: Vec<String> =
        problems.iter().map(|p| format!("{} {}", p.prompt(), p.header())).collect();
    let tk = Tokenizer::build(corpus.iter().map(String::as_str), 1);
    let cfg = ModelConfig {
        name: "bench-serve".into(),
        d_model: 256,
        n_layers: 4,
        n_heads: 4,
        d_ff: 512,
        max_seq: 384,
        learning_rate: 1e-3,
        seed: 11,
    };
    let lm = TransformerLm::new(cfg, tk.vocab_size());

    // A serving-shaped stream: prompts cycle over a hot subset of the
    // split (live traffic concentrates on popular problems, which is
    // what the prefix cache exists for), budgets and temperatures vary
    // per request so sequences retire at different steps — the case
    // continuous batching exists for.
    let hot = problems.len().min(12);
    let requests: Vec<ServeRequest> = (0..n_requests)
        .map(|i| {
            let p = &problems[i % hot];
            ServeRequest {
                id: format!("{}#{i}", p.id),
                prompt: p.prompt(),
                max_new_tokens: 48 + (i * 13) % 96,
                temperature: 0.4 + 0.1 * (i % 5) as f32,
            }
        })
        .collect();

    // The SIMD family: with scalar kernels this host is compute-bound
    // and batching has nothing to amortize; vectorized matmuls push the
    // bottleneck back to weight streaming, which is the regime a serving
    // host actually runs in. Both paths use the same family, so the
    // identical-completions assert below still holds bit-for-bit.
    let serve_cfg = |max_batch: usize| ServeConfig {
        max_batch,
        queue_depth,
        prefix_cache_entries: 32,
        seed: 0x5E21,
        kernel: KernelMode::Simd,
        threads: 1,
    };

    let run = |max_batch: usize| -> (f64, ReplayOutcome) {
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..repeats {
            let start = Instant::now();
            let out = replay(&lm, &tk, serve_cfg(max_batch), &requests);
            best = best.min(start.elapsed().as_secs_f64());
            last = Some(out);
        }
        (best, last.expect("at least one repeat"))
    };

    let (seq_secs, seq_out) = run(1);
    let (cont_secs, cont_out) = run(DEPTH);
    assert_eq!(
        by_id(seq_out.responses.clone()),
        by_id(cont_out.responses.clone()),
        "continuous batching changed a completion"
    );
    assert_eq!(seq_out.decode_tokens, cont_out.decode_tokens);

    let sequential = path(1, seq_secs, &seq_out);
    let continuous = path(DEPTH, cont_secs, &cont_out);
    let speedup = if continuous.secs > 0.0 { sequential.secs / continuous.secs } else { 1.0 };
    eprintln!(
        "{} request(s), {} decode tok: sequential {:.3}s ({:.0} tok/s) vs continuous@{DEPTH} \
         {:.3}s ({:.0} tok/s) — {speedup:.2}x",
        requests.len(),
        seq_out.decode_tokens,
        sequential.secs,
        sequential.tokens_per_sec,
        continuous.secs,
        continuous.tokens_per_sec
    );

    let report = BenchReport {
        host_parallelism: std::thread::available_parallelism().map_or(1, |p| p.get()) as u64,
        requests: requests.len() as u64,
        queue_depth: queue_depth as u64,
        repeats: repeats as u64,
        sequential,
        continuous,
        speedup,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!("wrote BENCH_serve.json");
}
