//! Inference-engine benchmark: the n-samples-per-problem pass@k workload
//! timed on both eval paths, written to `BENCH_eval.json`.
//!
//! * **naive** — the retained legacy loop: every sample re-merges
//!   weights, re-prefills the full prompt, and decodes alone.
//! * **session** — `DecodeSession`: one shared prefill per problem, the
//!   KV cache forked (borrowed, not copied) across the n samples, all
//!   live sequences decoded in lock-step batches through the blocked
//!   kernels.
//! * **session_int8** — the same session engine in the `int8` kernel
//!   family: effective weights absmax-quantized once at session build,
//!   matmuls accumulated in i32. Its sampled ids legitimately differ
//!   from f32 (quantization perturbs the logits — parity is gated at the
//!   pass@k level in `tests/quant_parity.rs`, not per token), so its
//!   speedup is reported as a tokens/sec ratio over its own token count.
//!
//! Both paths run single-threaded on identical per-sample RNG streams and
//! must produce identical token ids (asserted every repeat) — the
//! speedup is pure engineering, not a semantics change. Tokens/sec counts
//! *decode* (completion) tokens only, so shared prefill shows up as
//! faster wall time over the same token count rather than inflating the
//! numerator.
//!
//! Honours `PYRANET_SCALE` (`quick` for the CI smoke run, `full` default).

use pyranet::eval::testbench::golden_source;
use pyranet::eval::{
    machine_split, sample_temperature, CheckStrategy, ProblemBench, SimMode, SimStats,
    DEFAULT_MAX_EQ_INPUTS,
};
use pyranet::model::decode::DecodeSession;
use pyranet::model::{KernelMode, ModelConfig, SampleOptions, Tokenizer, TransformerLm};
use pyranet_bench::Scale;
use pyranet_exec::stream_seed_str;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct PathReport {
    /// Kernel family the path decoded with.
    kernel: String,
    /// Wall seconds (fastest repeat, summed across problems).
    secs: f64,
    /// Decode (completion) tokens produced.
    tokens: u64,
    /// Decode throughput.
    tokens_per_sec: f64,
}

#[derive(Serialize)]
struct PerProblem {
    /// Problem id.
    id: String,
    /// Forced prompt tokens (description + module header).
    prompt_tokens: u64,
    /// Completion tokens across the n samples.
    decode_tokens: u64,
    /// Fastest naive wall time.
    naive_secs: f64,
    /// Fastest session wall time.
    session_secs: f64,
    /// Completion tokens across the n samples on the int8 path (may
    /// differ from `decode_tokens`: quantization perturbs the logits).
    int8_tokens: u64,
    /// Fastest int8 session wall time.
    int8_secs: f64,
}

#[derive(Serialize)]
struct EquivalenceReport {
    /// Problems swept (golden vs golden, so every verdict is Pass).
    problems: u64,
    /// Checks that ran the exhaustive input sweep.
    exhaustive: u64,
    /// Checks that fell back to stimulus vectors (sequential or over the
    /// input-bit cap).
    fallback: u64,
    /// Total input vectors driven across both backends.
    vectors: u64,
    /// Wall seconds (fastest repeat).
    secs: f64,
    /// Vector throughput.
    vectors_per_sec: f64,
}

#[derive(Serialize)]
struct BenchReport {
    /// `std::thread::available_parallelism()` on the benchmarking host.
    host_parallelism: u64,
    /// Problems in the workload.
    problems: u64,
    /// Samples per problem (the pass@k n).
    samples_per_problem: u64,
    /// Max new tokens per completion.
    max_new_tokens: u64,
    /// Repeats per measurement (fastest wins).
    repeats: u64,
    /// Legacy per-sample loop.
    naive: PathReport,
    /// Shared-prefill, batched `DecodeSession`.
    session: PathReport,
    /// The same session engine with int8-quantized weights.
    session_int8: PathReport,
    /// Session decode throughput over naive (same token count, so this
    /// is also the wall-time ratio).
    speedup_vs_naive: f64,
    /// Int8 session decode throughput over the f32 session (tokens/sec
    /// ratio — the two paths produce different token counts).
    speedup_int8_vs_session: f64,
    /// Equivalence-mode functional scoring (`eval --check equivalence`):
    /// golden designs checked against themselves with the exhaustive
    /// input sweep, bounded by the default input-bit cap.
    equivalence: EquivalenceReport,
    /// Per-problem wall times.
    per_problem: Vec<PerProblem>,
}

fn path(kernel: &str, secs: f64, tokens: u64) -> PathReport {
    PathReport {
        kernel: kernel.to_owned(),
        secs,
        tokens,
        tokens_per_sec: if secs > 0.0 { tokens as f64 / secs } else { 0.0 },
    }
}

fn main() {
    let scale = Scale::from_env();
    let (n_problems, n_samples, max_new, repeats) = match scale {
        Scale::Quick => (4usize, 6u32, 32usize, 2usize),
        Scale::Full => (10, 10, 96, 3),
    };

    // An eval-sized model (bigger than the train bench's: inference is
    // cheap enough per token that a realistic depth/width is affordable
    // and makes the prefill/batching wins representative). Untrained
    // weights are fine — both paths sample the same ids either way.
    let problems: Vec<_> = machine_split().into_iter().take(n_problems).collect();
    let corpus: Vec<String> =
        problems.iter().map(|p| format!("{} {}", p.prompt(), p.header())).collect();
    let tk = Tokenizer::build(corpus.iter().map(String::as_str), 1);
    let cfg = ModelConfig {
        name: "bench-eval".into(),
        d_model: 128,
        n_layers: 3,
        n_heads: 4,
        d_ff: 256,
        max_seq: 384,
        learning_rate: 1e-3,
        seed: 11,
    };
    let lm = TransformerLm::new(cfg, tk.vocab_size());

    // The exact harness workload: header forced as a generation prefix,
    // per-sample temperature cycle, per-sample RNG streams.
    let seed = 0xEA_11u64;
    let mut per_problem = Vec::new();
    let (mut naive_secs, mut session_secs, mut int8_secs) = (0.0f64, 0.0f64, 0.0f64);
    let (mut decode_tokens, mut int8_tokens) = (0u64, 0u64);
    for problem in &problems {
        let header_ids = tk.encode(&problem.header());
        let mut prompt = tk.encode_prompt(&problem.prompt());
        prompt.extend_from_slice(&header_ids);
        let sample_opts: Vec<SampleOptions> = (0..n_samples)
            .map(|i| SampleOptions { temperature: sample_temperature(i, n_samples, 0.5), top_k: 0 })
            .collect();
        let rngs = || -> Vec<ChaCha8Rng> {
            (0..n_samples)
                .map(|i| {
                    ChaCha8Rng::seed_from_u64(stream_seed_str(seed, &format!("{}#{i}", problem.id)))
                })
                .collect()
        };

        let mut best_naive = f64::INFINITY;
        let mut naive_out: Vec<Vec<usize>> = Vec::new();
        for _ in 0..repeats {
            let mut rngs = rngs();
            let start = Instant::now();
            let out: Vec<Vec<usize>> = sample_opts
                .iter()
                .zip(rngs.iter_mut())
                .map(|(so, rng)| lm.generate_legacy(&prompt, max_new, so, rng))
                .collect();
            best_naive = best_naive.min(start.elapsed().as_secs_f64());
            naive_out = out;
        }

        let mut best_session = f64::INFINITY;
        let mut session_out: Vec<Vec<usize>> = Vec::new();
        for _ in 0..repeats {
            let mut rngs = rngs();
            let start = Instant::now();
            let mut session = DecodeSession::new(&lm);
            let prefix = session.prefill(&prompt, max_new);
            let gens = session.decode_batch(&prefix, max_new, &sample_opts, &mut rngs);
            best_session = best_session.min(start.elapsed().as_secs_f64());
            session_out = gens.into_iter().map(|g| g.ids).collect();
        }

        let mut best_int8 = f64::INFINITY;
        let mut int8_out: Vec<Vec<usize>> = Vec::new();
        for _ in 0..repeats {
            let mut rngs = rngs();
            let start = Instant::now();
            let mut session = DecodeSession::new_with(&lm, KernelMode::QuantizedInt8);
            let prefix = session.prefill(&prompt, max_new);
            let gens = session.decode_batch(&prefix, max_new, &sample_opts, &mut rngs);
            best_int8 = best_int8.min(start.elapsed().as_secs_f64());
            int8_out = gens.into_iter().map(|g| g.ids).collect();
        }

        assert_eq!(session_out, naive_out, "engines diverged on {}", problem.id);
        let tokens: u64 = naive_out.iter().map(|b| b.len() as u64).sum();
        let q_tokens: u64 = int8_out.iter().map(|b| b.len() as u64).sum();
        eprintln!(
            "{:<24} prompt {:>3} tok, {tokens:>4} decode tok: naive {:.3}s, session {:.3}s \
             ({:.2}x), int8 {q_tokens:>4} tok {best_int8:.3}s",
            problem.id,
            prompt.len(),
            best_naive,
            best_session,
            if best_session > 0.0 { best_naive / best_session } else { 1.0 },
        );
        naive_secs += best_naive;
        session_secs += best_session;
        int8_secs += best_int8;
        decode_tokens += tokens;
        int8_tokens += q_tokens;
        per_problem.push(PerProblem {
            id: problem.id.clone(),
            prompt_tokens: prompt.len() as u64,
            decode_tokens: tokens,
            naive_secs: best_naive,
            session_secs: best_session,
            int8_tokens: q_tokens,
            int8_secs: best_int8,
        });
    }

    let naive = path("blocked", naive_secs, decode_tokens);
    let session = path("blocked", session_secs, decode_tokens);
    let session_int8 = path("int8", int8_secs, int8_tokens);
    let speedup = if session.secs > 0.0 { naive.secs / session.secs } else { 1.0 };
    let speedup_int8 = if session.tokens_per_sec > 0.0 {
        session_int8.tokens_per_sec / session.tokens_per_sec
    } else {
        1.0
    };
    eprintln!(
        "total: naive {:.3}s ({:.0} tok/s) vs session {:.3}s ({:.0} tok/s) — {speedup:.2}x",
        naive.secs, naive.tokens_per_sec, session.secs, session.tokens_per_sec
    );
    eprintln!(
        "total: int8 session {:.3}s ({:.0} tok/s) — {speedup_int8:.2}x f32 session tokens/sec",
        session_int8.secs, session_int8.tokens_per_sec
    );

    // Equivalence-mode scoring row: drive every golden design against
    // itself with the exhaustive-sweep strategy. Pure simulator work — no
    // decode happens here, so the decode.* counters audited below are
    // untouched by this section.
    let mut eq_secs = f64::INFINITY;
    let mut eq_stats = SimStats::default();
    for _ in 0..repeats {
        let start = Instant::now();
        let mut stats = SimStats::default();
        for problem in &problems {
            let golden = golden_source(&problem.family);
            let mut bench = ProblemBench::new_with_check(
                &problem.family,
                SimMode::Compiled,
                CheckStrategy::Equivalence { max_input_bits: DEFAULT_MAX_EQ_INPUTS },
            );
            let v = bench.check(&golden);
            assert!(v.is_pass(), "golden design fails self-equivalence on {}", problem.id);
            stats.merge(&bench.stats);
        }
        eq_secs = eq_secs.min(start.elapsed().as_secs_f64());
        eq_stats = stats;
    }
    let equivalence = EquivalenceReport {
        problems: problems.len() as u64,
        exhaustive: eq_stats.exhaustive_checks,
        fallback: eq_stats.fallback_checks,
        vectors: eq_stats.vectors,
        secs: eq_secs,
        vectors_per_sec: if eq_secs > 0.0 { eq_stats.vectors as f64 / eq_secs } else { 0.0 },
    };
    assert_eq!(
        equivalence.exhaustive + equivalence.fallback,
        equivalence.problems,
        "every problem resolves to exactly one strategy"
    );
    eprintln!(
        "equivalence: {} problem(s), {} exhaustive / {} fallback, {} vectors in {:.3}s \
         ({:.0} vec/s)",
        equivalence.problems,
        equivalence.exhaustive,
        equivalence.fallback,
        equivalence.vectors,
        equivalence.secs,
        equivalence.vectors_per_sec
    );

    let report = BenchReport {
        host_parallelism: std::thread::available_parallelism().map_or(1, |p| p.get()) as u64,
        problems: problems.len() as u64,
        samples_per_problem: u64::from(n_samples),
        max_new_tokens: max_new as u64,
        repeats: repeats as u64,
        naive,
        session,
        session_int8,
        speedup_vs_naive: speedup,
        speedup_int8_vs_session: speedup_int8,
        equivalence,
        per_problem,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write("BENCH_eval.json", &json).expect("write BENCH_eval.json");
    println!("{json}");
    eprintln!("wrote BENCH_eval.json");

    // The session path runs through the instrumented engine, so the global
    // registry must have seen every fork and decode token (`repeats`
    // passes per problem). Export the snapshot next to the wall-time
    // report and cross-check it against the independent count above.
    let snap = pyranet::obs::global().snapshot();
    let forks = snap.counter("decode.forks").unwrap_or(0);
    let engine_tokens = snap.counter("decode.tokens").unwrap_or(0);
    // Both instrumented session paths (f32 and int8) fork n_samples
    // sequences per repeat per problem.
    assert_eq!(
        forks,
        report.problems * report.samples_per_problem * report.repeats * 2,
        "every repeat of both session paths forks n_samples sequences"
    );
    assert_eq!(
        engine_tokens,
        (decode_tokens + int8_tokens) * report.repeats,
        "engine token count drifted"
    );
    std::fs::write("BENCH_eval_metrics.json", snap.to_json()).expect("write metrics snapshot");
    eprintln!("wrote BENCH_eval_metrics.json ({} metric(s))", snap.entries.len());
}
