//! Regenerates **Table I**: PyraNet vs SOTA models on the
//! VerilogEval-substitute (pass@1/5/10, Machine + Human).
//!
//! Rows, in paper order:
//! MG-Verilog / RTLCoder / OriGen comparators, then for each base
//! (CodeLlama-7B, CodeLlama-13B, DeepSeek-Coder-7B analogues) the
//! baseline, PyraNet-Dataset and PyraNet-Architecture variants.
//!
//! `PYRANET_SCALE=quick` shrinks the run for smoke testing.

use pyranet::experiment::{evaluate_model, Recipe};
use pyranet::{Experiment, ModelConfig, PyraNetBuilder};
use pyranet_bench::{format_table, save_table1, Scale, Table1Results, TableRow};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let t0 = Instant::now();
    eprintln!("[table1] building dataset ({scale:?}) …");
    let built = PyraNetBuilder::new(scale.build_options()).build();
    eprintln!(
        "[table1] curated {} samples (layers {:?}) in {:.1?}",
        built.dataset.len(),
        built.dataset.layer_counts(),
        t0.elapsed()
    );
    let experiment = Experiment::new(built.dataset);
    let opts = scale.experiment_options();

    let mut results = Table1Results::default();

    // Comparator rows: the paper pairs MG-Verilog with CodeLlama-7B and
    // RTLCoder/OriGen with DeepSeek-Coder.
    let comparators: [(ModelConfig, Recipe, &str); 3] = [
        (ModelConfig::codellama_7b(), Recipe::MgVerilog, "MG-Verilog-CodeLlama-7B [23]"),
        (ModelConfig::deepseek_7b(), Recipe::RtlCoder, "RTLCoder-DeepSeek [18]"),
        (ModelConfig::deepseek_7b(), Recipe::OriGen, "OriGen-DeepSeek [22]"),
    ];
    for (cfg, recipe, label) in comparators {
        let t = Instant::now();
        let base = experiment.pretrain_base(&cfg, &opts);
        let run = experiment.run(&base, recipe, &opts);
        let evals = evaluate_model(&run.model, &experiment.tokenizer, &opts.eval);
        eprintln!("[table1] {label}: {:.1?}", t.elapsed());
        results.rows.push(TableRow { name: label.to_owned(), values: evals.row() });
    }

    // Base-model triplets.
    for cfg in ModelConfig::all_bases() {
        let t = Instant::now();
        let base = experiment.pretrain_base(&cfg, &opts);
        for recipe in [Recipe::Baseline, Recipe::PyraNetDataset, Recipe::PyraNetArchitecture] {
            let run = experiment.run(&base, recipe, &opts);
            let evals = evaluate_model(&run.model, &experiment.tokenizer, &opts.eval);
            results.rows.push(TableRow { name: run.name.clone(), values: evals.row() });
            eprintln!(
                "[table1] {}: M p@1 {:.1}, H p@1 {:.1}",
                run.name,
                evals.machine.pass_at(1),
                evals.human.pass_at(1)
            );
        }
        eprintln!("[table1] base {} done in {:.1?}", cfg.name, t.elapsed());
    }

    println!(
        "{}",
        format_table(
            "TABLE I — PyraNet vs SOTA models on the VerilogEval substitute",
            &results.rows
        )
    );
    match save_table1(&results) {
        Ok(path) => eprintln!("[table1] cached results at {}", path.display()),
        Err(e) => eprintln!("[table1] warning: could not cache results: {e}"),
    }
    eprintln!("[table1] total {:.1?}", t0.elapsed());
}
