//! Regenerates **Table IV**: results for the erroneous (label-shuffled)
//! dataset vs the correct dataset, CodeLlama-7B analogue (§IV-E).
//!
//! The paper shuffles codes, descriptions and rankings across rows, then
//! fine-tunes plainly; the degraded scores validate the real labels.

use pyranet::experiment::{evaluate_model, Recipe};
use pyranet::{Experiment, ModelConfig, PyraNetBuilder};
use pyranet_bench::{format_table, Scale, TableRow};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let t0 = Instant::now();
    eprintln!("[table4] building dataset ({scale:?}) …");
    let built = PyraNetBuilder::new(scale.build_options()).build();
    let experiment = Experiment::new(built.dataset);
    let opts = scale.experiment_options();
    let cfg = ModelConfig::codellama_7b();
    let base = experiment.pretrain_base(&cfg, &opts);

    let mut rows = Vec::new();
    for (recipe, label) in [
        (Recipe::Erroneous, "CodeLlama-7B with erroneous dataset"),
        (Recipe::PyraNetDataset, "CodeLlama-7B with correct dataset"),
    ] {
        let t = Instant::now();
        let run = experiment.run(&base, recipe, &opts);
        let evals = evaluate_model(&run.model, &experiment.tokenizer, &opts.eval);
        eprintln!("[table4] {label}: {:.1?}", t.elapsed());
        rows.push(TableRow { name: label.to_owned(), values: evals.row() });
    }
    println!("{}", format_table("TABLE IV — results for erroneous dataset", &rows));
    let bad = rows[0].values;
    let good = rows[1].values;
    let degraded = (0..6).filter(|&i| good[i] >= bad[i]).count();
    println!(
        "correct dataset >= erroneous dataset on {degraded}/6 metrics \
         (the paper finds degradation across the board)"
    );
    eprintln!("[table4] total {:.1?}", t0.elapsed());
}
