//! Regenerates **Fig. 1-a**: the six-layer PyraNet dataset pyramid with
//! per-layer sample counts and rank bands.

use pyranet::{Layer, PyraNetBuilder};
use pyranet_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let built = PyraNetBuilder::new(scale.build_options()).build();
    let counts = built.dataset.layer_counts();
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    println!("FIG. 1-a — PyraNet dataset architecture (pyramid of quality tiers)");
    println!();
    for layer in Layer::ALL {
        let n = counts[layer.index() - 1];
        let band = match layer.rank_band() {
            Some((lo, hi)) if lo == hi => format!("rank {lo}"),
            Some((lo, hi)) => format!("ranks {hi}-{lo}", hi = hi, lo = lo),
            None => "dependency issues / rank 0".to_owned(),
        };
        let bar_len = (n * 48).div_ceil(max).max(usize::from(n > 0));
        println!("  {:<8} {:<28} {:>7}  |{}", layer.to_string(), band, n, "#".repeat(bar_len));
    }
    println!();
    println!(
        "paper scale for comparison: L1 235, L2 150,279, L3 105,973, L4 5,015, L5 275, L6 430,461"
    );
    println!("loss weights (Fig. 1-b): 1.0, 0.8, 0.6, 0.4, 0.2, 0.1");
}
