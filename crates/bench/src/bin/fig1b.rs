//! Regenerates **Fig. 1-b**: the PyraNet fine-tuning architecture — the
//! phase schedule with per-layer loss weights and within-layer curriculum.

use pyranet::train::PyraNetTrainer;

fn main() {
    println!("FIG. 1-b — PyraNet fine-tuning architecture");
    println!();
    println!("Layers are visited apex -> base; inside each layer the curriculum");
    println!("runs Basic -> Intermediate -> Advanced -> Expert.");
    println!();
    let mut current_layer = None;
    for (i, (layer, tier, weight)) in PyraNetTrainer::schedule().into_iter().enumerate() {
        if current_layer != Some(layer) {
            println!("  {layer} (loss weight {weight:.1}):");
            current_layer = Some(layer);
        }
        println!("    phase {:>2}: fine-tune on {tier} samples", i + 1);
    }
}
