//! Regenerates **Table III**: PyraNet gains vs baseline models and SOTA.
//!
//! Derived from the Table I results — run `table1` first (this binary
//! reads the cache at `target/pyranet-results/table1.json` and exits with
//! an explanation otherwise).

use pyranet_bench::{load_table1, Table1Results};

fn gain(a: &[f64; 6], b: &[f64; 6]) -> [f64; 6] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2], a[3] - b[3], a[4] - b[4], a[5] - b[5]]
}

fn print_row(label: &str, vs: &str, g: &[f64; 6]) {
    println!(
        "  {label:<46} {vs:<16} {:>6.1} {:>6.1} {:>6.1} | {:>6.1} {:>6.1} {:>6.1}",
        g[0], g[1], g[2], g[3], g[4], g[5]
    );
}

fn main() {
    let Some(results): Option<Table1Results> = load_table1() else {
        eprintln!(
            "table3: no cached Table I results found.\n\
             Run `cargo run -p pyranet-bench --release --bin table1` first."
        );
        std::process::exit(2);
    };
    let get = |name: &str| -> Option<[f64; 6]> { results.row(name).map(|r| r.values) };

    println!("TABLE III — PyraNet gains vs baseline model and SOTA (percentage points)");
    println!(
        "  {:<46} {:<16} {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}",
        "Model", "vs", "M p@1", "M p@5", "M p@10", "H p@1", "H p@5", "H p@10"
    );

    let pairs = [
        ("codeLlama-7B-analog PyraNet-Dataset", "codeLlama-7B-analog (baseline)", "vs Baseline"),
        ("codeLlama-7B-analog PyraNet-Dataset", "MG-Verilog-CodeLlama-7B [23]", "vs MG-Verilog"),
        (
            "codeLlama-7B-analog PyraNet-Architecture",
            "codeLlama-7B-analog (baseline)",
            "vs Baseline",
        ),
        (
            "codeLlama-7B-analog PyraNet-Architecture",
            "MG-Verilog-CodeLlama-7B [23]",
            "vs MG-Verilog",
        ),
        ("codeLlama-13B-analog PyraNet-Dataset", "codeLlama-13B-analog (baseline)", "vs Baseline"),
        ("codeLlama-13B-analog PyraNet-Dataset", "MG-Verilog-CodeLlama-7B [23]", "vs MG-Verilog"),
        (
            "codeLlama-13B-analog PyraNet-Architecture",
            "codeLlama-13B-analog (baseline)",
            "vs Baseline",
        ),
        (
            "codeLlama-13B-analog PyraNet-Architecture",
            "MG-Verilog-CodeLlama-7B [23]",
            "vs MG-Verilog",
        ),
        (
            "DeepSeek-Coder-7B-analog PyraNet-Dataset",
            "DeepSeek-Coder-7B-analog (baseline)",
            "vs Baseline",
        ),
        ("DeepSeek-Coder-7B-analog PyraNet-Dataset", "RTLCoder-DeepSeek [18]", "vs RTL-Coder"),
        ("DeepSeek-Coder-7B-analog PyraNet-Dataset", "OriGen-DeepSeek [22]", "vs OriGen"),
        (
            "DeepSeek-Coder-7B-analog PyraNet-Architecture",
            "DeepSeek-Coder-7B-analog (baseline)",
            "vs Baseline",
        ),
        ("DeepSeek-Coder-7B-analog PyraNet-Architecture", "RTLCoder-DeepSeek [18]", "vs RTL-Coder"),
        ("DeepSeek-Coder-7B-analog PyraNet-Architecture", "OriGen-DeepSeek [22]", "vs OriGen"),
    ];

    for (model, against, label) in pairs {
        match (get(model), get(against)) {
            (Some(a), Some(b)) => print_row(model, label, &gain(&a, &b)),
            _ => eprintln!("table3: missing row `{model}` or `{against}` in cache"),
        }
    }
}
