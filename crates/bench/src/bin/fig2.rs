//! Regenerates **Fig. 2**: the commercial-LLM generation pipeline —
//! keyword database -> expanded keywords -> crafted prompts -> 10
//! temperature-varied queries each.

use pyranet::corpus::keywords::{craft_prompt, expanded_keywords, keyword_database};
use pyranet::corpus::llmgen::{run_generation, TEMPERATURES};
use rand::SeedableRng;

fn main() {
    let db = keyword_database();
    let expanded = expanded_keywords();
    println!("FIG. 2 — Verilog code generation using commercial LLMs");
    println!();
    println!("  stage 1: keyword database               {:>6} keywords", db.len());
    println!("  stage 2: expanded keywords              {:>6} variants", expanded.len());
    println!("  stage 3: crafted prompts                {:>6} prompts", expanded.len());
    println!(
        "  stage 4: queries (x{} temperatures)     {:>6} responses",
        TEMPERATURES.len(),
        expanded.len() * TEMPERATURES.len()
    );
    println!();
    println!("  example expansion: `{}` -> `{}`", expanded[2].base, expanded[2].phrase);
    println!("  example prompt:\n    {}", craft_prompt(&expanded[2]));
    println!();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
    let (responses, funnel) = run_generation(&mut rng, 0);
    let clean = responses
        .iter()
        .filter(|r| pyranet::verilog::check_source(&r.sample.source).is_clean())
        .count();
    println!(
        "  measured: {} responses generated, {} syntactically clean ({:.1}%)",
        funnel.responses,
        clean,
        100.0 * clean as f64 / funnel.responses as f64
    );
    println!("  (paper scale: ~150,000 generated samples)");
}
