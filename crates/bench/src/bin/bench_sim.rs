//! Simulation-backend benchmark: the testbench scoring workload (random
//! stimulus vectors through the golden models of the eval problems) timed
//! on both simulation backends, written to `BENCH_sim.json`.
//!
//! * **reference** — the event-driven interpreter walking the elaborated
//!   AST for every evaluation.
//! * **compiled** — the bytecode VM: each design lowered once to flat
//!   stack-machine instruction streams with fixed evaluation schedules,
//!   then run with pre-sized, allocation-free state.
//!
//! Both backends are driven with identical per-design RNG streams and
//! must produce identical output traces (asserted every repeat) — the
//! speedup is pure engineering, not a semantics change. Vectors/sec
//! counts stimulus vectors (one input assignment sweep + optional clock
//! edge + full output readback each).
//!
//! Honours `PYRANET_SCALE` (`quick` for the CI smoke run, `full` default).

use pyranet::eval::machine_split;
use pyranet::verilog::{SimDesign, SimMode};
use pyranet_bench::Scale;
use pyranet_corpus::gen::generate;
use pyranet_corpus::style::StyleOptions;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct PathReport {
    /// Wall seconds (fastest repeat, summed across designs).
    secs: f64,
    /// Stimulus vectors driven.
    vectors: u64,
    /// Vector throughput.
    vectors_per_sec: f64,
}

#[derive(Serialize)]
struct PerDesign {
    /// Problem id whose golden model is benchmarked.
    id: String,
    /// Stimulus vectors per repeat.
    vectors: u64,
    /// Whether the design is clocked (a clock edge per vector).
    clocked: bool,
    /// Fastest reference wall time.
    reference_secs: f64,
    /// Fastest compiled wall time.
    compiled_secs: f64,
}

#[derive(Serialize)]
struct BenchReport {
    /// `std::thread::available_parallelism()` on the benchmarking host.
    host_parallelism: u64,
    /// Designs in the workload.
    designs: u64,
    /// Stimulus vectors per design.
    vectors_per_design: u64,
    /// Repeats per measurement (fastest wins).
    repeats: u64,
    /// Event-driven interpreter.
    reference: PathReport,
    /// Bytecode VM.
    compiled: PathReport,
    /// Compiled throughput over reference (same vector count, so this is
    /// also the wall-time ratio).
    speedup_vs_reference: f64,
    /// Per-design wall times.
    per_design: Vec<PerDesign>,
}

fn path(secs: f64, vectors: u64) -> PathReport {
    PathReport {
        secs,
        vectors,
        vectors_per_sec: if secs > 0.0 { vectors as f64 / secs } else { 0.0 },
    }
}

/// One timed pass: instantiate the design and drive `vectors` random
/// stimulus vectors, returning the full output trace for the identity
/// assertion. Instantiation is inside the timed region — it is per-
/// candidate work in the eval harness, and both backends pay it.
fn drive(
    design: &SimDesign,
    inputs: &[(String, bool)],
    outputs: &[String],
    clock: Option<&str>,
    reset: Option<&str>,
    vectors: usize,
    mut rng: ChaCha8Rng,
) -> Vec<u64> {
    let mut sim = design.instantiate().expect("instantiate golden design");
    if let (Some(clk), Some(rst)) = (clock, reset) {
        sim.set(rst, 1).expect("set reset");
        sim.clock(clk).expect("reset pulse");
        sim.set(rst, 0).expect("clear reset");
    }
    let mut trace = Vec::with_capacity(vectors * outputs.len());
    for _ in 0..vectors {
        for (name, is_clock) in inputs {
            if !is_clock {
                sim.set(name, rng.random::<u64>()).expect("set input");
            }
        }
        if let Some(clk) = clock {
            sim.clock(clk).expect("clock");
        }
        for name in outputs {
            trace.push(sim.get(name).expect("read output").as_u64());
        }
    }
    trace
}

fn main() {
    let scale = Scale::from_env();
    let (n_designs, vectors, repeats) = match scale {
        Scale::Quick => (6usize, 300usize, 2usize),
        Scale::Full => (15, 2_000, 3),
    };

    let problems: Vec<_> = machine_split().into_iter().take(n_designs).collect();
    let mut per_design = Vec::new();
    let (mut reference_secs, mut compiled_secs) = (0.0f64, 0.0f64);
    let mut total_vectors = 0u64;
    for problem in &problems {
        // Same seed as the eval testbench, so this benchmarks the exact
        // golden models the harness scores against.
        let mut gen_rng = ChaCha8Rng::seed_from_u64(0x601D);
        let golden = generate(&problem.family, &StyleOptions::clean(), &mut gen_rng);
        let clock = golden.port("clock").map(str::to_owned);
        let reset = golden.port("reset").map(str::to_owned);

        let build = |mode| {
            SimDesign::build(&golden.source, &golden.module.name, mode).expect("build golden")
        };
        let reference = build(SimMode::Reference);
        let compiled = build(SimMode::Compiled);
        assert!(compiled.is_compiled(), "golden model `{}` fell back to reference", problem.id);

        let probe = reference.instantiate().expect("probe interface");
        let inputs: Vec<(String, bool)> = probe
            .inputs()
            .iter()
            .map(|n| (n.clone(), Some(n.as_str()) == clock.as_deref()))
            .collect();
        let outputs: Vec<String> = probe.outputs().to_vec();
        drop(probe);

        let stimulus =
            || ChaCha8Rng::seed_from_u64(pyranet_exec::stream_seed_str(0x51AB, &problem.id));
        let run = |design: &SimDesign| {
            let mut best = f64::INFINITY;
            let mut trace = Vec::new();
            for _ in 0..repeats {
                let start = Instant::now();
                let t = drive(
                    design,
                    &inputs,
                    &outputs,
                    clock.as_deref(),
                    reset.as_deref(),
                    vectors,
                    stimulus(),
                );
                best = best.min(start.elapsed().as_secs_f64());
                trace = t;
            }
            (best, trace)
        };

        let (best_ref, trace_ref) = run(&reference);
        let (best_cmp, trace_cmp) = run(&compiled);
        assert_eq!(trace_cmp, trace_ref, "backends diverged on {}", problem.id);

        eprintln!(
            "{:<24} {vectors:>5} vectors: reference {:.4}s, compiled {:.4}s ({:.2}x)",
            problem.id,
            best_ref,
            best_cmp,
            if best_cmp > 0.0 { best_ref / best_cmp } else { 1.0 },
        );
        reference_secs += best_ref;
        compiled_secs += best_cmp;
        total_vectors += vectors as u64;
        per_design.push(PerDesign {
            id: problem.id.clone(),
            vectors: vectors as u64,
            clocked: clock.is_some(),
            reference_secs: best_ref,
            compiled_secs: best_cmp,
        });
    }

    let reference = path(reference_secs, total_vectors);
    let compiled = path(compiled_secs, total_vectors);
    let speedup = if compiled.secs > 0.0 { reference.secs / compiled.secs } else { 1.0 };
    eprintln!(
        "total: reference {:.3}s ({:.0} vec/s) vs compiled {:.3}s ({:.0} vec/s) — {speedup:.2}x",
        reference.secs, reference.vectors_per_sec, compiled.secs, compiled.vectors_per_sec
    );

    let report = BenchReport {
        host_parallelism: std::thread::available_parallelism().map_or(1, |p| p.get()) as u64,
        designs: problems.len() as u64,
        vectors_per_design: vectors as u64,
        repeats: repeats as u64,
        reference,
        compiled,
        speedup_vs_reference: speedup,
        per_design,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("{json}");
    eprintln!("wrote BENCH_sim.json");
}
