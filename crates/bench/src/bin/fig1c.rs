//! Regenerates **Fig. 1-c**: the evaluation process — prompt, n sampled
//! completions, syntax + functional checking, pass@k.

use pyranet::eval::{machine_split, pass_at_k};

fn main() {
    println!("FIG. 1-c — evaluation process");
    println!();
    println!("  description --(prompt)--> fine-tuned model --(n samples)--> candidates");
    println!("  candidates --> syntax check --> functional simulation vs golden model");
    println!("  pass counts --> unbiased pass@k = 1 - C(n-c,k)/C(n,k)");
    println!();
    let problems = machine_split();
    println!("  benchmark: {} problems per split, 2 splits (Machine / Human)", problems.len());
    println!("  example problems:");
    for p in problems.iter().take(4) {
        println!("    {:<28} {}", p.id, truncate(&p.description, 70));
    }
    println!();
    println!(
        "  estimator sanity: n=10, c=3 -> pass@1 {:.3}, pass@5 {:.3}, pass@10 {:.3}",
        pass_at_k(10, 3, 1),
        pass_at_k(10, 3, 5),
        pass_at_k(10, 3, 10)
    );
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_owned()
    } else {
        format!("{}…", &s[..n])
    }
}
