//! Ablation study: PyraNet-Architecture vs its two ingredients in
//! isolation — loss weighting only, curriculum only — plus plain SFT.
//!
//! DESIGN.md calls out the combination of the two techniques as the
//! paper's core design choice; this bench separates their contributions.

use pyranet::experiment::{evaluate_model, Recipe};
use pyranet::{Experiment, ModelConfig, PyraNetBuilder};
use pyranet_bench::{format_table, Scale, TableRow};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let t0 = Instant::now();
    eprintln!("[ablation] building dataset ({scale:?}) …");
    let built = PyraNetBuilder::new(scale.build_options()).build();
    let experiment = Experiment::new(built.dataset);
    let opts = scale.experiment_options();
    let cfg = ModelConfig::codellama_7b();
    let base = experiment.pretrain_base(&cfg, &opts);

    let mut rows = Vec::new();
    for recipe in [
        Recipe::PyraNetDataset,
        Recipe::WeightingOnly,
        Recipe::CurriculumOnly,
        Recipe::PyraNetArchitecture,
    ] {
        let t = Instant::now();
        let run = experiment.run(&base, recipe, &opts);
        let evals = evaluate_model(&run.model, &experiment.tokenizer, &opts.eval);
        eprintln!("[ablation] {}: {:.1?}", run.name, t.elapsed());
        rows.push(TableRow { name: run.name, values: evals.row() });
    }
    println!(
        "{}",
        format_table("ABLATION — loss weighting and curriculum, separately and combined", &rows)
    );
    eprintln!("[ablation] total {:.1?}", t0.elapsed());
}
