//! Incremental-rebuild benchmark: cold vs warm vs 1%-mutated pipeline
//! runs against a content-addressed artifact cache, written to
//! `BENCH_cache.json`.
//!
//! The cache contract (tests/incremental_cache.rs) says the store is
//! invisible in the output; this binary measures how much wall time it
//! saves and re-checks the byte-identity claims on the benchmarked
//! corpus: cold, warm, and mutated-then-reverted runs at 1/2/8 threads
//! must all produce the same FNV digest. At Full scale
//! (`PYRANET_SCALE` unset) the warm/mutated speedups are asserted:
//! warm >= 5x cold, mutated >= 3x cold.

use pyranet::corpus::{CorpusBuilder, RawSample};
use pyranet::pipeline::persist::{fnv1a64, format_checksum};
use pyranet::pipeline::Pipeline;
use pyranet_bench::Scale;
use serde::Serialize;
use std::path::Path;

/// Repeats per scenario; the fastest wall time is reported.
const REPEATS: usize = 3;
/// Thread counts the digest identity is re-checked at.
const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

#[derive(Serialize)]
struct ScenarioReport {
    /// Wall seconds for the curation run (fastest repeat).
    secs: f64,
    /// Curation speedup versus the cold run.
    speedup_vs_cold: f64,
    /// `cache.hits` delta during the fastest repeat.
    cache_hits: u64,
    /// `cache.misses` delta during the fastest repeat.
    cache_misses: u64,
    /// `cache.writes` delta during the fastest repeat.
    cache_writes: u64,
    /// FNV digest of the curated dataset's JSONL bytes.
    digest: String,
}

#[derive(Serialize)]
struct BenchReport {
    /// `std::thread::available_parallelism()` on the benchmarking host.
    host_parallelism: u64,
    /// Files in the benchmarked pool.
    pool_files: u64,
    /// Samples mutated for the mutated scenario (~1% of the pool).
    mutated_samples: u64,
    /// Repeats per scenario (fastest wins).
    repeats: u64,
    /// Digest of the uncached reference run — every cached scenario on
    /// the unmutated pool must reproduce it.
    reference_digest: String,
    cold: ScenarioReport,
    warm: ScenarioReport,
    mutated: ScenarioReport,
    /// Warm run over the original pool after the mutated runs — proves
    /// the original artifacts stayed reachable.
    mutated_then_reverted: ScenarioReport,
    /// Warm-run digests at each of [`THREAD_SWEEP`] threads.
    thread_digests: Vec<String>,
}

fn digest(ds: &pyranet::PyraNetDataset) -> String {
    let mut buf = Vec::new();
    ds.to_jsonl(&mut buf).expect("serialize dataset");
    format_checksum(fnv1a64(&buf))
}

fn counter(name: &str) -> u64 {
    pyranet::obs::global().snapshot().counter(name).unwrap_or(0)
}

/// Times one cached curation run; returns (secs, hit/miss/write deltas,
/// digest).
fn timed_run(pool: &[RawSample], cache: &Path, threads: usize) -> (f64, [u64; 3], String) {
    let before = [counter("cache.hits"), counter("cache.misses"), counter("cache.writes")];
    let t = std::time::Instant::now();
    let outcome =
        Pipeline::new().threads(threads).cache_dir(cache.to_path_buf()).run(pool.to_vec());
    let secs = t.elapsed().as_secs_f64();
    let after = [counter("cache.hits"), counter("cache.misses"), counter("cache.writes")];
    (
        secs,
        [after[0] - before[0], after[1] - before[1], after[2] - before[2]],
        digest(&outcome.dataset),
    )
}

/// Fastest-of-[`REPEATS`] over a scenario. `fresh_store` empties the
/// cache dir before every repeat (cold) or reseeds it from `seed_store`
/// (mutated), so no repeat benefits from a previous repeat's writes.
fn scenario(
    pool: &[RawSample],
    cache: &Path,
    seed_store: Option<&Path>,
    fresh_store: bool,
    cold_secs: f64,
) -> ScenarioReport {
    let mut best: Option<(f64, [u64; 3], String)> = None;
    for _ in 0..REPEATS {
        if fresh_store {
            std::fs::remove_dir_all(cache).ok();
            if let Some(seed) = seed_store {
                copy_dir(seed, cache);
            }
        }
        let run = timed_run(pool, cache, 0);
        if best.as_ref().is_none_or(|(b, ..)| run.0 < *b) {
            best = Some(run);
        }
    }
    let (secs, [hits, misses, writes], digest) = best.expect("at least one repeat");
    ScenarioReport {
        secs,
        speedup_vs_cold: if secs > 0.0 { cold_secs / secs } else { 1.0 },
        cache_hits: hits,
        cache_misses: misses,
        cache_writes: writes,
        digest,
    }
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("create copy target");
    for entry in std::fs::read_dir(from).expect("read copy source") {
        let entry = entry.expect("dir entry");
        let target = to.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_dir(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).expect("copy artifact");
        }
    }
}

/// Prepends a comment to ~1% of the pool — enough to dirty the mutated
/// samples' artifacts while everything else stays cache-hot.
fn mutate_one_percent(pool: &[RawSample]) -> (Vec<RawSample>, usize) {
    let step = pool.len().min(100);
    let mut mutated = pool.to_vec();
    let mut count = 0;
    for (i, sample) in mutated.iter_mut().enumerate() {
        if step > 0 && i % step == 0 {
            sample.source = format!("// benchmark mutation\n{}", sample.source);
            count += 1;
        }
    }
    (mutated, count)
}

fn main() {
    let scale = Scale::from_env();
    let opts = scale.build_options();
    let pool = CorpusBuilder::new(opts.seed)
        .scraped_files(opts.scraped_files)
        .llm_generation(false)
        .build()
        .samples;
    let n = pool.len();
    eprintln!("pool: {n} files; {REPEATS} repeats per scenario, fastest wins");

    let reference_digest = digest(&Pipeline::new().run(pool.clone()).dataset);
    let root = std::env::temp_dir().join(format!("pyranet-bench-cache-{}", std::process::id()));
    let store = root.join("store");
    let golden = root.join("golden");
    let scratch = root.join("scratch");

    // Cold: every repeat starts from an empty store.
    let cold = scenario(&pool, &store, None, true, 0.0);
    let cold = ScenarioReport { speedup_vs_cold: 1.0, ..cold };
    eprintln!(
        "cold: {:.3}s ({} miss(es), {} write(s))",
        cold.secs, cold.cache_misses, cold.cache_writes
    );

    // Golden store: one full populate pass, reused read-only below.
    std::fs::remove_dir_all(&store).ok();
    Pipeline::new().cache_dir(store.clone()).run(pool.clone());
    copy_dir(&store, &golden);

    // Warm: repeats against the populated store (pure hits, no writes).
    let warm = scenario(&pool, &store, None, false, cold.secs);
    eprintln!(
        "warm: {:.3}s ({:.1}x cold, {} hit(s))",
        warm.secs, warm.speedup_vs_cold, warm.cache_hits
    );
    assert_eq!(warm.cache_misses, 0, "warm run must not miss");
    assert_eq!(warm.digest, reference_digest, "warm run must be byte-identical to uncached");

    // Mutated: ~1% of samples edited; each repeat reseeds from the
    // golden store so the mutated artifacts are never pre-warmed.
    let (mutated_pool, mutated_samples) = mutate_one_percent(&pool);
    let mutated = scenario(&mutated_pool, &scratch, Some(&golden), true, cold.secs);
    eprintln!(
        "mutated ({mutated_samples} sample(s)): {:.3}s ({:.1}x cold, {} miss(es))",
        mutated.secs, mutated.speedup_vs_cold, mutated.cache_misses
    );
    let mutated_cold_digest = digest(&Pipeline::new().run(mutated_pool.clone()).dataset);
    assert_eq!(mutated.digest, mutated_cold_digest, "mutated run must match its own cold run");

    // Mutated-then-reverted: the scratch store has now seen both
    // generations; running the original pool again must reproduce the
    // reference digest from the surviving original artifacts.
    let mutated_then_reverted = scenario(&pool, &scratch, None, false, cold.secs);
    assert_eq!(
        mutated_then_reverted.digest, reference_digest,
        "reverted run must be byte-identical to the reference"
    );
    eprintln!(
        "reverted: {:.3}s ({:.1}x cold)",
        mutated_then_reverted.secs, mutated_then_reverted.speedup_vs_cold
    );

    // Thread sweep: warm digests at 1/2/8 threads all match.
    let thread_digests: Vec<String> = THREAD_SWEEP
        .iter()
        .map(|&threads| {
            let (_, _, d) = timed_run(&pool, &store, threads);
            assert_eq!(d, reference_digest, "threads={threads}: warm digest drifted");
            d
        })
        .collect();
    eprintln!("thread sweep {THREAD_SWEEP:?}: digests identical");

    if matches!(scale, Scale::Full) {
        assert!(
            warm.speedup_vs_cold >= 5.0,
            "warm rebuild must be >=5x cold (got {:.2}x)",
            warm.speedup_vs_cold
        );
        assert!(
            mutated.speedup_vs_cold >= 3.0,
            "1%-mutated rebuild must be >=3x cold (got {:.2}x)",
            mutated.speedup_vs_cold
        );
    }

    std::fs::remove_dir_all(&root).ok();
    let report = BenchReport {
        host_parallelism: std::thread::available_parallelism().map_or(1, |p| p.get()) as u64,
        pool_files: n as u64,
        mutated_samples: mutated_samples as u64,
        repeats: REPEATS as u64,
        reference_digest,
        cold,
        warm,
        mutated,
        mutated_then_reverted,
        thread_digests,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write("BENCH_cache.json", &json).expect("write BENCH_cache.json");
    println!("{json}");
    eprintln!("wrote BENCH_cache.json");
}
