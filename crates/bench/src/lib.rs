//! Shared harness for the table/figure regeneration binaries.
//!
//! Every binary honours `PYRANET_SCALE`:
//!
//! * `quick` — minutes-scale smoke run (small corpus, few samples);
//! * `full` (default) — the scale used for EXPERIMENTS.md.
//!
//! Results of the expensive Table I run are cached as JSON under
//! `target/pyranet-results/` so Table III can be derived without
//! retraining.

use pyranet::eval::EvalOptions;
use pyranet::train::TrainConfig;
use pyranet::{BuildOptions, ExperimentOptions};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Run scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast smoke run.
    Quick,
    /// The EXPERIMENTS.md scale.
    Full,
}

impl Scale {
    /// Reads `PYRANET_SCALE` (default `full`).
    pub fn from_env() -> Scale {
        match std::env::var("PYRANET_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Full,
        }
    }

    /// Dataset build options for this scale.
    pub fn build_options(self) -> BuildOptions {
        match self {
            Scale::Quick => BuildOptions {
                scraped_files: 200,
                llm_generation: false,
                ..BuildOptions::default()
            },
            Scale::Full => BuildOptions { scraped_files: 1200, ..BuildOptions::default() },
        }
    }

    /// Training/eval options for this scale.
    pub fn experiment_options(self) -> ExperimentOptions {
        match self {
            Scale::Quick => ExperimentOptions {
                train: TrainConfig {
                    epochs: 1,
                    max_examples_per_phase: Some(12),
                    ..TrainConfig::default()
                },
                eval: EvalOptions {
                    samples_per_problem: 3,
                    max_new_tokens: 60,
                    ..EvalOptions::default()
                },
            },
            // No per-phase cap at full scale: every recipe sees the whole
            // dataset (the paper's comparison differs only in ordering and
            // loss weights, not in data volume).
            Scale::Full => ExperimentOptions {
                train: TrainConfig {
                    epochs: 2,
                    max_examples_per_phase: None,
                    ..TrainConfig::default()
                },
                eval: EvalOptions {
                    samples_per_problem: 10,
                    max_new_tokens: 120,
                    ..EvalOptions::default()
                },
            },
        }
    }
}

/// One Table I row, serialisable for the results cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRow {
    /// Row label.
    pub name: String,
    /// machine pass@1/5/10, human pass@1/5/10.
    pub values: [f64; 6],
}

/// Cached results of the Table I run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Table1Results {
    /// Rows in paper order.
    pub rows: Vec<TableRow>,
}

impl Table1Results {
    /// Finds a row by exact name.
    pub fn row(&self, name: &str) -> Option<&TableRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// Directory where result caches live.
pub fn results_dir() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("target");
    p.push("pyranet-results");
    p
}

/// Saves Table I results to the cache.
///
/// # Errors
///
/// Propagates I/O and serialization failures.
pub fn save_table1(results: &Table1Results) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("table1.json");
    std::fs::write(&path, serde_json::to_string_pretty(results)?)?;
    Ok(path)
}

/// Loads cached Table I results, if present.
pub fn load_table1() -> Option<Table1Results> {
    let path = results_dir().join("table1.json");
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// Formats a Table I-style block.
pub fn format_table(title: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<52} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}\n",
        "Model", "M p@1", "M p@5", "M p@10", "H p@1", "H p@5", "H p@10"
    ));
    out.push_str(&"-".repeat(104));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<52} | {:>7.1} {:>7.1} {:>7.1} | {:>7.1} {:>7.1} {:>7.1}\n",
            r.name, r.values[0], r.values[1], r.values[2], r.values[3], r.values[4], r.values[5]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_options_differ() {
        assert_eq!(Scale::Full.build_options().scraped_files, 1200);
        assert_eq!(Scale::Quick.build_options().scraped_files, 200);
        assert!(
            Scale::Full.experiment_options().eval.samples_per_problem
                > Scale::Quick.experiment_options().eval.samples_per_problem
        );
    }

    #[test]
    fn table_formatting_contains_rows() {
        let rows = vec![TableRow { name: "x".into(), values: [1.0, 2.0, 3.0, 4.0, 5.0, 6.0] }];
        let t = format_table("TABLE I", &rows);
        assert!(t.contains("TABLE I"));
        assert!(t.contains("x"));
        assert!(t.contains("6.0"));
    }

    #[test]
    fn results_round_trip_json() {
        let r = Table1Results { rows: vec![TableRow { name: "a".into(), values: [0.0; 6] }] };
        let json = serde_json::to_string(&r).unwrap();
        let back: Table1Results = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
        assert!(back.row("a").is_some());
        assert!(back.row("b").is_none());
    }
}
