//! Criterion benches for the curation pipeline: dedup (LSH vs naive),
//! ranking, and the end-to-end pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pyranet_corpus::CorpusBuilder;
use pyranet_pipeline::dedup::{dedup, dedup_naive};
use pyranet_pipeline::{rank_sample, Pipeline};

fn bench_dedup(c: &mut Criterion) {
    let pool = CorpusBuilder::new(31).scraped_files(300).llm_generation(false).build();
    let mut g = c.benchmark_group("dedup");
    for (label, n) in [("n=100", 100usize), ("n=300", 300)] {
        let subset: Vec<_> = pool.samples.iter().take(n).cloned().collect();
        g.bench_with_input(BenchmarkId::new("minhash_lsh", label), &subset, |b, s| {
            b.iter(|| std::hint::black_box(dedup(s.clone(), 0.85)))
        });
        g.bench_with_input(BenchmarkId::new("naive", label), &subset, |b, s| {
            b.iter(|| std::hint::black_box(dedup_naive(s.clone(), 0.85)))
        });
    }
    g.finish();
}

fn bench_ranking(c: &mut Criterion) {
    let pool = CorpusBuilder::new(32).scraped_files(150).llm_generation(false).build();
    let parsed: Vec<(pyranet_verilog::Module, String)> = pool
        .samples
        .iter()
        .filter_map(|s| {
            pyranet_verilog::parse_module(&s.source).ok().map(|m| (m, s.source.clone()))
        })
        .collect();
    c.bench_function("rank_judge", |b| {
        b.iter(|| {
            for (m, s) in &parsed {
                std::hint::black_box(rank_sample(m, s));
            }
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    c.bench_function("pipeline_200_files", |b| {
        b.iter_with_setup(
            || CorpusBuilder::new(33).scraped_files(200).llm_generation(false).build().samples,
            |pool| std::hint::black_box(Pipeline::new().run(pool)),
        )
    });
}

fn bench_thread_sweep(c: &mut Criterion) {
    // Thread-count sweep over the full curation pipeline. Outputs are
    // identical at every point of the sweep (see tests/determinism.rs);
    // only wall time may differ, and only on multi-core hosts.
    let pool = CorpusBuilder::new(34).scraped_files(400).llm_generation(false).build();
    let mut g = c.benchmark_group("pipeline_threads");
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("curate_400", threads), &threads, |b, &t| {
            b.iter_with_setup(
                || pool.samples.clone(),
                |p| std::hint::black_box(Pipeline::new().threads(t).run(p)),
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dedup, bench_ranking, bench_end_to_end, bench_thread_sweep
}
criterion_main!(benches);
