//! Criterion benches for the neural substrate: training-step and
//! generation throughput (per-token).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pyranet_model::transformer::TrainExample;
use pyranet_model::{Adam, ModelConfig, SampleOptions, Tokenizer, TransformerLm};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn setup() -> (TransformerLm, Tokenizer, Vec<TrainExample>) {
    let corpus = [
        "an inverter",
        "a two input and gate",
        "module inv ( input a , output y ) ; assign y = ~ a ; endmodule",
        "module andg ( input a , input b , output y ) ; assign y = a & b ; endmodule",
    ];
    let tk = Tokenizer::build(corpus.iter().copied(), 1);
    let cfg = ModelConfig::codellama_7b();
    let lm = TransformerLm::new(cfg, tk.vocab_size());
    let exs = vec![
        {
            let (ids, code_start) = tk.encode_pair(corpus[0], corpus[2]);
            TrainExample { ids, code_start, weight: 1.0 }
        },
        {
            let (ids, code_start) = tk.encode_pair(corpus[1], corpus[3]);
            TrainExample { ids, code_start, weight: 0.8 }
        },
    ];
    (lm, tk, exs)
}

fn bench_train_step(c: &mut Criterion) {
    let (lm, _tk, exs) = setup();
    c.bench_function("train_step_batch2", |b| {
        let mut lm = lm.clone();
        let mut opt = Adam::new(lm.trainable_count(), 1e-3);
        b.iter(|| std::hint::black_box(lm.train_step(&exs, &mut opt)))
    });
}

fn bench_generation(c: &mut Criterion) {
    let (lm, tk, _) = setup();
    let prompt = tk.encode_prompt("an inverter");
    let opts = SampleOptions { temperature: 0.7, top_k: 0 };
    let tokens = 64u64;
    let mut g = c.benchmark_group("generate");
    g.throughput(Throughput::Elements(tokens));
    g.bench_function("kv_cached_64_tokens", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        b.iter(|| std::hint::black_box(lm.generate(&prompt, tokens as usize, &opts, &mut rng)))
    });
    g.finish();
}

fn bench_nll(c: &mut Criterion) {
    let (lm, _tk, exs) = setup();
    c.bench_function("nll_forward_only", |b| b.iter(|| std::hint::black_box(lm.nll(&exs[0]))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_train_step, bench_generation, bench_nll
}
criterion_main!(benches);
