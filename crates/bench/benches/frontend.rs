//! Criterion benches for the Verilog front end: lexing, parsing, checking,
//! linting, and simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pyranet_corpus::families::DesignFamily;
use pyranet_corpus::gen::generate;
use pyranet_corpus::style::StyleOptions;
use pyranet_verilog::{check_source, parse, Lexer, Simulator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn sample_sources() -> Vec<String> {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    DesignFamily::catalog()
        .into_iter()
        .map(|f| generate(&f, &StyleOptions::clean(), &mut rng).source)
        .collect()
}

fn bench_lexer(c: &mut Criterion) {
    let sources = sample_sources();
    let bytes: usize = sources.iter().map(|s| s.len()).sum();
    let mut g = c.benchmark_group("frontend");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.bench_function("lex_catalog", |b| {
        b.iter(|| {
            for s in &sources {
                std::hint::black_box(Lexer::new(s).tokenize().expect("lex"));
            }
        })
    });
    g.bench_function("parse_catalog", |b| {
        b.iter(|| {
            for s in &sources {
                std::hint::black_box(parse(s).expect("parse"));
            }
        })
    });
    g.bench_function("check_catalog", |b| {
        b.iter(|| {
            for s in &sources {
                std::hint::black_box(check_source(s));
            }
        })
    });
    g.finish();
}

fn bench_lint_and_metrics(c: &mut Criterion) {
    let sources = sample_sources();
    let modules: Vec<_> =
        sources.iter().map(|s| pyranet_verilog::parse_module(s).expect("parse")).collect();
    c.bench_function("lint_catalog", |b| {
        b.iter(|| {
            for (m, s) in modules.iter().zip(&sources) {
                std::hint::black_box(pyranet_verilog::lint::lint_module(m, s));
            }
        })
    });
    c.bench_function("metrics_catalog", |b| {
        b.iter(|| {
            for m in &modules {
                std::hint::black_box(pyranet_verilog::metrics::measure(m));
            }
        })
    });
}

fn bench_simulation(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let counter = generate(&DesignFamily::Counter { width: 8 }, &StyleOptions::clean(), &mut rng);
    c.bench_function("sim_counter_100_cycles", |b| {
        b.iter(|| {
            let mut sim = Simulator::from_source(&counter.source, "counter_8").expect("build");
            sim.set("rst", 1).expect("set");
            sim.clock("clk").expect("clock");
            sim.set("rst", 0).expect("set");
            sim.set("en", 1).expect("set");
            for _ in 0..100 {
                sim.clock("clk").expect("clock");
            }
            std::hint::black_box(sim.get("count").expect("get"))
        })
    });
    let alu = generate(&DesignFamily::Alu { width: 8 }, &StyleOptions::clean(), &mut rng);
    c.bench_function("sim_alu_256_vectors", |b| {
        let mut sim = Simulator::from_source(&alu.source, "alu_8").expect("build");
        b.iter(|| {
            for i in 0..256u64 {
                sim.set("a", i).expect("set");
                sim.set("b", i ^ 0x5A).expect("set");
                sim.set("op", i % 8).expect("set");
                std::hint::black_box(sim.get("y").expect("get"));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lexer, bench_lint_and_metrics, bench_simulation
}
criterion_main!(benches);
