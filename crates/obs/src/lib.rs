//! # pyranet-obs
//!
//! A small, dependency-free observability layer for the PyraNet
//! toolchain: a [`MetricsRegistry`] of named **counters**, **gauges**,
//! and fixed-bucket **histograms**, plus RAII [`Span`] timers.
//!
//! The design contract is strict: metrics **record, never perturb**.
//! Every instrumentation site is write-only — no compute path reads a
//! metric back — so byte-pinned outputs (the determinism suite, the
//! sharded-export digests, the decode-equivalence pins) are unaffected
//! by whether a snapshot is ever taken.
//!
//! # Shape
//!
//! * [`Counter`] — monotonic `u64`, atomic add.
//! * [`Gauge`] — last-write-wins `f64` (loss curves, tokens/sec).
//! * [`Histogram`] — fixed upper-bound buckets plus an implicit `+inf`
//!   bucket, with total count and sum (span durations land here).
//! * [`Span`] — an RAII timer: created via [`MetricsRegistry::span`],
//!   it observes its elapsed seconds into `<name>.seconds` when dropped
//!   (or when explicitly [`Span::stop`]ped, which also returns the
//!   elapsed [`Duration`] for callers that report wall time themselves).
//!
//! Handles are cheap `Arc` clones over atomics: resolve once (by name)
//! outside a hot loop, then record lock-free inside it.
//!
//! # The global registry
//!
//! Instrumented subsystems (pipeline stages, the trainers, the decode
//! engine) record into [`global()`], following the default-registry
//! convention of production metrics stacks; `pyranet … --metrics OUT.json`
//! snapshots it at exit. Isolated registries ([`MetricsRegistry::new`])
//! remain available for tests.
//!
//! # Snapshots
//!
//! [`MetricsRegistry::snapshot`] freezes every metric into a
//! [`MetricsSnapshot`], which renders as a human summary
//! ([`MetricsSnapshot::render`]) or as JSON ([`MetricsSnapshot::to_json`])
//! with the schema `name → {type, value | count/sum/buckets}`:
//!
//! ```json
//! {
//!   "pipeline.funnel.curated": {"type": "counter", "value": 1234},
//!   "train.phase.tokens_per_sec": {"type": "gauge", "value": 8123.4},
//!   "pipeline.stage.dedup.seconds": {
//!     "type": "histogram", "count": 1, "sum": 0.0421,
//!     "buckets": [{"le": 0.000001, "count": 0}, …, {"le": null, "count": 1}]
//!   }
//! }
//! ```
//!
//! `"le": null` marks the `+inf` bucket. Names are emitted in sorted
//! order, so two snapshots of the same state are byte-identical.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default histogram bounds for span durations, in seconds: microseconds
/// through minutes, plus the implicit `+inf` overflow bucket.
pub const DURATION_BUCKETS: [f64; 12] =
    [1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0];

/// Default histogram bounds for small integer-valued distributions
/// (queue depths, batch occupancies).
pub const DEPTH_BUCKETS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Minimum elapsed time a rate gauge accepts. Below this the measurement
/// is clock noise: dividing by it would set the gauge to `inf` (or an
/// absurd finite value), which the JSON export then serializes as `null`.
/// [`MetricsRegistry::rate_gauge`] skips the write instead.
pub const MIN_RATE_ELAPSED_SECS: f64 = 1e-9;

/// A monotonically increasing counter. Cloning shares the underlying
/// cell, so a handle resolved once can be bumped lock-free in hot loops.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` value (stored as bits in an atomic, so
/// setting from worker threads never locks).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Ascending bucket upper bounds; an implicit `+inf` bucket follows.
    bounds: Vec<f64>,
    /// One count per bound, plus the trailing `+inf` count.
    counts: Vec<AtomicU64>,
    /// Total observations.
    count: AtomicU64,
    /// Sum of observed values (f64 bits, CAS-accumulated).
    sum: AtomicU64,
}

/// A fixed-bucket histogram: cumulative-style bucket counts are derivable
/// from the per-bucket counts in the snapshot; `count`/`sum` give the
/// mean. Observations are lock-free.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn with_bounds(bounds: &[f64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0.0f64.to_bits()),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let inner = &self.0;
        let idx = inner.bounds.partition_point(|&b| b < v);
        inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = inner.sum.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match inner.sum.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum.load(Ordering::Relaxed))
    }

    fn freeze(&self) -> SnapshotValue {
        let inner = &self.0;
        let buckets = inner
            .bounds
            .iter()
            .copied()
            .map(Some)
            .chain([None])
            .zip(inner.counts.iter().map(|c| c.load(Ordering::Relaxed)))
            .map(|(le, count)| Bucket { le, count })
            .collect();
        SnapshotValue::Histogram { count: self.count(), sum: self.sum(), buckets }
    }
}

/// An RAII wall-time span. Observes elapsed seconds into its histogram
/// when dropped; [`Span::stop`] does the same eagerly and hands back the
/// elapsed [`Duration`] for callers that also report timings directly.
#[derive(Debug)]
pub struct Span {
    hist: Histogram,
    started: Option<Instant>,
}

impl Span {
    /// Stops the span now, records it, and returns the elapsed time.
    pub fn stop(mut self) -> Duration {
        self.finish().expect("span not yet stopped")
    }

    fn finish(&mut self) -> Option<Duration> {
        let started = self.started.take()?;
        let elapsed = started.elapsed();
        self.hist.observe(elapsed.as_secs_f64());
        Some(elapsed)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics. Cheap to clone (shared interior);
/// get-or-create lookups lock briefly, recording through a resolved
/// handle never does.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

/// The process-wide default registry the instrumented subsystems record
/// into (and `--metrics` snapshots).
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.metrics.lock().expect("metrics registry poisoned");
        map.entry(name.to_owned()).or_insert_with(make).clone()
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram registered under `name`, creating it with `bounds`
    /// on first use (later calls reuse the original bounds).
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::with_bounds(bounds))) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Sets the gauge `name` to the rate `count / secs`, guarding the
    /// division: an elapsed time under [`MIN_RATE_ELAPSED_SECS`] (a
    /// zero-duration span on a fast run, a timer that did not tick) or a
    /// non-finite quotient leaves the gauge untouched — and, on first
    /// use, unregistered — instead of publishing `inf`/`NaN` (which the
    /// JSON export would serialize as `null`).
    pub fn rate_gauge(&self, name: &str, count: f64, secs: f64) {
        if secs < MIN_RATE_ELAPSED_SECS {
            return;
        }
        let rate = count / secs;
        if rate.is_finite() {
            self.gauge(name).set(rate);
        }
    }

    /// Starts an RAII timer recording into the `<name>.seconds` histogram
    /// (with [`DURATION_BUCKETS`]).
    pub fn span(&self, name: &str) -> Span {
        let hist = self.histogram(&format!("{name}.seconds"), &DURATION_BUCKETS);
        Span { hist, started: Some(Instant::now()) }
    }

    /// Freezes every registered metric into a point-in-time snapshot,
    /// sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.lock().expect("metrics registry poisoned");
        let entries = map
            .iter()
            .map(|(name, metric)| SnapshotEntry {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                    Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    Metric::Histogram(h) => h.freeze(),
                },
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

/// One histogram bucket in a snapshot: observations `<= le` landed here
/// (exclusive of earlier buckets); `le: None` is the `+inf` bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Upper bound, or `None` for `+inf`.
    pub le: Option<f64>,
    /// Observations in this bucket (non-cumulative).
    pub count: u64,
}

/// A frozen metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// Counter total.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram state.
    Histogram {
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: f64,
        /// Per-bucket counts, ascending bounds, `+inf` last.
        buckets: Vec<Bucket>,
    },
}

/// A point-in-time copy of a registry, ready to serialize or render.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Metrics sorted by name.
    pub entries: Vec<SnapshotEntry>,
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Registered metric name.
    pub name: String,
    /// Frozen value.
    pub value: SnapshotValue,
}

impl MetricsSnapshot {
    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&SnapshotValue> {
        self.entries.iter().find(|e| e.name == name).map(|e| &e.value)
    }

    /// Counter value by name (`None` when absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            SnapshotValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name (`None` when absent or not a gauge).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            SnapshotValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Serializes the snapshot as a JSON object keyed by metric name
    /// (schema in the crate docs). Deterministic: names are sorted and
    /// float text is `f64` shortest-round-trip.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 * self.entries.len().max(1));
        out.push_str("{\n");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("  ");
            json_string(&e.name, &mut out);
            out.push_str(": ");
            match &e.value {
                SnapshotValue::Counter(v) => {
                    out.push_str(&format!("{{\"type\": \"counter\", \"value\": {v}}}"));
                }
                SnapshotValue::Gauge(v) => {
                    out.push_str("{\"type\": \"gauge\", \"value\": ");
                    json_f64(*v, &mut out);
                    out.push('}');
                }
                SnapshotValue::Histogram { count, sum, buckets } => {
                    out.push_str(&format!(
                        "{{\"type\": \"histogram\", \"count\": {count}, \"sum\": "
                    ));
                    json_f64(*sum, &mut out);
                    out.push_str(", \"buckets\": [");
                    for (j, b) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str("{\"le\": ");
                        match b.le {
                            Some(le) => json_f64(le, &mut out),
                            None => out.push_str("null"),
                        }
                        out.push_str(&format!(", \"count\": {}}}", b.count));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("\n}");
        out
    }

    /// Renders a human-readable one-line-per-metric summary (the
    /// `--verbose` output).
    pub fn render(&self) -> String {
        let width = self.entries.iter().map(|e| e.name.len()).max().unwrap_or(0);
        let mut out = String::new();
        for e in &self.entries {
            match &e.value {
                SnapshotValue::Counter(v) => {
                    out.push_str(&format!("counter    {:<width$}  {v}\n", e.name));
                }
                SnapshotValue::Gauge(v) => {
                    out.push_str(&format!("gauge      {:<width$}  {v:.4}\n", e.name));
                }
                SnapshotValue::Histogram { count, sum, .. } => {
                    let mean = if *count > 0 { sum / *count as f64 } else { 0.0 };
                    out.push_str(&format!(
                        "histogram  {:<width$}  count={count} sum={sum:.4} mean={mean:.6}\n",
                        e.name
                    ));
                }
            }
        }
        out
    }
}

/// Appends `v` as a JSON number (non-finite values become `null` — JSON
/// has no NaN/Infinity).
fn json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Appends `s` as a JSON string literal with minimal escaping.
fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("x").get(), 5);
        assert_eq!(reg.counter("y").get(), 0);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let reg = MetricsRegistry::new();
        reg.gauge("loss").set(3.5);
        reg.gauge("loss").set(1.25);
        assert_eq!(reg.gauge("loss").get(), 1.25);
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[1.0, 10.0]);
        for v in [0.5, 0.9, 1.0, 5.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 107.4).abs() < 1e-9);
        let snap = reg.snapshot();
        match snap.get("lat").unwrap() {
            SnapshotValue::Histogram { count, buckets, .. } => {
                assert_eq!(*count, 5);
                // `le` is inclusive: 1.0 lands in the first bucket.
                let counts: Vec<u64> = buckets.iter().map(|b| b.count).collect();
                assert_eq!(counts, vec![3, 1, 1]);
                assert_eq!(buckets[2].le, None, "+inf bucket last");
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn span_records_elapsed_seconds() {
        let reg = MetricsRegistry::new();
        {
            let _s = reg.span("work");
            std::thread::sleep(Duration::from_millis(2));
        }
        let elapsed = reg.span("work").stop();
        let h = reg.histogram("work.seconds", &DURATION_BUCKETS);
        assert_eq!(h.count(), 2);
        assert!(h.sum() >= 0.002, "sum {} too small", h.sum());
        assert!(h.sum() >= elapsed.as_secs_f64());
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn type_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("b.count").inc();
        reg.counter("a.count").add(2);
        reg.gauge("c.rate").set(1.5);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a.count", "b.count", "c.rate"]);
        assert_eq!(snap.counter("a.count"), Some(2));
        assert_eq!(snap.gauge("c.rate"), Some(1.5));
        assert_eq!(snap.counter("c.rate"), None, "kind-checked accessor");
        assert_eq!(reg.snapshot(), snap, "same state, same snapshot");
    }

    #[test]
    fn rate_gauge_guards_degenerate_elapsed_times() {
        let reg = MetricsRegistry::new();
        // A zero-duration measurement must not publish `inf` — the gauge
        // is never even registered, so the snapshot JSON stays free of
        // `null` values for it.
        reg.rate_gauge("decode.tokens_per_sec", 1000.0, 0.0);
        reg.rate_gauge("decode.tokens_per_sec", 1000.0, 1e-12);
        assert_eq!(reg.snapshot().gauge("decode.tokens_per_sec"), None);
        let json = reg.snapshot().to_json();
        assert!(!json.contains("null"), "no gauge should serialize as null: {json}");

        // A real measurement goes through untouched.
        reg.rate_gauge("decode.tokens_per_sec", 1000.0, 0.5);
        assert_eq!(reg.snapshot().gauge("decode.tokens_per_sec"), Some(2000.0));
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"value\": 2000"), "{json}");
        assert!(!json.contains("null"), "{json}");

        // A later degenerate measurement must not clobber a good one.
        reg.rate_gauge("decode.tokens_per_sec", 4.0, 0.0);
        reg.rate_gauge("decode.tokens_per_sec", f64::INFINITY, 1.0);
        assert_eq!(reg.snapshot().gauge("decode.tokens_per_sec"), Some(2000.0));
    }

    #[test]
    fn json_escapes_and_handles_non_finite() {
        let reg = MetricsRegistry::new();
        reg.gauge("weird\"name\n").set(f64::NAN);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\\\"name\\n"), "{json}");
        assert!(json.contains("\"value\": null"), "{json}");
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hits");
        let h = reg.histogram("obs", &[0.5]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(if i % 2 == 0 { 0.25 } else { 1.0 });
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        assert!((h.sum() - (2000.0 * 0.25 + 2000.0 * 1.0)).abs() < 1e-6);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        global().counter("obs.selftest").inc();
        assert!(global().snapshot().counter("obs.selftest").unwrap() >= 1);
    }
}
