//! Deterministic parallel execution for the PyraNet pipeline.
//!
//! The curation and evaluation hot paths are all shaped like "apply a
//! pure function to every element of a batch". This crate provides that
//! one primitive, parallelised over scoped threads, with a hard
//! determinism contract:
//!
//! > For a pure per-item function, [`par_map`] returns **exactly** the
//! > same `Vec` — same values, same order — at any thread count,
//! > including 1.
//!
//! The contract holds by construction: the input is split into
//! contiguous chunks tagged with their chunk index, idle workers steal
//! whole chunks from a shared stack, and the mapped chunks are
//! reassembled by sorting on the chunk index. Scheduling order can vary
//! run to run; the output cannot.
//!
//! Randomised stages keep the contract by re-keying their RNG per item
//! (see [`stream_seed`] / [`stream_seed_str`]) instead of threading one
//! sequential RNG through the batch, so each item's entropy is a pure
//! function of `(master seed, item identity)`.
//!
//! Thread-count resolution (first match wins):
//! 1. an explicit [`ExecConfig::threads`] value `> 0`;
//! 2. the `PYRANET_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].

/// Thread-count knob for the executor.
///
/// The zero value (default) means "auto": resolve from `PYRANET_THREADS`
/// or the machine's available parallelism at call time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecConfig {
    requested: usize,
}

impl ExecConfig {
    /// Auto configuration (env override, then available parallelism).
    pub fn new() -> Self {
        ExecConfig::default()
    }

    /// Explicit thread count; `0` restores auto resolution.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.requested = threads;
        self
    }

    /// The thread count configured explicitly, or `0` for auto.
    pub fn requested_threads(&self) -> usize {
        self.requested
    }

    /// The thread count a parallel call will actually use (before
    /// clamping to the batch size).
    pub fn effective_threads(&self) -> usize {
        if self.requested > 0 {
            return self.requested;
        }
        if let Some(n) = env_threads() {
            return n;
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

fn env_threads() -> Option<usize> {
    let raw = std::env::var("PYRANET_THREADS").ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// Maps `f` over `items`, in parallel, preserving order.
///
/// `f` must be pure per item for the determinism contract to hold; the
/// executor guarantees the rest (output index `i` is always `f(items[i])`,
/// independent of thread count and scheduling).
pub fn par_map<T, U, F>(config: &ExecConfig, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = config.effective_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    // More chunks than threads so a worker that draws cheap items can
    // steal the remainder of an expensive worker's share.
    let chunk_size = n.div_ceil(threads * 4).max(1);
    let mut chunks: Vec<(usize, Vec<T>)> = Vec::new();
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<T> = iter.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push((chunks.len(), chunk));
    }

    let queue = parking_lot::Mutex::new(chunks);
    let done: parking_lot::Mutex<Vec<(usize, Vec<U>)>> = parking_lot::Mutex::new(Vec::new());
    let f = &f;
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let next = queue.lock().pop();
                let Some((chunk_idx, chunk)) = next else { break };
                let mapped: Vec<U> = chunk.into_iter().map(f).collect();
                done.lock().push((chunk_idx, mapped));
            });
        }
    })
    .expect("executor scope");

    let mut mapped_chunks = done.into_inner();
    mapped_chunks.sort_unstable_by_key(|&(chunk_idx, _)| chunk_idx);
    mapped_chunks.into_iter().flat_map(|(_, chunk)| chunk).collect()
}

/// Borrowing variant of [`par_map`]: maps `f` over the elements of a
/// slice in parallel, preserving order, without taking ownership of the
/// items. Same determinism contract.
pub fn par_map_ref<'a, T, U, F>(config: &ExecConfig, items: &'a [T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    par_map(config, items.iter().collect(), f)
}

/// Maps in parallel, then folds the mapped values **in input order**.
///
/// The fold itself is sequential, so unlike classic tree reductions the
/// reducer does not have to be commutative or associative for the result
/// to be thread-count-independent — handy for funnel counters and
/// "first occurrence wins" accumulations.
pub fn par_map_reduce<T, U, A, M, R>(
    config: &ExecConfig,
    items: Vec<T>,
    map: M,
    init: A,
    reduce: R,
) -> A
where
    T: Send,
    U: Send,
    M: Fn(T) -> U + Sync,
    R: FnMut(A, U) -> A,
{
    par_map(config, items, map).into_iter().fold(init, reduce)
}

/// Derives an independent RNG seed for stream `stream` of a master seed.
///
/// splitmix64-style finalisation: well spread even for consecutive
/// stream indices, and stable across platforms. Seeding one RNG per item
/// from this (instead of sharing one sequential RNG across the batch) is
/// what makes randomised stages safe to parallelise.
pub fn stream_seed(master: u64, stream: u64) -> u64 {
    let mut z =
        master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// [`stream_seed`] keyed by a string identity (e.g. an eval problem id),
/// hashed with FNV-1a so the mapping is stable across runs and platforms.
pub fn stream_seed_str(master: u64, stream: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in stream.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    stream_seed(master, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collatz_steps(mut v: u64) -> u64 {
        let mut steps = 0;
        while v > 1 {
            v = if v.is_multiple_of(2) { v / 2 } else { 3 * v + 1 };
            steps += 1;
        }
        steps
    }

    #[test]
    fn par_map_matches_sequential_at_every_thread_count() {
        let items: Vec<u64> = (1..=500).collect();
        let expected: Vec<u64> = items.iter().map(|&v| collatz_steps(v)).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let cfg = ExecConfig::new().threads(threads);
            let got = par_map(&cfg, items.clone(), collatz_steps);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let cfg = ExecConfig::new().threads(8);
        assert_eq!(par_map(&cfg, Vec::<u64>::new(), collatz_steps), Vec::<u64>::new());
        assert_eq!(par_map(&cfg, vec![27u64], collatz_steps), vec![111]);
    }

    #[test]
    fn par_map_preserves_order_with_skewed_work() {
        // Front-loaded heavy items force chunk stealing; order must hold.
        let items: Vec<u64> = (0..200).map(|i| if i < 10 { 1_000_000 + i } else { i }).collect();
        let cfg = ExecConfig::new().threads(4);
        let got = par_map(&cfg, items.clone(), collatz_steps);
        let expected: Vec<u64> = items.iter().map(|&v| collatz_steps(v)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn par_map_ref_matches_owned_map() {
        let items: Vec<u64> = (1..=100).collect();
        let expected: Vec<u64> = items.iter().map(|&v| collatz_steps(v)).collect();
        for threads in [1, 2, 8] {
            let cfg = ExecConfig::new().threads(threads);
            let got = par_map_ref(&cfg, &items, |&v| collatz_steps(v));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_reduce_is_order_stable() {
        let items: Vec<u32> = (0..100).collect();
        let seq: Vec<u32> = items.iter().map(|&v| v * 2).collect();
        for threads in [1, 2, 8] {
            let cfg = ExecConfig::new().threads(threads);
            let folded = par_map_reduce(
                &cfg,
                items.clone(),
                |v| v * 2,
                Vec::new(),
                |mut acc: Vec<u32>, v| {
                    acc.push(v);
                    acc
                },
            );
            assert_eq!(folded, seq, "threads={threads}");
        }
    }

    #[test]
    fn explicit_threads_beat_env_and_auto() {
        let cfg = ExecConfig::new().threads(3);
        assert_eq!(cfg.effective_threads(), 3);
        assert_eq!(ExecConfig::new().requested_threads(), 0);
        assert!(ExecConfig::new().effective_threads() >= 1);
    }

    #[test]
    fn stream_seeds_are_distinct_and_stable() {
        let a = stream_seed(42, 0);
        let b = stream_seed(42, 1);
        let c = stream_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(stream_seed(42, 0), a);
        assert_ne!(stream_seed_str(42, "mux_2"), stream_seed_str(42, "mux_4"));
        assert_eq!(stream_seed_str(7, "adder"), stream_seed_str(7, "adder"));
    }
}
