//! Bit-identity pins for the decode engine.
//!
//! `DecodeSession` exists to make pass@k evaluation fast — shared prefill,
//! zero-copy KV forks, lock-step batched decoding — while changing *no*
//! output bit. These tests pin each equivalence against the retained
//! legacy loop:
//!
//! * session decode ≡ `generate_legacy` for random prompts/seeds/temps;
//! * a sequence forked from a shared prefix ≡ the same sequence decoded
//!   from its own fresh prefill;
//! * a batch of sequences ≡ the same sequences decoded one at a time;
//! * LoRA-attached models decode identically through the pre-merged path;
//! * over-long prompts (the legacy empty-completion bug) now keep the
//!   prompt tail and produce a real, reported-as-truncated completion.

use proptest::prelude::*;
use pyranet_model::decode::DecodeSession;
use pyranet_model::lora::LoraConfig;
use pyranet_model::{KernelMode, ModelConfig, SampleOptions, TransformerLm};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const VOCAB: usize = 33;

fn model(seed: u64, n_layers: usize, max_seq: usize) -> TransformerLm {
    let cfg = ModelConfig {
        name: format!("decode-eq-{seed}"),
        d_model: 16,
        n_layers,
        n_heads: 2,
        d_ff: 32,
        max_seq,
        learning_rate: 1e-3,
        seed,
    };
    TransformerLm::new(cfg, VOCAB)
}

/// Random prompt over the non-special vocab range (ids 5.. are ordinary
/// tokens; EOS = 3 is deliberately excluded so forced tokens never stop
/// the legacy loop early in a way the prompt itself didn't ask for).
fn prompt_from(seed: u64, len: usize) -> Vec<usize> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            5 + (state as usize % (VOCAB - 5))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The session engine is bit-identical to the legacy per-token loop
    /// whenever the prompt fits the context window.
    #[test]
    fn session_decode_matches_legacy_loop(
        model_seed in 0u64..500,
        prompt_seed in 0u64..500,
        prompt_len in 0usize..40,
        max_new in 0usize..24,
        rng_seed in 0u64..1_000,
        temp_kind in 0usize..3,
    ) {
        let lm = model(model_seed, 1 + (model_seed as usize % 2), 48);
        let prompt = prompt_from(prompt_seed, prompt_len);
        let opts = SampleOptions {
            temperature: [0.0, 0.4, 1.1][temp_kind],
            top_k: 0,
        };
        let legacy = {
            let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
            lm.generate_legacy(&prompt, max_new, &opts, &mut rng)
        };
        let session = {
            let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
            lm.generate_report(&prompt, max_new, &opts, &mut rng)
        };
        prop_assert_eq!(&session.ids, &legacy);
        prop_assert_eq!(session.dropped_prompt_tokens, 0);
    }

    /// Sequences forked from one shared prefill are bit-identical to
    /// decoding each from its own fresh prefill, and a lock-step batch is
    /// bit-identical to decoding the same sequences one at a time.
    #[test]
    fn forked_batch_matches_fresh_per_sample(
        model_seed in 0u64..500,
        prompt_seed in 0u64..500,
        prompt_len in 0usize..40,
        max_new in 1usize..20,
        rng_seed in 0u64..1_000,
        n in 1usize..5,
    ) {
        let lm = model(model_seed, 1 + (model_seed as usize % 2), 48);
        let prompt = prompt_from(prompt_seed, prompt_len);
        let opts: Vec<SampleOptions> = (0..n)
            .map(|i| SampleOptions { temperature: 0.3 + 0.4 * i as f32, top_k: 0 })
            .collect();
        // Batched decode from one shared prefill.
        let batched = {
            let mut session = DecodeSession::new(&lm);
            let prefix = session.prefill(&prompt, max_new);
            let mut rngs: Vec<ChaCha8Rng> = (0..n)
                .map(|i| ChaCha8Rng::seed_from_u64(rng_seed ^ (i as u64) << 32))
                .collect();
            session.decode_batch(&prefix, max_new, &opts, &mut rngs)
        };
        // The same sequences, each from a fresh session and prefill.
        for (i, expect) in batched.iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(rng_seed ^ (i as u64) << 32);
            let fresh = lm.generate_report(&prompt, max_new, &opts[i], &mut rng);
            prop_assert_eq!(&fresh, expect, "sequence {}", i);
            let mut rng = ChaCha8Rng::seed_from_u64(rng_seed ^ (i as u64) << 32);
            let legacy = lm.generate_legacy(&prompt, max_new, &opts[i], &mut rng);
            prop_assert_eq!(&expect.ids, &legacy, "sequence {} vs legacy", i);
        }
    }

    /// A `Simd` session is bit-identical to the legacy f32 loop: the
    /// decode path only uses the AXPY-structured forward matmul (which
    /// preserves accumulation order in every f32 family) plus scalar
    /// attention/layer-norm sweeps, so vectorized lanes change no bit.
    #[test]
    fn simd_session_matches_legacy_loop(
        model_seed in 0u64..300,
        prompt_seed in 0u64..300,
        prompt_len in 0usize..40,
        max_new in 1usize..20,
        rng_seed in 0u64..1_000,
    ) {
        let lm = model(model_seed, 1 + (model_seed as usize % 2), 48);
        let prompt = prompt_from(prompt_seed, prompt_len);
        let opts = SampleOptions { temperature: 0.6, top_k: 0 };
        let legacy = {
            let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
            lm.generate_legacy(&prompt, max_new, &opts, &mut rng)
        };
        let simd = {
            let mut session = DecodeSession::new_with(&lm, KernelMode::Simd);
            let prefix = session.prefill(&prompt, max_new);
            let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
            session.decode_one(&prefix, max_new, &opts, &mut rng)
        };
        prop_assert_eq!(&simd.ids, &legacy);
    }

    /// An int8 session is *not* bit-identical to f32 (quantization
    /// perturbs the logits; parity is gated at the pass@k level), but it
    /// is exactly reproducible — i32 accumulation has no ordering
    /// freedom — and it honours the same budget/EOS contract.
    #[test]
    fn int8_session_is_deterministic_and_respects_budget(
        model_seed in 0u64..300,
        prompt_seed in 0u64..300,
        prompt_len in 0usize..40,
        max_new in 1usize..20,
        rng_seed in 0u64..1_000,
    ) {
        let lm = model(model_seed, 1 + (model_seed as usize % 2), 48);
        let prompt = prompt_from(prompt_seed, prompt_len);
        let opts = SampleOptions { temperature: 0.6, top_k: 0 };
        let run = |seed: u64| {
            let mut session = DecodeSession::new_with(&lm, KernelMode::QuantizedInt8);
            let prefix = session.prefill(&prompt, max_new);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            session.decode_one(&prefix, max_new, &opts, &mut rng)
        };
        let a = run(rng_seed);
        let b = run(rng_seed);
        prop_assert_eq!(&a, &b, "int8 decode must be exactly reproducible");
        prop_assert!(a.ids.len() <= max_new.min(48 - prompt.len().min(48)));
        prop_assert!(a.ids.iter().all(|&id| id < VOCAB), "ids within vocab");
    }

    /// LoRA-attached models route through the pre-merged `Cow` weights;
    /// the session must match the legacy loop there too.
    #[test]
    fn lora_session_matches_legacy_loop(
        model_seed in 0u64..200,
        prompt_seed in 0u64..200,
        rng_seed in 0u64..500,
    ) {
        let mut lm = model(model_seed, 1, 48);
        lm.enable_lora(LoraConfig { rank: 2, alpha: 4.0 });
        let prompt = prompt_from(prompt_seed, 12);
        let opts = SampleOptions { temperature: 0.8, top_k: 0 };
        let legacy = {
            let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
            lm.generate_legacy(&prompt, 16, &opts, &mut rng)
        };
        let session = {
            let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
            lm.generate(&prompt, 16, &opts, &mut rng)
        };
        prop_assert_eq!(session, legacy);
    }
}

#[test]
fn overlong_prompt_keeps_tail_and_reports_truncation() {
    let lm = model(11, 1, 32);
    let prompt = prompt_from(17, 64); // twice the context window
    let opts = SampleOptions { temperature: 0.7, top_k: 0 };

    // The legacy loop's historical wart: the completion comes back empty
    // (every slot is consumed by forced prompt tokens) and nothing says so.
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    assert_eq!(lm.generate_legacy(&prompt, 16, &opts, &mut rng), Vec::<usize>::new());

    // The session clamps explicitly: the prompt tail survives, decode
    // headroom is reserved, and the drop is surfaced.
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let report = lm.generate_report(&prompt, 16, &opts, &mut rng);
    assert!(report.prompt_truncated());
    assert_eq!(report.dropped_prompt_tokens, 64 - (32 - 8)); // keeps max_seq - max_seq/4
    assert!(!report.ids.is_empty(), "truncated prompt must still decode");

    // The kept window is exactly the prompt *tail*: decoding from the
    // pre-trimmed tail directly gives the same ids.
    let tail = &prompt[report.dropped_prompt_tokens..];
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let direct = lm.generate_report(tail, 16, &opts, &mut rng);
    assert_eq!(direct.ids, report.ids);
    assert_eq!(direct.dropped_prompt_tokens, 0);
}

#[test]
fn budget_clamp_is_reported() {
    let lm = model(3, 1, 32);
    let prompt = prompt_from(5, 28); // fits, but leaves only 4 decode slots
    let opts = SampleOptions { temperature: 0.0, top_k: 0 };
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let report = lm.generate_report(&prompt, 16, &opts, &mut rng);
    assert_eq!(report.dropped_prompt_tokens, 0);
    assert_eq!(report.clamped_new_tokens, 12);
    assert!(report.ids.len() <= 4);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    assert_eq!(report.ids, lm.generate_legacy(&prompt, 16, &opts, &mut rng));
}

#[test]
fn prefix_state_reports_its_shape() {
    let lm = model(4, 2, 32);
    let mut session = DecodeSession::new(&lm);
    let prefix = session.prefill(&prompt_from(1, 10), 8);
    assert_eq!(prefix.len(), 10);
    assert!(!prefix.is_empty());
    assert_eq!(prefix.dropped_prompt_tokens(), 0);
    let empty = session.prefill(&[], 8);
    assert!(empty.is_empty());
}
