//! Property sweep of the context-window planner.
//!
//! `PromptPlan::new` is the single clamp between "a request arrived" and
//! "the decode engine indexes the position-embedding table": every token
//! it plans must land inside the window, and no input — over-long
//! prompts, zero budgets, zero-length windows — may panic. A long-lived
//! `pyranet serve` daemon plans arbitrary client requests, so the corners
//! the eval harness never hits are exactly the ones that matter here.

use proptest::prelude::*;
use pyranet_model::decode::PromptPlan;

/// The planner's full invariant set for one input triple.
fn check(prompt_len: usize, max_new: usize, max_seq: usize) {
    let p = PromptPlan::new(prompt_len, max_new, max_seq);
    // Window discipline: what is kept plus what may be decoded fits.
    assert!(
        p.kept_prompt_tokens + p.new_token_budget <= max_seq,
        "({prompt_len}, {max_new}, {max_seq}) overflows the window: {p:?}"
    );
    // Conservation: every prompt token is either kept or dropped, every
    // requested slot either granted or reported clamped.
    assert_eq!(p.kept_prompt_tokens + p.dropped_prompt_tokens, prompt_len, "{p:?}");
    assert_eq!(p.new_token_budget + p.clamped_new_tokens, max_new, "{p:?}");
    // A prompt that fits is never trimmed.
    if prompt_len < max_seq {
        assert_eq!(p.dropped_prompt_tokens, 0, "{p:?}");
    }
    // A non-empty window with a real request always decodes something.
    if max_seq > 0 && max_new > 0 {
        assert!(p.new_token_budget > 0, "({prompt_len}, {max_new}, {max_seq}): {p:?}");
    }
    assert_eq!(p.truncated(), p.dropped_prompt_tokens > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Dense sweep around realistic window sizes, including the
    /// `max_new == 0`, `prompt_len == max_seq`, and `prompt_len > max_seq`
    /// corners the harness never exercises.
    #[test]
    fn plan_invariants_hold_everywhere(
        prompt_len in 0usize..=4096,
        max_new in 0usize..=4096,
        max_seq in 0usize..=4096,
    ) {
        check(prompt_len, max_new, max_seq);
    }

    /// The same invariants with the inputs pinned to each other's
    /// boundaries, where the underflow regression lived.
    #[test]
    fn plan_invariants_hold_at_window_boundaries(
        max_seq in 0usize..=512,
        delta in 0usize..=8,
        max_new in 0usize..=8,
    ) {
        // prompt exactly at, just below, and just above the window.
        check(max_seq, max_new, max_seq);
        check(max_seq.saturating_sub(delta), max_new, max_seq);
        check(max_seq + delta, max_new, max_seq);
        // The regression input shape: overflow with a zero budget.
        check(max_seq + delta, 0, max_seq);
    }
}

#[test]
fn plan_handles_extreme_inputs_without_panicking() {
    for (pl, mn, ms) in [
        (usize::MAX, 0, 64),
        (usize::MAX, usize::MAX, 64),
        (usize::MAX, usize::MAX, 0),
        (0, usize::MAX, 0),
        (0, 0, 0),
        (1 << 40, 1 << 40, 1 << 10),
    ] {
        let p = PromptPlan::new(pl, mn, ms);
        assert!(p.kept_prompt_tokens + p.new_token_budget <= ms, "({pl}, {mn}, {ms}): {p:?}");
        assert_eq!(p.kept_prompt_tokens + p.dropped_prompt_tokens, pl);
        assert_eq!(p.new_token_budget + p.clamped_new_tokens, mn);
    }
}
