//! The batched, prefix-cached inference engine.
//!
//! The pass@k evaluation workload is *n samples per problem over one
//! prompt*: the naive loop re-merges weights, re-prefills the identical
//! prompt, and re-allocates every scratch buffer for each of the n
//! samples. [`DecodeSession`] removes all three costs:
//!
//! * **Shared prefill.** [`DecodeSession::prefill`] runs the prompt once
//!   (as one batched forward over all prompt rows, not token by token)
//!   and snapshots the KV cache as a [`PrefixState`]. Forked sequences
//!   *borrow* the prefix cache and only append their own suffix — a
//!   zero-copy KV fork.
//! * **Batched decode.** [`DecodeSession::decode_batch`] steps every live
//!   sequence of a problem together, so the per-token Q/K/V, FFN, and
//!   logit projections become `[batch, d]` matmuls routed through the
//!   session's [`KernelMode`] family of [`crate::tensor::kernels`]
//!   instead of n independent vector-matrix products. Sequences retire
//!   independently on `<eos>`.
//! * **Zero per-token allocation.** Effective (LoRA-merged) weights are
//!   materialised once per session and every intermediate lives in a
//!   scratch arena that is reused across tokens, samples, and problems.
//!
//! # Determinism
//!
//! In the f32 families ([`KernelMode::Blocked`], `Reference`, and `Simd` —
//! whose forward matmul is AXPY-structured and preserves accumulation
//! order) every kernel on this path accumulates each output element in
//! ascending shared-dimension order — the same discipline as the training
//! kernels — so a row of a batched matmul is bit-identical to the
//! corresponding single-vector product, a forked sequence is bit-identical
//! to one decoded from a fresh prefill, and a batch of sequences is
//! bit-identical to the same sequences decoded one at a time. Property
//! tests pin all three equivalences against the retained
//! [`TransformerLm::generate_legacy`] loop.
//!
//! A [`KernelMode::QuantizedInt8`] session trades that bit-exactness for
//! throughput: effective weights are absmax-quantized to int8 once at
//! session build (see [`crate::quant`]) and the hot matmuls accumulate in
//! `i32` — still *exactly* reproducible run-to-run (integer addition is
//! associative), just not bit-identical to the f32 session. Accuracy is
//! gated by an int8-vs-f32 pass@k parity test in the eval harness.
//!
//! # Prompt clamping
//!
//! The legacy loop silently dropped forced prompt tokens once
//! `prompt.len() + max_new` crossed `cfg.max_seq`, and returned an *empty*
//! completion when the prompt alone overflowed the window. The session
//! clamps explicitly via [`PromptPlan`]: a prompt that fits keeps its
//! exact legacy semantics, an over-long prompt is trimmed **head-first**
//! (so a forced suffix such as the eval harness's module header always
//! survives) with real decode headroom reserved, and both the drop and
//! the clamp are surfaced in [`Generation`].

use crate::quant::{self, QuantizedMatrix};
use crate::sampler::{sample_logits_into, SampleOptions};
use crate::tensor::{gelu_fwd, gelu_fwd_fast, kernels, softmax_row_inplace, KernelMode, Matrix};
use crate::tokenizer::EOS;
use crate::transformer::{ln_row_into, vec_mat, DecodeWeights, TransformerLm};
use rand::Rng;

/// Explicit context-window plan for one prompt: what survives, what is
/// dropped, and how many new-token slots remain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromptPlan {
    /// Prompt tokens kept (always the prompt *tail*, so forced suffixes
    /// survive).
    pub kept_prompt_tokens: usize,
    /// Prompt tokens dropped from the head.
    pub dropped_prompt_tokens: usize,
    /// New-token slots that fit the window after the kept prompt.
    pub new_token_budget: usize,
    /// Requested new-token slots lost to the window.
    pub clamped_new_tokens: usize,
}

impl PromptPlan {
    /// Plans `prompt_len` forced tokens plus up to `max_new` sampled
    /// tokens into a `max_seq` context window.
    ///
    /// A prompt that fits (`prompt_len < max_seq`) is never trimmed — the
    /// budget is clamped exactly as the legacy loop clamped it. A prompt
    /// that overflows the window (the case the legacy loop turned into an
    /// empty completion) keeps its tail, reserving up to a quarter of the
    /// window for decoding so the completion is not a one-token stub.
    pub fn new(prompt_len: usize, max_new: usize, max_seq: usize) -> PromptPlan {
        let kept = if prompt_len >= max_seq && max_new > 0 {
            let headroom = max_new.min((max_seq / 4).max(1));
            max_seq.saturating_sub(headroom)
        } else {
            prompt_len.min(max_seq)
        };
        // Clamp unconditionally: every branch above intends `kept <=
        // max_seq`, but the arithmetic must never be trusted to uphold
        // that on degenerate windows — `max_seq - kept` below underflows
        // `usize` (a debug-build panic, garbage in release) if it slips.
        let kept = kept.min(max_seq).min(prompt_len);
        let budget = max_new.min(max_seq - kept);
        PromptPlan {
            kept_prompt_tokens: kept,
            dropped_prompt_tokens: prompt_len - kept,
            new_token_budget: budget,
            clamped_new_tokens: max_new - budget,
        }
    }

    /// Whether any forced prompt token was dropped.
    pub fn truncated(&self) -> bool {
        self.dropped_prompt_tokens > 0
    }
}

/// One generation: the sampled ids plus the explicit truncation report
/// (what the legacy path used to swallow silently).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Generation {
    /// Newly generated token ids (the prompt is not repeated; stops at
    /// `<eos>`).
    pub ids: Vec<usize>,
    /// Prompt tokens dropped from the head to fit the context window.
    pub dropped_prompt_tokens: usize,
    /// Requested new-token slots lost to the context window.
    pub clamped_new_tokens: usize,
}

impl Generation {
    /// Whether the forced prompt lost tokens to the context window.
    pub fn prompt_truncated(&self) -> bool {
        self.dropped_prompt_tokens > 0
    }
}

/// Snapshot of the KV cache after prefilling one prompt. Forked sequences
/// borrow this (read-only) and append only their own suffix.
#[derive(Debug, Clone)]
pub struct PrefixState {
    /// Per-layer keys, `len * d` floats each.
    kcache: Vec<Vec<f32>>,
    /// Per-layer values, `len * d` floats each.
    vcache: Vec<Vec<f32>>,
    /// Prompt tokens in the cache.
    len: usize,
    /// Logits after the final prompt token (all zeros for an empty
    /// prompt, matching the legacy loop's initial logits).
    logits: Vec<f32>,
    /// Prompt tokens dropped by the [`PromptPlan`].
    dropped_prompt_tokens: usize,
}

impl PrefixState {
    /// Prompt tokens held in the cache.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the prefix holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Prompt tokens dropped from the head to fit the context window.
    pub fn dropped_prompt_tokens(&self) -> usize {
        self.dropped_prompt_tokens
    }
}

/// Per-sequence token selection for [`DecodeSession::decode_batch`].
///
/// Implemented for every [`Rng`] via [`sample_logits_into`], so a plain
/// `ChaCha8Rng` is a sampler. `scratch` is the session's reusable weight
/// buffer — implementations must not assume anything about its contents.
pub trait TokenSampler {
    /// Picks the next token id from `logits`.
    fn next_token(&mut self, logits: &[f32], opts: &SampleOptions, scratch: &mut Vec<f32>)
        -> usize;
}

impl<R: Rng> TokenSampler for R {
    fn next_token(
        &mut self,
        logits: &[f32],
        opts: &SampleOptions,
        scratch: &mut Vec<f32>,
    ) -> usize {
        sample_logits_into(logits, opts, self, scratch)
    }
}

/// Scratch arenas reused across tokens, samples, and problems. Buffers
/// grow to the high-water mark once and never shrink, so steady-state
/// decoding performs no allocation.
#[derive(Debug)]
struct Scratch {
    /// Residual stream, `[rows, d]`.
    x: Matrix,
    /// Layer-norm output, `[rows, d]`.
    xn: Matrix,
    /// Query/key/value projections, `[rows, d]` each.
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Attention output, `[rows, d]`.
    merged: Matrix,
    /// Output projection, `[rows, d]`.
    proj: Matrix,
    /// FFN intermediates, `[rows, d_ff]` and `[rows, d]`.
    h1: Matrix,
    h2: Matrix,
    /// Logit rows, `[rows, vocab]`.
    logits: Matrix,
    /// Attention score row (one head at a time, up to `max_seq` long).
    scores: Vec<f32>,
    /// Sampler weight buffer (vocab long).
    sample: Vec<f32>,
    /// Quantized activation row (int8 sessions only; empty otherwise).
    xq: Vec<i16>,
}

impl Scratch {
    fn new(d: usize, d_ff: usize, vocab: usize, max_seq: usize) -> Scratch {
        let m = |cols: usize| Matrix::new(0, cols, Vec::new());
        Scratch {
            x: m(d),
            xn: m(d),
            q: m(d),
            k: m(d),
            v: m(d),
            merged: m(d),
            proj: m(d),
            h1: m(d_ff),
            h2: m(d),
            logits: m(vocab),
            scores: Vec::with_capacity(max_seq),
            sample: Vec::with_capacity(vocab),
            xq: Vec::new(),
        }
    }
}

/// The effective weights of a [`KernelMode::QuantizedInt8`] session,
/// absmax-quantized to int8 exactly once at session build.
#[derive(Debug)]
struct QuantWeights {
    wq: Vec<QuantizedMatrix>,
    wk: Vec<QuantizedMatrix>,
    wv: Vec<QuantizedMatrix>,
    wo: Vec<QuantizedMatrix>,
    w1: Vec<QuantizedMatrix>,
    w2: Vec<QuantizedMatrix>,
    head: QuantizedMatrix,
}

impl QuantWeights {
    fn build(w: &DecodeWeights<'_>) -> QuantWeights {
        let q = |v: &[std::borrow::Cow<'_, Matrix>]| {
            v.iter().map(|m| QuantizedMatrix::quantize(m)).collect()
        };
        QuantWeights {
            wq: q(&w.wq),
            wk: q(&w.wk),
            wv: q(&w.wv),
            wo: q(&w.wo),
            w1: q(&w.w1),
            w2: q(&w.w2),
            head: QuantizedMatrix::quantize(w.head),
        }
    }
}

/// Routes one projection through either the int8 path (when the session
/// quantized its weights) or the selected f32 kernel family.
fn project_into(
    mode: KernelMode,
    qw: Option<&QuantizedMatrix>,
    a: &Matrix,
    w: &Matrix,
    out: &mut Matrix,
    xq: &mut Vec<i16>,
) {
    match qw {
        Some(qw) => quant::qmatmul_rows_into(a, qw, out, xq),
        None => kernels::matmul_into(mode, a, w, out),
    }
}

/// Resizes an arena matrix to `rows` without releasing capacity.
fn set_rows(m: &mut Matrix, rows: usize) {
    m.rows = rows;
    m.data.resize(rows * m.cols, 0.0);
}

/// Head-size f32 dot product as four explicit partial lanes (`H` must be
/// a multiple of 4 — dispatched head sizes are). The lane split reorders
/// the f32 accumulation, so this is reserved for the int8 session, whose
/// contract is reproducibility, not bit-parity with the f32 families.
#[inline]
fn fdot_fixed<const H: usize>(a: &[f32], b: &[f32]) -> f32 {
    let a: &[f32; H] = a[..H].try_into().expect("dispatcher checked the width");
    let b: &[f32; H] = b[..H].try_into().expect("dispatcher checked the width");
    let mut lanes = [0.0f32; 4];
    for c in 0..H / 4 {
        for (l, acc) in lanes.iter_mut().enumerate() {
            *acc += a[c * 4 + l] * b[c * 4 + l];
        }
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
}

/// Lane-vectorized dot for the head sizes that occur in practice, with an
/// ascending-order scalar fallback for the rest.
#[inline]
fn fdot_fast(a: &[f32], b: &[f32]) -> f32 {
    match a.len() {
        8 => fdot_fixed::<8>(a, b),
        16 => fdot_fixed::<16>(a, b),
        32 => fdot_fixed::<32>(a, b),
        64 => fdot_fixed::<64>(a, b),
        _ => a.iter().zip(b).map(|(x, y)| x * y).sum(),
    }
}

/// Causal attention for one query row over a (borrowed prefix ‖ owned
/// suffix) KV cache. Scores and the value accumulation both run in
/// ascending cache order — prefix first, then suffix — which is exactly
/// the order the legacy single-cache loop used, so f32-family results are
/// bit-identical to attending over the concatenated cache.
///
/// `fast` (int8 sessions only) swaps the score dots for lane-split
/// [`fdot_fast`] and the score softmax for the polynomial
/// [`kernels::softmax_row_inplace_lanes`] — deterministic, but not
/// bit-identical to the f32 attention, which is already the int8
/// session's accuracy contract (gated by the pass@k parity test).
#[allow(clippy::too_many_arguments)]
fn attend_row(
    q_row: &[f32],
    merged_row: &mut [f32],
    prefix_k: &[f32],
    prefix_v: &[f32],
    own_k: &[f32],
    own_v: &[f32],
    d: usize,
    nh: usize,
    hs: usize,
    scale: f32,
    scores: &mut Vec<f32>,
    fast: bool,
) {
    let prefix_steps = prefix_k.len() / d;
    let own_steps = own_k.len() / d;
    merged_row.fill(0.0);
    for h in 0..nh {
        let qh = &q_row[h * hs..(h + 1) * hs];
        scores.clear();
        for s in 0..prefix_steps {
            let kh = &prefix_k[s * d + h * hs..s * d + (h + 1) * hs];
            let dot =
                if fast { fdot_fast(qh, kh) } else { qh.iter().zip(kh).map(|(a, b)| a * b).sum() };
            scores.push(dot * scale);
        }
        for s in 0..own_steps {
            let kh = &own_k[s * d + h * hs..s * d + (h + 1) * hs];
            let dot =
                if fast { fdot_fast(qh, kh) } else { qh.iter().zip(kh).map(|(a, b)| a * b).sum() };
            scores.push(dot * scale);
        }
        if fast {
            kernels::softmax_row_inplace_lanes(scores);
        } else {
            softmax_row_inplace(scores);
        }
        for (s, w) in scores[..prefix_steps].iter().enumerate() {
            let vh = &prefix_v[s * d + h * hs..s * d + (h + 1) * hs];
            for (j, vx) in vh.iter().enumerate() {
                merged_row[h * hs + j] += w * vx;
            }
        }
        for (s, w) in scores[prefix_steps..].iter().enumerate() {
            let vh = &own_v[s * d + h * hs..s * d + (h + 1) * hs];
            for (j, vx) in vh.iter().enumerate() {
                merged_row[h * hs + j] += w * vx;
            }
        }
    }
}

/// One live decoding sequence in a (possibly heterogeneous) batch: its
/// own per-layer KV suffix over a shared prefix, the logits to sample the
/// next token from, and its absolute position in the context window.
///
/// [`DecodeSession::decode_batch`] drives homogeneous batches of these
/// (n forks of one prefix, created and retired together); the
/// `pyranet-serve` continuous-batching daemon composes arbitrary
/// mixtures — sequences forked from *different* prefixes, at different
/// positions, joining and leaving the lock-step batch as requests arrive
/// and retire. Because every row of a batched forward is computed
/// independently (and each f32 output element accumulates in ascending
/// shared-dimension order), a sequence's tokens are bit-identical no
/// matter which other sequences happen to share its batches.
#[derive(Debug)]
pub struct SeqState {
    /// Own KV suffix, one growing buffer per layer.
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    /// Logits after the last absorbed token (the prefix logits until the
    /// first [`DecodeSession::step_seqs`]).
    logits: Vec<f32>,
    /// Token awaiting its forward pass (the most recently sampled id).
    last: usize,
    /// Absolute position that pending token occupies: prefix length plus
    /// suffix tokens already absorbed.
    pos: usize,
}

impl SeqState {
    /// Logits to sample the next token from.
    pub fn logits(&self) -> &[f32] {
        &self.logits
    }

    /// Stages `id` as the pending token; the next
    /// [`DecodeSession::step_seqs`] that includes this sequence absorbs
    /// it into the KV suffix and refreshes [`SeqState::logits`].
    pub fn push_token(&mut self, id: usize) {
        self.last = id;
    }

    /// Absolute position the pending token will occupy (prefix + suffix
    /// tokens absorbed so far).
    pub fn pos(&self) -> usize {
        self.pos
    }
}

/// A reusable inference session over one model: pre-merged weights plus
/// scratch arenas. Create once, then `prefill` each prompt and fork as
/// many decodes from the [`PrefixState`] as needed.
#[derive(Debug)]
pub struct DecodeSession<'m> {
    w: DecodeWeights<'m>,
    /// Int8 copies of the effective weights; `Some` iff `kernels` is
    /// [`KernelMode::QuantizedInt8`].
    quant: Option<QuantWeights>,
    kernels: KernelMode,
    d: usize,
    hs: usize,
    nh: usize,
    n_layers: usize,
    max_seq: usize,
    vocab: usize,
    scale: f32,
    scratch: Scratch,
}

impl<'m> DecodeSession<'m> {
    /// Builds a session with the model's own kernel family
    /// ([`TransformerLm::kernels`]): effective (LoRA-merged) weights are
    /// materialised exactly once, borrowed straight from the model unless
    /// an adapter forces a merge copy.
    pub fn new(lm: &'m TransformerLm) -> DecodeSession<'m> {
        DecodeSession::new_with(lm, lm.kernels())
    }

    /// Builds a session with an explicit kernel family. A
    /// [`KernelMode::QuantizedInt8`] session additionally quantizes the
    /// effective weights to int8 here, once, so the per-token cost is pure
    /// i32 arithmetic over 4×-smaller weights.
    pub fn new_with(lm: &'m TransformerLm, mode: KernelMode) -> DecodeSession<'m> {
        let cfg = &lm.cfg;
        let w = lm.decode_weights();
        let quant = (mode == KernelMode::QuantizedInt8).then(|| QuantWeights::build(&w));
        DecodeSession {
            quant,
            kernels: mode,
            d: cfg.d_model,
            hs: cfg.head_size(),
            nh: cfg.n_heads,
            n_layers: w.wq.len(),
            max_seq: cfg.max_seq,
            vocab: lm.vocab_size(),
            scale: 1.0 / (cfg.head_size() as f32).sqrt(),
            scratch: Scratch::new(cfg.d_model, cfg.d_ff, lm.vocab_size(), cfg.max_seq),
            w,
        }
    }

    /// The kernel family this session decodes with.
    pub fn kernels(&self) -> KernelMode {
        self.kernels
    }

    /// The model's context-window length (prompt + completion tokens).
    pub fn max_seq(&self) -> usize {
        self.max_seq
    }

    /// Vocabulary size (the width of every logits row).
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// Forks a fresh sequence off `prefix`: empty KV suffix, the prefix
    /// logits to sample the first token from, positioned right after the
    /// prefix. The prefix itself is not captured — pass it back to every
    /// [`DecodeSession::step_seqs`] call (callers that share one prefix
    /// across many sequences, or cache prefixes across requests, own
    /// that association).
    pub fn open_seq(&self, prefix: &PrefixState) -> SeqState {
        SeqState {
            k: (0..self.n_layers).map(|_| Vec::new()).collect(),
            v: (0..self.n_layers).map(|_| Vec::new()).collect(),
            logits: prefix.logits.clone(),
            last: 0,
            pos: prefix.len,
        }
    }

    /// Runs the (clamped) prompt through the model once, as a single
    /// batched forward over all prompt rows, and snapshots the KV cache.
    /// `max_new` feeds the [`PromptPlan`] clamp only; it does not decode.
    ///
    /// Logits are computed for the final row alone — the legacy loop's
    /// per-prompt-token logit products were dead work.
    pub fn prefill(&mut self, prompt: &[usize], max_new: usize) -> PrefixState {
        let obs = pyranet_obs::global();
        let span = obs.span("decode.prefill");
        let plan = PromptPlan::new(prompt.len(), max_new, self.max_seq);
        let prompt = &prompt[plan.dropped_prompt_tokens..];
        let n = prompt.len();
        obs.counter("decode.prefill.tokens").add(n as u64);
        let (d, nh, hs, scale) = (self.d, self.nh, self.hs, self.scale);
        let mut kcache: Vec<Vec<f32>> = (0..self.n_layers).map(|_| vec![0.0; n * d]).collect();
        let mut vcache: Vec<Vec<f32>> = (0..self.n_layers).map(|_| vec![0.0; n * d]).collect();
        if n == 0 {
            return PrefixState {
                kcache,
                vcache,
                len: 0,
                logits: vec![0.0; self.vocab],
                dropped_prompt_tokens: plan.dropped_prompt_tokens,
            };
        }

        let sc = &mut self.scratch;
        set_rows(&mut sc.x, n);
        for (t, &id) in prompt.iter().enumerate() {
            for c in 0..d {
                sc.x.data[t * d + c] = self.w.tok.data[id * d + c] + self.w.pos.data[t * d + c];
            }
        }
        for li in 0..self.n_layers {
            set_rows(&mut sc.xn, n);
            for t in 0..n {
                ln_row_into(&sc.x.data[t * d..(t + 1) * d], &mut sc.xn.data[t * d..(t + 1) * d]);
            }
            set_rows(&mut sc.q, n);
            set_rows(&mut sc.k, n);
            set_rows(&mut sc.v, n);
            let qw = self.quant.as_ref();
            let mode = self.kernels;
            project_into(
                mode,
                qw.map(|q| &q.wq[li]),
                &sc.xn,
                &self.w.wq[li],
                &mut sc.q,
                &mut sc.xq,
            );
            project_into(
                mode,
                qw.map(|q| &q.wk[li]),
                &sc.xn,
                &self.w.wk[li],
                &mut sc.k,
                &mut sc.xq,
            );
            project_into(
                mode,
                qw.map(|q| &q.wv[li]),
                &sc.xn,
                &self.w.wv[li],
                &mut sc.v,
                &mut sc.xq,
            );
            kcache[li].copy_from_slice(&sc.k.data);
            vcache[li].copy_from_slice(&sc.v.data);
            set_rows(&mut sc.merged, n);
            for t in 0..n {
                // Row t attends causally over cache entries 0..=t.
                attend_row(
                    &sc.q.data[t * d..(t + 1) * d],
                    &mut sc.merged.data[t * d..(t + 1) * d],
                    &[],
                    &[],
                    &kcache[li][..(t + 1) * d],
                    &vcache[li][..(t + 1) * d],
                    d,
                    nh,
                    hs,
                    scale,
                    &mut sc.scores,
                    qw.is_some(),
                );
            }
            set_rows(&mut sc.proj, n);
            project_into(
                mode,
                qw.map(|q| &q.wo[li]),
                &sc.merged,
                &self.w.wo[li],
                &mut sc.proj,
                &mut sc.xq,
            );
            for (xv, pv) in sc.x.data.iter_mut().zip(&sc.proj.data) {
                *xv += pv;
            }
            set_rows(&mut sc.xn, n);
            for t in 0..n {
                ln_row_into(&sc.x.data[t * d..(t + 1) * d], &mut sc.xn.data[t * d..(t + 1) * d]);
            }
            set_rows(&mut sc.h1, n);
            project_into(
                mode,
                qw.map(|q| &q.w1[li]),
                &sc.xn,
                &self.w.w1[li],
                &mut sc.h1,
                &mut sc.xq,
            );
            // Int8 sessions take the polynomial gelu too — same
            // reproducible-not-bit-identical contract as their matmuls.
            if qw.is_some() {
                for vx in sc.h1.data.iter_mut() {
                    *vx = gelu_fwd_fast(*vx);
                }
            } else {
                for vx in sc.h1.data.iter_mut() {
                    *vx = gelu_fwd(*vx);
                }
            }
            set_rows(&mut sc.h2, n);
            project_into(
                mode,
                qw.map(|q| &q.w2[li]),
                &sc.h1,
                &self.w.w2[li],
                &mut sc.h2,
                &mut sc.xq,
            );
            for (xv, pv) in sc.x.data.iter_mut().zip(&sc.h2.data) {
                *xv += pv;
            }
        }
        // Logits for the final row only.
        let mut last_ln = vec![0.0f32; d];
        ln_row_into(&sc.x.data[(n - 1) * d..n * d], &mut last_ln);
        let logits = match &self.quant {
            Some(qw) => {
                let mut out = vec![0.0f32; self.vocab];
                let x_scale = quant::quantize_row_into(&last_ln, &mut sc.xq);
                if x_scale != 0.0 {
                    quant::qmatvec_into(&sc.xq, x_scale, &qw.head, &mut out);
                }
                out
            }
            // `vec_mat` accumulates in ascending order, matching every f32
            // family's forward matmul bit-for-bit.
            None => vec_mat(&last_ln, self.w.head),
        };
        obs.rate_gauge("decode.prefill.tokens_per_sec", n as f64, span.stop().as_secs_f64());
        PrefixState {
            kcache,
            vcache,
            len: n,
            logits,
            dropped_prompt_tokens: plan.dropped_prompt_tokens,
        }
    }

    /// Decodes one sequence forked from `prefix` (batch of one).
    pub fn decode_one<R: Rng>(
        &mut self,
        prefix: &PrefixState,
        max_new: usize,
        opts: &SampleOptions,
        rng: &mut R,
    ) -> Generation {
        self.decode_batch(prefix, max_new, std::slice::from_ref(opts), std::slice::from_mut(rng))
            .pop()
            .expect("one sequence in, one generation out")
    }

    /// Decodes `opts.len()` sequences forked from `prefix` in lock-step:
    /// every live sequence samples, then all pending tokens run through
    /// the model as one `[live, d]` batched forward. Sequences retire
    /// independently when they sample `<eos>` or exhaust the budget.
    ///
    /// Each sequence's ids are bit-identical to decoding it alone from
    /// the same prefix with the same sampler — batching is a throughput
    /// knob, never a semantic one.
    pub fn decode_batch<S: TokenSampler>(
        &mut self,
        prefix: &PrefixState,
        max_new: usize,
        opts: &[SampleOptions],
        samplers: &mut [S],
    ) -> Vec<Generation> {
        assert_eq!(opts.len(), samplers.len(), "one sampler per sequence");
        let obs = pyranet_obs::global();
        let span = obs.span("decode.batch");
        let n_seq = opts.len();
        obs.counter("decode.forks").add(n_seq as u64);
        let new_budget = max_new.min(self.max_seq.saturating_sub(prefix.len));
        let clamped = max_new - new_budget;
        let mut seqs: Vec<SeqState> = (0..n_seq).map(|_| self.open_seq(prefix)).collect();
        let mut outs: Vec<Vec<usize>> = (0..n_seq).map(|_| Vec::new()).collect();
        let mut alive = vec![true; n_seq];
        for step in 0..new_budget {
            // Sample every live sequence (ascending index; each sequence
            // has its own sampler, so the order is cosmetic).
            let mut any_live = false;
            for i in 0..n_seq {
                if !alive[i] {
                    continue;
                }
                let next =
                    samplers[i].next_token(seqs[i].logits(), &opts[i], &mut self.scratch.sample);
                if next == EOS {
                    alive[i] = false;
                    continue;
                }
                outs[i].push(next);
                seqs[i].push_token(next);
                any_live = true;
            }
            // The budget's final tokens feed nothing — skip their forward
            // (the legacy loop computed and discarded it).
            if !any_live || step + 1 == new_budget {
                break;
            }
            let mut rows: Vec<(&mut SeqState, &PrefixState)> =
                seqs.iter_mut().zip(&alive).filter(|(_, &a)| a).map(|(s, _)| (s, prefix)).collect();
            self.step_seqs(&mut rows);
        }
        let tokens: u64 = outs.iter().map(|o| o.len() as u64).sum();
        let eos_retired = alive.iter().filter(|a| !**a).count();
        obs.counter("decode.tokens").add(tokens);
        obs.counter("decode.retired_eos").add(eos_retired as u64);
        obs.counter("decode.retired_budget").add((n_seq - eos_retired) as u64);
        obs.rate_gauge("decode.tokens_per_sec", tokens as f64, span.stop().as_secs_f64());
        outs.into_iter()
            .map(|ids| Generation {
                ids,
                dropped_prompt_tokens: prefix.dropped_prompt_tokens,
                clamped_new_tokens: clamped,
            })
            .collect()
    }

    /// One lock-step decode step over an arbitrary batch of sequences:
    /// each row absorbs its sequence's pending token (at that sequence's
    /// own position, attending over that sequence's own prefix ‖ suffix)
    /// and refreshes the sequence's logits. This is the continuous-batch
    /// primitive — rows may come from different prompts, different
    /// requests, and different decode depths, and per-row results are
    /// bit-identical to stepping each sequence alone.
    ///
    /// The caller must only include rows whose pending position is inside
    /// the context window (`seq.pos() < session.max_seq()`); sequences at
    /// their token budget should simply be left out of the batch — their
    /// final forward would feed nothing.
    pub fn step_seqs(&mut self, rows: &mut [(&mut SeqState, &PrefixState)]) {
        let n = rows.len();
        if n == 0 {
            return;
        }
        let (d, nh, hs, scale) = (self.d, self.nh, self.hs, self.scale);
        let sc = &mut self.scratch;
        set_rows(&mut sc.x, n);
        for (r, (seq, _)) in rows.iter().enumerate() {
            let id = seq.last;
            let t = seq.pos;
            debug_assert!(t < self.max_seq, "pending token outside the context window");
            for c in 0..d {
                sc.x.data[r * d + c] = self.w.tok.data[id * d + c] + self.w.pos.data[t * d + c];
            }
        }
        for li in 0..self.n_layers {
            set_rows(&mut sc.xn, n);
            for r in 0..n {
                ln_row_into(&sc.x.data[r * d..(r + 1) * d], &mut sc.xn.data[r * d..(r + 1) * d]);
            }
            set_rows(&mut sc.q, n);
            set_rows(&mut sc.k, n);
            set_rows(&mut sc.v, n);
            let qw = self.quant.as_ref();
            let mode = self.kernels;
            project_into(
                mode,
                qw.map(|q| &q.wq[li]),
                &sc.xn,
                &self.w.wq[li],
                &mut sc.q,
                &mut sc.xq,
            );
            project_into(
                mode,
                qw.map(|q| &q.wk[li]),
                &sc.xn,
                &self.w.wk[li],
                &mut sc.k,
                &mut sc.xq,
            );
            project_into(
                mode,
                qw.map(|q| &q.wv[li]),
                &sc.xn,
                &self.w.wv[li],
                &mut sc.v,
                &mut sc.xq,
            );
            for (r, (seq, _)) in rows.iter_mut().enumerate() {
                seq.k[li].extend_from_slice(&sc.k.data[r * d..(r + 1) * d]);
                seq.v[li].extend_from_slice(&sc.v.data[r * d..(r + 1) * d]);
            }
            set_rows(&mut sc.merged, n);
            for (r, (seq, prefix)) in rows.iter().enumerate() {
                attend_row(
                    &sc.q.data[r * d..(r + 1) * d],
                    &mut sc.merged.data[r * d..(r + 1) * d],
                    &prefix.kcache[li],
                    &prefix.vcache[li],
                    &seq.k[li],
                    &seq.v[li],
                    d,
                    nh,
                    hs,
                    scale,
                    &mut sc.scores,
                    qw.is_some(),
                );
            }
            set_rows(&mut sc.proj, n);
            project_into(
                mode,
                qw.map(|q| &q.wo[li]),
                &sc.merged,
                &self.w.wo[li],
                &mut sc.proj,
                &mut sc.xq,
            );
            for (xv, pv) in sc.x.data.iter_mut().zip(&sc.proj.data) {
                *xv += pv;
            }
            set_rows(&mut sc.xn, n);
            for r in 0..n {
                ln_row_into(&sc.x.data[r * d..(r + 1) * d], &mut sc.xn.data[r * d..(r + 1) * d]);
            }
            set_rows(&mut sc.h1, n);
            project_into(
                mode,
                qw.map(|q| &q.w1[li]),
                &sc.xn,
                &self.w.w1[li],
                &mut sc.h1,
                &mut sc.xq,
            );
            // Int8 sessions take the polynomial gelu too — same
            // reproducible-not-bit-identical contract as their matmuls.
            if qw.is_some() {
                for vx in sc.h1.data.iter_mut() {
                    *vx = gelu_fwd_fast(*vx);
                }
            } else {
                for vx in sc.h1.data.iter_mut() {
                    *vx = gelu_fwd(*vx);
                }
            }
            set_rows(&mut sc.h2, n);
            project_into(
                mode,
                qw.map(|q| &q.w2[li]),
                &sc.h1,
                &self.w.w2[li],
                &mut sc.h2,
                &mut sc.xq,
            );
            for (xv, pv) in sc.x.data.iter_mut().zip(&sc.h2.data) {
                *xv += pv;
            }
        }
        set_rows(&mut sc.xn, n);
        for r in 0..n {
            ln_row_into(&sc.x.data[r * d..(r + 1) * d], &mut sc.xn.data[r * d..(r + 1) * d]);
        }
        set_rows(&mut sc.logits, n);
        project_into(
            self.kernels,
            self.quant.as_ref().map(|q| &q.head),
            &sc.xn,
            self.w.head,
            &mut sc.logits,
            &mut sc.xq,
        );
        let vocab = self.vocab;
        for (r, (seq, _)) in rows.iter_mut().enumerate() {
            seq.logits.copy_from_slice(&sc.logits.data[r * vocab..(r + 1) * vocab]);
            seq.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_keeps_legacy_semantics_when_prompt_fits() {
        // Fits with room to spare: nothing dropped, nothing clamped.
        let p = PromptPlan::new(10, 20, 64);
        assert_eq!(
            p,
            PromptPlan {
                kept_prompt_tokens: 10,
                dropped_prompt_tokens: 0,
                new_token_budget: 20,
                clamped_new_tokens: 0,
            }
        );
        // Fits, but the window clamps the budget — exactly the legacy
        // `(prompt + max_new).min(max_seq)` arithmetic.
        let p = PromptPlan::new(60, 20, 64);
        assert_eq!(p.new_token_budget, 4);
        assert_eq!(p.clamped_new_tokens, 16);
        assert_eq!(p.dropped_prompt_tokens, 0);
        // One slot left: legacy sampled exactly one token here.
        let p = PromptPlan::new(63, 20, 64);
        assert_eq!(p.new_token_budget, 1);
        assert!(!p.truncated());
    }

    #[test]
    fn plan_trims_overflowing_prompt_head_with_headroom() {
        // Prompt alone overflows: keep the tail, reserve up to a quarter
        // of the window for decoding.
        let p = PromptPlan::new(100, 40, 64);
        assert_eq!(p.kept_prompt_tokens, 48); // 64 - 64/4
        assert_eq!(p.dropped_prompt_tokens, 52);
        assert_eq!(p.new_token_budget, 16);
        assert!(p.truncated());
        // Small max_new requests reserve only what they need.
        let p = PromptPlan::new(100, 5, 64);
        assert_eq!(p.kept_prompt_tokens, 59);
        assert_eq!(p.new_token_budget, 5);
        // max_new = 0 never trims (nothing to decode anyway).
        let p = PromptPlan::new(100, 0, 64);
        assert_eq!(p.kept_prompt_tokens, 64);
        assert_eq!(p.new_token_budget, 0);
    }

    #[test]
    fn plan_degenerate_windows() {
        let p = PromptPlan::new(10, 3, 1);
        assert_eq!(p.kept_prompt_tokens, 0);
        assert_eq!(p.new_token_budget, 1);
        let p = PromptPlan::new(0, 8, 16);
        assert_eq!(p.kept_prompt_tokens, 0);
        assert_eq!(p.dropped_prompt_tokens, 0);
        assert_eq!(p.new_token_budget, 8);
    }

    #[test]
    fn plan_never_underflows_on_overlong_prompts_or_empty_windows() {
        // Regression: an over-long prompt with `max_new == 0` takes the
        // untrimmed branch; `kept` must still be clamped to the window or
        // `max_seq - kept` underflows `usize` (debug-build panic).
        for prompt_len in [65usize, 100, 1 << 20, usize::MAX] {
            let p = PromptPlan::new(prompt_len, 0, 64);
            assert_eq!(p.kept_prompt_tokens, 64);
            assert_eq!(p.dropped_prompt_tokens, prompt_len - 64);
            assert_eq!(p.new_token_budget, 0);
            assert_eq!(p.clamped_new_tokens, 0);
        }
        // A zero-length window can neither keep prompt tokens nor decode.
        for (prompt_len, max_new) in [(0usize, 0usize), (0, 5), (9, 0), (9, 5)] {
            let p = PromptPlan::new(prompt_len, max_new, 0);
            assert_eq!(p.kept_prompt_tokens, 0);
            assert_eq!(p.dropped_prompt_tokens, prompt_len);
            assert_eq!(p.new_token_budget, 0);
            assert_eq!(p.clamped_new_tokens, max_new);
        }
        // The invariant the window plan sells, at assorted corners.
        for (pl, mn, ms) in [(64, 0, 64), (64, 1, 64), (63, 0, 64), (65, 1, 64), (1, 1, 1)] {
            let p = PromptPlan::new(pl, mn, ms);
            assert!(p.kept_prompt_tokens + p.new_token_budget <= ms, "{pl} {mn} {ms}: {p:?}");
            assert_eq!(p.kept_prompt_tokens + p.dropped_prompt_tokens, pl);
            assert_eq!(p.new_token_budget + p.clamped_new_tokens, mn);
        }
    }
}
