//! Model configurations — the Table II analogues.
//!
//! The paper fine-tunes CodeLlama-7B (32 layers, 32 heads), CodeLlama-13B
//! (40 layers, 40 heads, head size 128) and DeepSeek-Coder-7B (30 layers,
//! 30 heads), all at learning rate 2e-4 for 1–3 epochs. Our substitutes
//! scale those architectures down by a constant factor while preserving the
//! relative ordering (13B analogue > 7B analogue in capacity, DeepSeek
//! analogue same size as 7B but a different FFN ratio and pre-training
//! seed, mirroring "same scale, different recipe").

use serde::{Deserialize, Serialize};

/// Architecture + fine-tuning hyperparameters for one base model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Display name (e.g. "codeLlama-7B-analog").
    pub name: String,
    /// Embedding/hidden width.
    pub d_model: usize,
    /// Number of transformer blocks.
    pub n_layers: usize,
    /// Attention heads (must divide `d_model`).
    pub n_heads: usize,
    /// FFN inner width.
    pub d_ff: usize,
    /// Maximum sequence length (the Table II "context size" analogue).
    pub max_seq: usize,
    /// Learning rate (paper: 2e-4).
    pub learning_rate: f32,
    /// Pre-training seed (differentiates "base model checkpoints").
    pub seed: u64,
}

impl ModelConfig {
    /// The CodeLlama-7B stand-in.
    pub fn codellama_7b() -> ModelConfig {
        ModelConfig {
            name: "codeLlama-7B-analog".into(),
            d_model: 80,
            n_layers: 2,
            n_heads: 4,
            d_ff: 160,
            max_seq: 320,
            learning_rate: 2e-4,
            seed: 0x7B00,
        }
    }

    /// The CodeLlama-13B stand-in (more layers, wider — strictly more
    /// capacity than the 7B analogue).
    pub fn codellama_13b() -> ModelConfig {
        ModelConfig {
            name: "codeLlama-13B-analog".into(),
            d_model: 96,
            n_layers: 3,
            n_heads: 4,
            d_ff: 192,
            max_seq: 320,
            learning_rate: 2e-4,
            seed: 0x13B0,
        }
    }

    /// The DeepSeek-Coder-7B stand-in (7B-scale width, deeper FFN, its own
    /// pre-training seed — a "same size, better recipe" base).
    pub fn deepseek_7b() -> ModelConfig {
        ModelConfig {
            name: "DeepSeek-Coder-7B-analog".into(),
            d_model: 88,
            n_layers: 3,
            n_heads: 4,
            d_ff: 220,
            max_seq: 320,
            learning_rate: 2e-4,
            seed: 0xD5C0,
        }
    }

    /// All three base configurations (Table II rows).
    pub fn all_bases() -> Vec<ModelConfig> {
        vec![Self::codellama_7b(), Self::codellama_13b(), Self::deepseek_7b()]
    }

    /// Head size, `d_model / n_heads`.
    pub fn head_size(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// Rough trainable-parameter count for a vocabulary of `vocab` words.
    pub fn param_count(&self, vocab: usize) -> usize {
        let attn = 4 * self.d_model * self.d_model;
        let ffn = 2 * self.d_model * self.d_ff;
        vocab * self.d_model // token embedding
            + self.max_seq * self.d_model // position embedding
            + self.n_layers * (attn + ffn)
            + self.d_model * vocab // head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heads_divide_width() {
        for c in ModelConfig::all_bases() {
            assert_eq!(c.d_model % c.n_heads, 0, "{}", c.name);
            assert!(c.head_size() > 0);
        }
    }

    #[test]
    fn capacity_ordering_13b_largest() {
        let v = 1000;
        let p7 = ModelConfig::codellama_7b().param_count(v);
        let p13 = ModelConfig::codellama_13b().param_count(v);
        let pds = ModelConfig::deepseek_7b().param_count(v);
        assert!(p13 > p7, "13B analogue must out-size 7B analogue");
        assert!(p13 > pds);
        assert!(pds > p7, "DeepSeek analogue sits between");
    }

    #[test]
    fn learning_rate_matches_paper() {
        for c in ModelConfig::all_bases() {
            assert!((c.learning_rate - 2e-4).abs() < 1e-9, "Table II fixes lr at 2e-4");
        }
    }

    #[test]
    fn distinct_seeds_per_base() {
        let seeds: std::collections::HashSet<u64> =
            ModelConfig::all_bases().iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), 3);
    }
}
