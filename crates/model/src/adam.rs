//! The Adam optimizer.

use crate::tensor::Matrix;

/// Adam optimizer state for one parameter tensor.
#[derive(Debug, Clone, Default)]
struct Moments {
    m: Vec<f32>,
    v: Vec<f32>,
}

/// Adam with bias correction; hyperparameters match the common defaults
/// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8). The learning rate is the paper's
/// 2e-4 by default (Table II).
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    states: Vec<Moments>,
}

impl Adam {
    /// Creates an optimizer for `n_params` tensors at learning rate `lr`.
    pub fn new(n_params: usize, lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            states: vec![Moments::default(); n_params],
        }
    }

    /// Number of tracked parameter tensors.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when tracking no tensors.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Applies one update step: `params[i] -= lr * m̂ / (sqrt(v̂) + ε)`.
    ///
    /// # Panics
    ///
    /// Panics when `params` and `grads` lengths differ from the tracked
    /// count, or when a gradient shape differs from its parameter.
    pub fn step(&mut self, params: &mut [&mut Matrix], grads: &[Matrix]) {
        assert_eq!(params.len(), self.states.len(), "parameter count changed");
        assert_eq!(grads.len(), self.states.len(), "gradient count mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (b1, b2, omb1, omb2) = (self.beta1, self.beta2, 1.0 - self.beta1, 1.0 - self.beta2);
        for ((p, g), st) in params.iter_mut().zip(grads).zip(&mut self.states) {
            assert_eq!(p.data.len(), g.data.len(), "grad shape mismatch");
            if st.m.is_empty() {
                st.m = vec![0.0; p.data.len()];
                st.v = vec![0.0; p.data.len()];
            }
            let moments = st.m.iter_mut().zip(st.v.iter_mut());
            for ((pi, &gi), (mi, vi)) in p.data.iter_mut().zip(&g.data).zip(moments) {
                *mi = b1 * *mi + omb1 * gi;
                *vi = b2 * *vi + omb2 * gi * gi;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *pi -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimises_a_quadratic() {
        // minimise f(x) = (x - 3)^2 elementwise
        let mut x = Matrix::new(1, 4, vec![0.0, 10.0, -5.0, 3.0]);
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let grad = Matrix::new(1, 4, x.data.iter().map(|v| 2.0 * (v - 3.0)).collect());
            opt.step(&mut [&mut x], &[grad]);
        }
        for v in &x.data {
            assert!((v - 3.0).abs() < 1e-2, "converged to {v}");
        }
    }

    #[test]
    fn step_count_and_lr_exposed() {
        let opt = Adam::new(3, 2e-4);
        assert_eq!(opt.len(), 3);
        assert!(!opt.is_empty());
        assert!((opt.lr - 2e-4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "parameter count changed")]
    fn mismatched_param_count_panics() {
        let mut opt = Adam::new(2, 0.1);
        let mut x = Matrix::zeros(1, 1);
        let g = Matrix::zeros(1, 1);
        opt.step(&mut [&mut x], &[g]);
    }
}
