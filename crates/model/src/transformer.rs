//! Decoder-only transformer language model.
//!
//! Pre-norm blocks with causal multi-head attention and GELU FFNs; learned
//! token + position embeddings and a separate output head. Training builds
//! an autograd [`Graph`] per sequence; generation uses a raw-matrix
//! KV-cached fast path over the (LoRA-merged) weights.

use crate::adam::Adam;
use crate::config::ModelConfig;
use crate::decode::{DecodeSession, Generation};
use crate::lora::{Adapter, LoraConfig, LoraState};
use crate::sampler::{sample_logits, SampleOptions};
use crate::tensor::{Graph, KernelMode, Matrix, TensorId};
use pyranet_exec::ExecConfig;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::borrow::Cow;
use std::collections::HashMap;

/// One training example: token ids, the index where code begins (loss is
/// masked to code tokens), and the PyraNet per-sample loss weight.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainExample {
    /// `<bos> desc <sep> code <eos>` token ids.
    pub ids: Vec<usize>,
    /// Index of the first code token.
    pub code_start: usize,
    /// Loss weight (layer weight in PyraNet fine-tuning; 1.0 for plain SFT).
    pub weight: f32,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct LayerIdx {
    wq: usize,
    wk: usize,
    wv: usize,
    wo: usize,
    w1: usize,
    w2: usize,
}

/// The language model.
#[derive(Debug, Clone)]
pub struct TransformerLm {
    /// Architecture + training hyperparameters.
    pub cfg: ModelConfig,
    vocab: usize,
    params: Vec<Matrix>,
    tok_emb: usize,
    pos_emb: usize,
    head: usize,
    layers: Vec<LayerIdx>,
    lora: Option<LoraState>,
    /// Kernel family used by training graphs and (by default) decode
    /// sessions. A performance knob, **not** part of the model's identity:
    /// deliberately excluded from `PartialEq` so "same weights through
    /// different kernels" compares equal.
    kernels: KernelMode,
}

impl PartialEq for TransformerLm {
    fn eq(&self, other: &TransformerLm) -> bool {
        self.cfg == other.cfg
            && self.vocab == other.vocab
            && self.params == other.params
            && self.tok_emb == other.tok_emb
            && self.pos_emb == other.pos_emb
            && self.head == other.head
            && self.layers == other.layers
            && self.lora == other.lora
    }
}

impl TransformerLm {
    /// Initialises a model with `vocab` tokens from `cfg.seed`.
    pub fn new(cfg: ModelConfig, vocab: usize) -> TransformerLm {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut params = Vec::new();
        let d = cfg.d_model;
        let mut alloc = |rows: usize, cols: usize, rng: &mut ChaCha8Rng| {
            let std = 0.08;
            let m = Matrix::new(
                rows,
                cols,
                (0..rows * cols).map(|_| (rng.random::<f32>() - 0.5) * 2.0 * std).collect(),
            );
            params.push(m);
            params.len() - 1
        };
        let tok_emb = alloc(vocab, d, &mut rng);
        let pos_emb = alloc(cfg.max_seq, d, &mut rng);
        let mut layers = Vec::with_capacity(cfg.n_layers);
        for _ in 0..cfg.n_layers {
            layers.push(LayerIdx {
                wq: alloc(d, d, &mut rng),
                wk: alloc(d, d, &mut rng),
                wv: alloc(d, d, &mut rng),
                wo: alloc(d, d, &mut rng),
                w1: alloc(d, cfg.d_ff, &mut rng),
                w2: alloc(cfg.d_ff, d, &mut rng),
            });
        }
        let head = alloc(d, vocab, &mut rng);
        TransformerLm {
            cfg,
            vocab,
            params,
            tok_emb,
            pos_emb,
            head,
            layers,
            lora: None,
            kernels: crate::tensor::kernel_mode(),
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// The kernel family this model's graphs and sessions dispatch to.
    pub fn kernels(&self) -> KernelMode {
        self.kernels
    }

    /// Selects the kernel family for subsequent training graphs and
    /// decode sessions (see [`KernelMode`] for the exactness contract of
    /// each family).
    pub fn set_kernels(&mut self, mode: KernelMode) {
        self.kernels = mode;
    }

    /// Total parameter scalars (base weights).
    pub fn param_scalars(&self) -> usize {
        self.params.iter().map(|m| m.data.len()).sum()
    }

    /// Whether LoRA adapters are attached.
    pub fn has_lora(&self) -> bool {
        self.lora.is_some()
    }

    /// Attaches fresh LoRA adapters to every attention projection (q, v) —
    /// the standard target set. Subsequent training updates only the
    /// adapters; the base stays frozen.
    pub fn enable_lora(&mut self, cfg: LoraConfig) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed ^ 0x10_7A);
        let d = self.cfg.d_model;
        let mut adapters = Vec::new();
        for l in &self.layers {
            adapters.push(Adapter::new(l.wq, d, d, &cfg, &mut rng));
            adapters.push(Adapter::new(l.wv, d, d, &cfg, &mut rng));
        }
        self.lora = Some(LoraState { cfg, adapters });
    }

    /// Folds the adapters into the base weights and detaches them.
    pub fn merge_lora(&mut self) {
        if let Some(state) = self.lora.take() {
            let scale = state.cfg.scale();
            for ad in &state.adapters {
                let delta = ad.delta(scale, self.kernels);
                for (w, dx) in self.params[ad.target].data.iter_mut().zip(&delta.data) {
                    *w += dx;
                }
            }
        }
    }

    /// Number of trainable tensors in the current mode (feeds
    /// [`Adam::new`]).
    pub fn trainable_count(&self) -> usize {
        match &self.lora {
            Some(s) => s.adapters.len() * 2,
            None => self.params.len(),
        }
    }

    /// The effective (LoRA-merged) weight for a parameter index — used by
    /// the inference fast path. Borrows the base weight unless an adapter
    /// actually modifies it, so LoRA-free generation never copies weights.
    fn effective_weight(&self, idx: usize) -> Cow<'_, Matrix> {
        let base = &self.params[idx];
        match &self.lora {
            Some(state) => match state.adapter_for(idx) {
                Some(ad) => {
                    let mut w = base.clone();
                    let delta = ad.delta(state.cfg.scale(), self.kernels);
                    for (x, d) in w.data.iter_mut().zip(&delta.data) {
                        *x += d;
                    }
                    Cow::Owned(w)
                }
                None => Cow::Borrowed(base),
            },
            None => Cow::Borrowed(base),
        }
    }

    /// A linear layer inside the graph, LoRA-aware. `trainables` collects
    /// `(param_key, tensor_id)` for the optimizer; base weights become
    /// constants in LoRA mode.
    fn linear(
        &self,
        g: &mut Graph,
        x: TensorId,
        idx: usize,
        trainables: &mut Vec<(TrainKey, TensorId)>,
    ) -> TensorId {
        match &self.lora {
            Some(state) => {
                let w = g.constant(self.params[idx].clone());
                let base_out = g.matmul(x, w);
                match state.adapter_for(idx) {
                    Some(ad) => {
                        let a = g.param(ad.a.clone());
                        let b = g.param(ad.b.clone());
                        trainables.push((TrainKey::LoraA(idx), a));
                        trainables.push((TrainKey::LoraB(idx), b));
                        let xa = g.matmul(x, a);
                        let xab = g.matmul(xa, b);
                        let scaled = g.scale(xab, state.cfg.scale());
                        g.add(base_out, scaled)
                    }
                    None => base_out,
                }
            }
            None => {
                let w = g.param(self.params[idx].clone());
                trainables.push((TrainKey::Base(idx), w));
                g.matmul(x, w)
            }
        }
    }

    /// Embedding-style parameter as a graph leaf.
    fn table(
        &self,
        g: &mut Graph,
        idx: usize,
        trainables: &mut Vec<(TrainKey, TensorId)>,
    ) -> TensorId {
        if self.lora.is_some() {
            g.constant(self.params[idx].clone())
        } else {
            let t = g.param(self.params[idx].clone());
            trainables.push((TrainKey::Base(idx), t));
            t
        }
    }

    /// Builds the forward graph up to logits for `ids`; returns the logits
    /// node and the trainable map.
    fn forward(&self, g: &mut Graph, ids: &[usize]) -> (TensorId, Vec<(TrainKey, TensorId)>) {
        let mut trainables = Vec::new();
        let len = ids.len().min(self.cfg.max_seq);
        let ids = &ids[..len];
        let tok = self.table(g, self.tok_emb, &mut trainables);
        let pos = self.table(g, self.pos_emb, &mut trainables);
        let te = g.gather(tok, ids);
        let positions: Vec<usize> = (0..len).collect();
        let pe = g.gather(pos, &positions);
        let mut x = g.add(te, pe);
        let hs = self.cfg.head_size();
        let scale = 1.0 / (hs as f32).sqrt();
        for l in &self.layers {
            let xn = g.layernorm(x);
            let q = self.linear(g, xn, l.wq, &mut trainables);
            let k = self.linear(g, xn, l.wk, &mut trainables);
            let v = self.linear(g, xn, l.wv, &mut trainables);
            let mut head_outs = Vec::with_capacity(self.cfg.n_heads);
            for h in 0..self.cfg.n_heads {
                let qh = g.slice_cols(q, h * hs, hs);
                let kh = g.slice_cols(k, h * hs, hs);
                let vh = g.slice_cols(v, h * hs, hs);
                let scores = g.matmul_nt(qh, kh);
                let scaled = g.scale(scores, scale);
                let attn = g.softmax(scaled, true);
                head_outs.push(g.matmul(attn, vh));
            }
            let merged = g.concat_cols(&head_outs);
            let proj = self.linear(g, merged, l.wo, &mut trainables);
            x = g.add(x, proj);
            let xn = g.layernorm(x);
            let h1 = self.linear(g, xn, l.w1, &mut trainables);
            let h1 = g.gelu(h1);
            let h2 = self.linear(g, h1, l.w2, &mut trainables);
            x = g.add(x, h2);
        }
        let xn = g.layernorm(x);
        let head = self.table(g, self.head, &mut trainables);
        let logits = g.matmul(xn, head);
        (logits, trainables)
    }

    /// Loss for one example (graph-building path; used by both training and
    /// [`TransformerLm::nll`]).
    fn example_loss(
        &self,
        g: &mut Graph,
        ex: &TrainExample,
    ) -> Option<(TensorId, Vec<(TrainKey, TensorId)>)> {
        let len = ex.ids.len().min(self.cfg.max_seq);
        if len < 2 || ex.code_start >= len {
            return None;
        }
        let (logits, trainables) = self.forward(g, &ex.ids[..len]);
        // Row i predicts ids[i+1]; rows 0..len-1 participate, weighted so
        // only code-region targets count.
        let rows = len - 1;
        let logits_rows = g.slice_rows(logits, rows);
        let targets: Vec<usize> = ex.ids[1..len].to_vec();
        // 0/1 masks select the code region; the cross-entropy normalises by
        // the mask sum, so the PyraNet per-sample weight must be applied as
        // an outer scale — otherwise a uniform weight would cancel out.
        let masks: Vec<f32> =
            (0..rows).map(|i| if i + 1 >= ex.code_start { 1.0 } else { 0.0 }).collect();
        if masks.iter().all(|&w| w == 0.0) {
            return None;
        }
        let ce = g.cross_entropy(logits_rows, &targets, &masks);
        let loss = g.scale(ce, ex.weight);
        Some((loss, trainables))
    }

    /// Forward + backward for one example; pure over `&self`, so a batch of
    /// these can run concurrently.
    fn example_grads(&self, ex: &TrainExample) -> Option<(f32, Vec<(TrainKey, Matrix)>)> {
        let mut g = Graph::with_kernels(self.kernels);
        let (loss, trainables) = self.example_loss(&mut g, ex)?;
        let loss_val = g.value(loss).data[0];
        g.backward(loss);
        Some((loss_val, trainables.into_iter().map(|(key, tid)| (key, g.grad(tid))).collect()))
    }

    /// Runs one optimizer step over a mini-batch (gradients are averaged
    /// across examples). Returns the mean loss, or `None` when no example
    /// in the batch had a supervisable code region.
    pub fn train_step(&mut self, batch: &[TrainExample], opt: &mut Adam) -> Option<f32> {
        self.train_step_with(batch, opt, &ExecConfig::new())
    }

    /// [`TransformerLm::train_step`] with an explicit executor.
    ///
    /// Per-example gradients are computed through [`pyranet_exec::par_map`]
    /// (pure per example) and then folded **in ascending example index** —
    /// exactly the order the old sequential loop used. Because the fold is
    /// sequential and order-fixed, every accumulated gradient, and thus
    /// every weight after the optimizer step, is byte-identical at any
    /// thread count.
    pub fn train_step_with(
        &mut self,
        batch: &[TrainExample],
        opt: &mut Adam,
        exec: &ExecConfig,
    ) -> Option<f32> {
        let _span = pyranet_obs::global().span("model.train_step");
        let model = &*self;
        let per_example = pyranet_exec::par_map_ref(exec, batch, |ex| model.example_grads(ex));
        let mut grad_acc: HashMap<TrainKey, Matrix> = HashMap::new();
        let mut total_loss = 0.0;
        let mut n = 0usize;
        for (loss, grads) in per_example.into_iter().flatten() {
            total_loss += loss;
            n += 1;
            for (key, grad) in grads {
                grad_acc
                    .entry(key)
                    .and_modify(|acc| {
                        for (a, b) in acc.data.iter_mut().zip(&grad.data) {
                            *a += b;
                        }
                    })
                    .or_insert(grad);
            }
        }
        let obs = pyranet_obs::global();
        obs.counter("model.train_step.examples").add(n as u64);
        obs.counter("model.train_step.skipped").add((batch.len() - n) as u64);
        if n == 0 {
            return None;
        }
        let inv = 1.0 / n as f32;
        // Deterministic parameter order for the optimizer.
        let mut keys: Vec<TrainKey> = grad_acc.keys().copied().collect();
        keys.sort();
        let grads: Vec<Matrix> = keys
            .iter()
            .map(|k| {
                let mut m = grad_acc.remove(k).expect("key present");
                for x in m.data.iter_mut() {
                    *x *= inv;
                }
                m
            })
            .collect();
        // Collect &mut to the actual storage in the same order.
        self.apply_grads(&keys, &grads, opt);
        Some(total_loss / n as f32)
    }

    fn apply_grads(&mut self, keys: &[TrainKey], grads: &[Matrix], opt: &mut Adam) {
        // Split borrows: base params vs lora adapters.
        let mut refs: Vec<*mut Matrix> = Vec::with_capacity(keys.len());
        for k in keys {
            let ptr: *mut Matrix = match k {
                TrainKey::Base(i) => &mut self.params[*i],
                TrainKey::LoraA(t) => {
                    let s = self.lora.as_mut().expect("lora mode");
                    let ad =
                        s.adapters.iter_mut().find(|a| a.target == *t).expect("adapter exists");
                    &mut ad.a
                }
                TrainKey::LoraB(t) => {
                    let s = self.lora.as_mut().expect("lora mode");
                    let ad =
                        s.adapters.iter_mut().find(|a| a.target == *t).expect("adapter exists");
                    &mut ad.b
                }
            };
            refs.push(ptr);
        }
        // SAFETY: the keys are unique (HashMap origin), so the raw pointers
        // alias distinct matrices; we reborrow them mutably exactly once.
        let mut borrowed: Vec<&mut Matrix> = refs.into_iter().map(|p| unsafe { &mut *p }).collect();
        opt.step(&mut borrowed[..], grads);
    }

    /// Mean negative log-likelihood of the code region of one example
    /// (evaluation; no parameter updates).
    pub fn nll(&self, ex: &TrainExample) -> Option<f32> {
        let mut g = Graph::with_kernels(self.kernels);
        let (loss, _) = self.example_loss(&mut g, ex)?;
        Some(g.value(loss).data[0])
    }

    /// Greedy/stochastic generation with a KV cache. Returns only the newly
    /// generated ids (stops at `<eos>`).
    ///
    /// Runs through a one-shot [`crate::decode::DecodeSession`] (pre-merged
    /// weights, scratch arenas, explicit prompt clamping). Output ids are
    /// bit-identical to [`TransformerLm::generate_legacy`] whenever the
    /// prompt fits the context window; over-long prompts are now clamped
    /// tail-first instead of silently swallowing the completion — use
    /// [`TransformerLm::generate_report`] to observe the clamp.
    pub fn generate<R: Rng>(
        &self,
        prompt: &[usize],
        max_new: usize,
        opts: &SampleOptions,
        rng: &mut R,
    ) -> Vec<usize> {
        self.generate_report(prompt, max_new, opts, rng).ids
    }

    /// [`TransformerLm::generate`] returning the full [`Generation`]
    /// (generated ids plus the explicit truncation report).
    pub fn generate_report<R: Rng>(
        &self,
        prompt: &[usize],
        max_new: usize,
        opts: &SampleOptions,
        rng: &mut R,
    ) -> Generation {
        let mut session = DecodeSession::new(self);
        let prefix = session.prefill(prompt, max_new);
        session.decode_one(&prefix, max_new, opts, rng)
    }

    /// The pre-engine generation loop, retained verbatim as the reference
    /// implementation (same discipline as [`crate::tensor::KernelMode`]:
    /// the naive path stays so benchmarks can measure the engine and
    /// property tests can pin bit-identity).
    ///
    /// Known (historical) wart, fixed in the engine path: when
    /// `prompt.len() >= cfg.max_seq` the loop silently drops the forced
    /// tail of the prompt and returns an empty completion.
    pub fn generate_legacy<R: Rng>(
        &self,
        prompt: &[usize],
        max_new: usize,
        opts: &SampleOptions,
        rng: &mut R,
    ) -> Vec<usize> {
        let d = self.cfg.d_model;
        let hs = self.cfg.head_size();
        let nh = self.cfg.n_heads;
        let scale = 1.0 / (hs as f32).sqrt();
        // Merged weights once per call (borrowed straight from the model
        // unless a LoRA adapter forces a merge copy).
        let w = self.decode_weights();

        let mut kcache: Vec<Vec<f32>> = vec![Vec::new(); self.layers.len()];
        let mut vcache: Vec<Vec<f32>> = vec![Vec::new(); self.layers.len()];
        let mut out = Vec::new();
        let mut logits = vec![0.0f32; self.vocab];
        let total_budget = (prompt.len() + max_new).min(self.cfg.max_seq);
        for t in 0..total_budget {
            let id = if t < prompt.len() {
                prompt[t]
            } else {
                let next = sample_logits(&logits, opts, rng);
                if next == crate::tokenizer::EOS {
                    break;
                }
                out.push(next);
                next
            };
            // x = tok[id] + pos[t]
            let mut x: Vec<f32> =
                (0..d).map(|c| w.tok.data[id * d + c] + w.pos.data[t * d + c]).collect();
            for (li, _) in self.layers.iter().enumerate() {
                let xn = ln_vec(&x);
                let q = vec_mat(&xn, &w.wq[li]);
                let k = vec_mat(&xn, &w.wk[li]);
                let v = vec_mat(&xn, &w.wv[li]);
                kcache[li].extend_from_slice(&k);
                vcache[li].extend_from_slice(&v);
                let steps = kcache[li].len() / d;
                let mut merged = vec![0.0f32; d];
                for h in 0..nh {
                    let qh = &q[h * hs..(h + 1) * hs];
                    // scores over cached keys
                    let mut scores = Vec::with_capacity(steps);
                    for s in 0..steps {
                        let kh = &kcache[li][s * d + h * hs..s * d + (h + 1) * hs];
                        let dot: f32 = qh.iter().zip(kh).map(|(a, b)| a * b).sum();
                        scores.push(dot * scale);
                    }
                    crate::tensor::softmax_row_inplace(&mut scores);
                    for (s, w) in scores.iter().enumerate() {
                        let vh = &vcache[li][s * d + h * hs..s * d + (h + 1) * hs];
                        for (j, vx) in vh.iter().enumerate() {
                            merged[h * hs + j] += w * vx;
                        }
                    }
                }
                let proj = vec_mat(&merged, &w.wo[li]);
                for (xi, p) in x.iter_mut().zip(&proj) {
                    *xi += p;
                }
                let xn = ln_vec(&x);
                let mut h1 = vec_mat(&xn, &w.w1[li]);
                for v in h1.iter_mut() {
                    *v = crate::tensor::gelu_fwd(*v);
                }
                let h2 = vec_mat(&h1, &w.w2[li]);
                for (xi, p) in x.iter_mut().zip(&h2) {
                    *xi += p;
                }
            }
            let xn = ln_vec(&x);
            logits = vec_mat(&xn, w.head);
        }
        out
    }

    /// The effective (LoRA-merged) weight set the inference engine runs
    /// on, materialised **once** — borrowed straight from the model unless
    /// an adapter forces a merge copy.
    pub(crate) fn decode_weights(&self) -> DecodeWeights<'_> {
        DecodeWeights {
            tok: &self.params[self.tok_emb],
            pos: &self.params[self.pos_emb],
            head: &self.params[self.head],
            wq: self.layers.iter().map(|l| self.effective_weight(l.wq)).collect(),
            wk: self.layers.iter().map(|l| self.effective_weight(l.wk)).collect(),
            wv: self.layers.iter().map(|l| self.effective_weight(l.wv)).collect(),
            wo: self.layers.iter().map(|l| self.effective_weight(l.wo)).collect(),
            w1: self.layers.iter().map(|l| self.effective_weight(l.w1)).collect(),
            w2: self.layers.iter().map(|l| self.effective_weight(l.w2)).collect(),
        }
    }
}

/// Per-parameter effective weights for the inference fast path (see
/// [`TransformerLm::decode_weights`]). Layer vectors are indexed by block.
#[derive(Debug)]
pub(crate) struct DecodeWeights<'a> {
    pub tok: &'a Matrix,
    pub pos: &'a Matrix,
    pub head: &'a Matrix,
    pub wq: Vec<Cow<'a, Matrix>>,
    pub wk: Vec<Cow<'a, Matrix>>,
    pub wv: Vec<Cow<'a, Matrix>>,
    pub wo: Vec<Cow<'a, Matrix>>,
    pub w1: Vec<Cow<'a, Matrix>>,
    pub w2: Vec<Cow<'a, Matrix>>,
}

/// Stable ordering key for trainable tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum TrainKey {
    Base(usize),
    LoraA(usize),
    LoraB(usize),
}

// ---- small-vector helpers for the inference fast path ----
// (Shared with `crate::decode`; softmax and GELU live in `crate::tensor`
// so the graph ops and both decode paths use one implementation each.)

/// `out = x · w` for a `[1, rows]` vector against a `[rows, cols]` matrix,
/// accumulating in ascending shared-dimension order (the same order as the
/// `KernelMode` matmul kernels, so per-row results agree bit-for-bit with
/// a batched matmul over stacked vectors).
pub(crate) fn vec_mat(x: &[f32], w: &Matrix) -> Vec<f32> {
    debug_assert_eq!(x.len(), w.rows);
    let mut out = vec![0.0f32; w.cols];
    for (k, &xv) in x.iter().enumerate() {
        if xv == 0.0 {
            continue;
        }
        let row = &w.data[k * w.cols..(k + 1) * w.cols];
        for (o, &wv) in out.iter_mut().zip(row) {
            *o += xv * wv;
        }
    }
    out
}

/// Row layer norm into a fresh vector (see [`ln_row_into`]).
pub(crate) fn ln_vec(x: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; x.len()];
    ln_row_into(x, &mut out);
    out
}

/// Row layer norm written into `out`. Single statistics sweep (sum and
/// sum-of-squares together), identical arithmetic to the graph layernorm.
pub(crate) fn ln_row_into(x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    let n = x.len() as f32;
    let (mut sum, mut sumsq) = (0.0f32, 0.0f32);
    for &v in x {
        sum += v;
        sumsq += v * v;
    }
    let mean = sum / n;
    let var = (sumsq / n - mean * mean).max(0.0);
    let rstd = 1.0 / (var + 1e-5).sqrt();
    for (o, &v) in out.iter_mut().zip(x) {
        *o = (v - mean) * rstd;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::{Tokenizer, EOS};

    fn tiny_cfg() -> ModelConfig {
        ModelConfig {
            name: "tiny".into(),
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            d_ff: 32,
            max_seq: 64,
            learning_rate: 3e-3,
            seed: 99,
        }
    }

    fn toy_examples(tk: &Tokenizer) -> Vec<TrainExample> {
        let pairs = [
            ("an inverter", "module inv ( input a , output y ) ; assign y = ~ a ; endmodule"),
            (
                "an and gate",
                "module andg ( input a , input b , output y ) ; assign y = a & b ; endmodule",
            ),
            (
                "an or gate",
                "module org ( input a , input b , output y ) ; assign y = a | b ; endmodule",
            ),
        ];
        pairs
            .iter()
            .map(|(d, c)| {
                let (ids, code_start) = tk.encode_pair(d, c);
                TrainExample { ids, code_start, weight: 1.0 }
            })
            .collect()
    }

    fn toy_tokenizer() -> Tokenizer {
        let corpus = [
            "an inverter",
            "an and gate",
            "an or gate",
            "module inv ( input a , output y ) ; assign y = ~ a ; endmodule",
            "module andg ( input a , input b , output y ) ; assign y = a & b ; endmodule",
            "module org ( input a , input b , output y ) ; assign y = a | b ; endmodule",
        ];
        Tokenizer::build(corpus.iter().copied(), 1)
    }

    #[test]
    fn training_reduces_loss() {
        let tk = toy_tokenizer();
        let mut lm = TransformerLm::new(tiny_cfg(), tk.vocab_size());
        let examples = toy_examples(&tk);
        let mut opt = Adam::new(lm.trainable_count(), 3e-3);
        let first = lm.train_step(&examples, &mut opt).unwrap();
        let mut last = first;
        for _ in 0..60 {
            last = lm.train_step(&examples, &mut opt).unwrap();
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn overfit_model_reproduces_training_code() {
        let tk = toy_tokenizer();
        let mut lm = TransformerLm::new(tiny_cfg(), tk.vocab_size());
        let examples = toy_examples(&tk);
        let mut opt = Adam::new(lm.trainable_count(), 3e-3);
        for _ in 0..250 {
            lm.train_step(&examples, &mut opt);
        }
        let prompt = tk.encode_prompt("an inverter");
        let opts = SampleOptions { temperature: 0.0, top_k: 0 };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let out = lm.generate(&prompt, 40, &opts, &mut rng);
        let text = tk.decode(&out);
        assert!(text.contains("assign y = ~ a"), "generated: {text}");
        assert!(pyranet_verilog::parse(&text).is_ok(), "should parse: {text}");
    }

    #[test]
    fn lora_trains_only_adapters() {
        let tk = toy_tokenizer();
        let mut lm = TransformerLm::new(tiny_cfg(), tk.vocab_size());
        let base_before = lm.params.clone();
        lm.enable_lora(LoraConfig { rank: 2, alpha: 4.0 });
        let examples = toy_examples(&tk);
        let mut opt = Adam::new(lm.trainable_count(), 3e-3);
        for _ in 0..10 {
            lm.train_step(&examples, &mut opt);
        }
        assert_eq!(lm.params, base_before, "base weights must stay frozen under LoRA");
        let st = lm.lora.as_ref().unwrap();
        assert!(
            st.adapters.iter().any(|a| a.b.data.iter().any(|&x| x != 0.0)),
            "adapters must have moved"
        );
    }

    #[test]
    fn lora_reduces_loss_and_merge_preserves_behaviour() {
        let tk = toy_tokenizer();
        let mut lm = TransformerLm::new(tiny_cfg(), tk.vocab_size());
        lm.enable_lora(LoraConfig { rank: 4, alpha: 8.0 });
        let examples = toy_examples(&tk);
        let mut opt = Adam::new(lm.trainable_count(), 1e-2);
        let first = lm.train_step(&examples, &mut opt).unwrap();
        let mut last = first;
        for _ in 0..80 {
            last = lm.train_step(&examples, &mut opt).unwrap();
        }
        assert!(last < first, "lora loss {first} -> {last}");
        let nll_with_adapters = lm.nll(&examples[0]).unwrap();
        lm.merge_lora();
        assert!(!lm.has_lora());
        let nll_merged = lm.nll(&examples[0]).unwrap();
        assert!(
            (nll_with_adapters - nll_merged).abs() < 1e-3,
            "merge must preserve the function: {nll_with_adapters} vs {nll_merged}"
        );
    }

    #[test]
    fn fresh_lora_is_exact_noop() {
        let tk = toy_tokenizer();
        let mut lm = TransformerLm::new(tiny_cfg(), tk.vocab_size());
        let examples = toy_examples(&tk);
        let before = lm.nll(&examples[0]).unwrap();
        lm.enable_lora(LoraConfig { rank: 4, alpha: 8.0 });
        let after = lm.nll(&examples[0]).unwrap();
        assert!((before - after).abs() < 1e-5, "{before} vs {after}");
    }

    #[test]
    fn weighted_examples_move_the_model_less() {
        let tk = toy_tokenizer();
        let examples = toy_examples(&tk);
        let heavy = TrainExample { weight: 1.0, ..examples[0].clone() };
        let light = TrainExample { weight: 0.1, ..examples[0].clone() };
        // Gradient magnitude scales with the weight because the per-example
        // CE normalises by total weight — so train both and compare NLL
        // improvement on the same example after equal steps.
        // Per-row weights inside ONE example normalise out; across a batch,
        // rows from a 1.0-weight example dominate rows of a 0.1 one. Check
        // the batch-mix effect instead:
        let other = examples[1].clone();
        let mixed_heavy = vec![heavy, other.clone()];
        let mixed_light = vec![light, other];
        let mut lm_h = TransformerLm::new(tiny_cfg(), tk.vocab_size());
        let mut lm_l = lm_h.clone();
        let mut oh = Adam::new(lm_h.trainable_count(), 3e-3);
        let mut ol = Adam::new(lm_l.trainable_count(), 3e-3);
        for _ in 0..40 {
            lm_h.train_step(&mixed_heavy, &mut oh);
            lm_l.train_step(&mixed_light, &mut ol);
        }
        let nll_h = lm_h.nll(&examples[0]).unwrap();
        let nll_l = lm_l.nll(&examples[0]).unwrap();
        assert!(
            nll_h < nll_l,
            "the heavily-weighted run should fit example 0 better: {nll_h} vs {nll_l}"
        );
    }

    #[test]
    fn generation_stops_at_eos_and_respects_budget() {
        let tk = toy_tokenizer();
        let lm = TransformerLm::new(tiny_cfg(), tk.vocab_size());
        let prompt = tk.encode_prompt("an inverter");
        let opts = SampleOptions { temperature: 0.8, top_k: 0 };
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let out = lm.generate(&prompt, 10, &opts, &mut rng);
        assert!(out.len() <= 10);
        assert!(!out.contains(&EOS));
        // SEP may legitimately appear in output from an untrained model.
    }

    #[test]
    fn degenerate_examples_are_skipped() {
        let tk = toy_tokenizer();
        let mut lm = TransformerLm::new(tiny_cfg(), tk.vocab_size());
        let mut opt = Adam::new(lm.trainable_count(), 1e-3);
        // code_start beyond the sequence -> no supervisable rows
        let ex = TrainExample { ids: vec![1, 5, 6], code_start: 10, weight: 1.0 };
        assert!(lm.train_step(&[ex], &mut opt).is_none());
        let ex = TrainExample { ids: vec![1], code_start: 0, weight: 1.0 };
        assert!(lm.train_step(&[ex], &mut opt).is_none());
    }

    #[test]
    fn different_seeds_give_different_models() {
        let tk = toy_tokenizer();
        let a = TransformerLm::new(tiny_cfg(), tk.vocab_size());
        let mut cfg = tiny_cfg();
        cfg.seed = 100;
        let b = TransformerLm::new(cfg, tk.vocab_size());
        let ex = &toy_examples(&tk)[0];
        assert_ne!(a.nll(ex), b.nll(ex));
    }

    #[test]
    fn batched_train_step_is_byte_identical_at_any_thread_count() {
        let tk = toy_tokenizer();
        let examples = toy_examples(&tk);
        let train = |threads: usize| {
            let mut lm = TransformerLm::new(tiny_cfg(), tk.vocab_size());
            let mut opt = Adam::new(lm.trainable_count(), 3e-3);
            let exec = ExecConfig::new().threads(threads);
            let mut losses = Vec::new();
            for _ in 0..5 {
                losses.push(lm.train_step_with(&examples, &mut opt, &exec).unwrap().to_bits());
            }
            (losses, lm)
        };
        let (ref_losses, ref_lm) = train(1);
        for threads in [2, 8] {
            let (losses, lm) = train(threads);
            assert_eq!(losses, ref_losses, "losses diverged at threads={threads}");
            assert_eq!(lm, ref_lm, "weights diverged at threads={threads}");
        }
    }

    #[test]
    fn blocked_and_reference_kernels_train_identically() {
        let tk = toy_tokenizer();
        let examples = toy_examples(&tk);
        let train = |mode: KernelMode| {
            let mut lm = TransformerLm::new(tiny_cfg(), tk.vocab_size());
            lm.set_kernels(mode);
            let mut opt = Adam::new(lm.trainable_count(), 3e-3);
            let mut losses = Vec::new();
            for _ in 0..4 {
                losses.push(lm.train_step(&examples, &mut opt).unwrap().to_bits());
            }
            (losses, lm)
        };
        let (blocked_losses, blocked_lm) = train(KernelMode::Blocked);
        let (reference_losses, reference_lm) = train(KernelMode::Reference);
        assert_eq!(blocked_losses, reference_losses, "losses must agree bit-for-bit");
        assert_eq!(blocked_lm, reference_lm, "trained weights must agree bit-for-bit");
    }

    #[test]
    fn simd_kernels_train_deterministically_and_reduce_loss() {
        // Simd training is deliberately *not* bit-identical to Blocked
        // (lane-split nt + statistics sweeps — the documented trade), but
        // it must still converge, stay close, and be exactly reproducible
        // at any thread count.
        let tk = toy_tokenizer();
        let examples = toy_examples(&tk);
        let train = |threads: usize| {
            let mut lm = TransformerLm::new(tiny_cfg(), tk.vocab_size());
            lm.set_kernels(KernelMode::Simd);
            let mut opt = Adam::new(lm.trainable_count(), 3e-3);
            let exec = ExecConfig::new().threads(threads);
            let mut losses = Vec::new();
            for _ in 0..30 {
                losses.push(lm.train_step_with(&examples, &mut opt, &exec).unwrap());
            }
            (losses, lm)
        };
        let (losses, lm) = train(1);
        assert!(
            losses[29] < losses[0] * 0.7,
            "simd loss must fall: {} -> {}",
            losses[0],
            losses[29]
        );
        for threads in [2, 8] {
            let (other_losses, other_lm) = train(threads);
            let bits = |ls: &[f32]| ls.iter().map(|l| l.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&losses), bits(&other_losses), "threads={threads}");
            assert_eq!(lm, other_lm, "weights diverged at threads={threads}");
        }
    }

    #[test]
    fn param_scalars_counts_everything() {
        let lm = TransformerLm::new(tiny_cfg(), 100);
        let c = tiny_cfg();
        let expected = 100 * c.d_model
            + c.max_seq * c.d_model
            + c.n_layers * (4 * c.d_model * c.d_model + 2 * c.d_model * c.d_ff)
            + c.d_model * 100;
        assert_eq!(lm.param_scalars(), expected);
    }
}
