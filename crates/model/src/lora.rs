//! Low-Rank Adaptation (LoRA) — Hu et al., the technique the paper uses
//! for all fine-tuning runs ("The fine-tuning method utilizes the LoRa
//! technique, adhering to its standard training configurations").
//!
//! Adapted weights compute `x·W + (x·A)·B · (α/r)` where `W` is frozen and
//! only `A ∈ ℝ^{d×r}`, `B ∈ ℝ^{r×d}` train. `B` is zero-initialised so an
//! untrained adapter is an exact no-op.

use crate::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// LoRA hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoraConfig {
    /// Adapter rank `r`.
    pub rank: usize,
    /// Scaling numerator `α`; effective scale is `α / r`.
    pub alpha: f32,
}

impl Default for LoraConfig {
    fn default() -> Self {
        LoraConfig { rank: 4, alpha: 8.0 }
    }
}

impl LoraConfig {
    /// The effective delta scale `α / r`.
    pub fn scale(&self) -> f32 {
        if self.rank == 0 {
            0.0
        } else {
            self.alpha / self.rank as f32
        }
    }
}

/// One adapter pair attached to a base weight matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Adapter {
    /// Index of the adapted matrix in the model's parameter list.
    pub target: usize,
    /// Down-projection `A` (`[d_in, r]`), gaussian-initialised.
    pub a: Matrix,
    /// Up-projection `B` (`[r, d_out]`), zero-initialised.
    pub b: Matrix,
}

impl Adapter {
    /// Creates an adapter for a `[d_in, d_out]` base weight.
    pub fn new<R: Rng>(
        target: usize,
        d_in: usize,
        d_out: usize,
        cfg: &LoraConfig,
        rng: &mut R,
    ) -> Adapter {
        let a = Matrix::new(
            d_in,
            cfg.rank,
            (0..d_in * cfg.rank).map(|_| (rng.random::<f32>() - 0.5) * 0.04).collect(),
        );
        let b = Matrix::zeros(cfg.rank, d_out);
        Adapter { target, a, b }
    }

    /// The dense delta `(A·scale)·B` (used when merging and by tests),
    /// computed through the shared matmul kernel of `mode` — exact in
    /// every family (the forward matmul preserves accumulation order).
    pub fn delta(&self, scale: f32, mode: crate::tensor::KernelMode) -> Matrix {
        let mut scaled = self.a.clone();
        for v in scaled.data.iter_mut() {
            *v *= scale;
        }
        let mut out = Matrix::zeros(self.a.rows, self.b.cols);
        crate::tensor::kernels::matmul_into(mode, &scaled, &self.b, &mut out);
        out
    }
}

/// The set of adapters for a model plus the config.
#[derive(Debug, Clone, PartialEq)]
pub struct LoraState {
    /// Hyperparameters.
    pub cfg: LoraConfig,
    /// Adapters in model-parameter order.
    pub adapters: Vec<Adapter>,
}

impl LoraState {
    /// Finds the adapter for a parameter index.
    pub fn adapter_for(&self, target: usize) -> Option<&Adapter> {
        self.adapters.iter().find(|a| a.target == target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn fresh_adapter_is_a_noop() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ad = Adapter::new(0, 8, 8, &LoraConfig::default(), &mut rng);
        let d = ad.delta(LoraConfig::default().scale(), crate::tensor::KernelMode::Blocked);
        assert!(d.data.iter().all(|&x| x == 0.0), "B starts at zero");
    }

    #[test]
    fn rank_zero_scale_is_zero() {
        let cfg = LoraConfig { rank: 0, alpha: 8.0 };
        assert_eq!(cfg.scale(), 0.0);
    }

    #[test]
    fn delta_shape_matches_base() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut ad = Adapter::new(3, 6, 10, &LoraConfig { rank: 2, alpha: 4.0 }, &mut rng);
        // poke B so the delta is nonzero
        ad.b.data[0] = 1.0;
        let d = ad.delta(2.0, crate::tensor::KernelMode::Blocked);
        assert_eq!((d.rows, d.cols), (6, 10));
        assert!(d.data.iter().any(|&x| x != 0.0));
        // every kernel family computes the same delta bit-for-bit
        for mode in [
            crate::tensor::KernelMode::Reference,
            crate::tensor::KernelMode::Simd,
            crate::tensor::KernelMode::QuantizedInt8,
        ] {
            assert_eq!(ad.delta(2.0, mode), d, "{mode} delta diverged");
        }
    }

    #[test]
    fn scale_is_alpha_over_rank() {
        let cfg = LoraConfig { rank: 4, alpha: 8.0 };
        assert!((cfg.scale() - 2.0).abs() < 1e-12);
    }
}
