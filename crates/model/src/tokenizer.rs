//! Word-level tokenizer over Verilog source and English descriptions.
//!
//! Identifiers, numbers and multi-character operators are single tokens;
//! vocabulary is built from a training corpus with a frequency floor.
//! Unknown words map to `<unk>`. Token ids are stable for a given build
//! corpus, which keeps experiments reproducible.

use std::collections::HashMap;

/// Special token: padding.
pub const PAD: usize = 0;
/// Special token: beginning of sequence.
pub const BOS: usize = 1;
/// Special token: separator between description and code.
pub const SEP: usize = 2;
/// Special token: end of sequence.
pub const EOS: usize = 3;
/// Special token: unknown word.
pub const UNK: usize = 4;

const SPECIALS: [&str; 5] = ["<pad>", "<bos>", "<sep>", "<eos>", "<unk>"];

/// A frozen vocabulary mapping words to ids.
#[derive(Debug, Clone, PartialEq)]
pub struct Tokenizer {
    vocab: HashMap<String, usize>,
    words: Vec<String>,
}

/// Splits text into word/operator tokens (shared by vocab building and
/// encoding).
pub fn split_tokens(text: &str) -> Vec<&str> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_' || b == b'$' || b == b'\'';
    let mut i = 0;
    while i < bytes.len() {
        if is_word(bytes[i]) {
            let start = i;
            while i < bytes.len() && is_word(bytes[i]) {
                i += 1;
            }
            out.push(&text[start..i]);
        } else if bytes[i].is_ascii_whitespace() {
            i += 1;
        } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'/') {
            // Comments are dropped: decoded text has no newlines, so a kept
            // `//` would comment out the rest of the module.
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                i += 1;
            }
            i = (i + 2).min(bytes.len());
        } else {
            // greedy multi-char operators
            let three = text.get(i..i + 3);
            let two = text.get(i..i + 2);
            if let Some(t) = three.filter(|t| matches!(*t, "<<<" | ">>>" | "===" | "!==")) {
                out.push(t);
                i += 3;
            } else if let Some(t) = two.filter(|t| {
                matches!(
                    *t,
                    "<<" | ">>"
                        | "<="
                        | ">="
                        | "=="
                        | "!="
                        | "&&"
                        | "||"
                        | "~^"
                        | "^~"
                        | "~&"
                        | "~|"
                        | "**"
                        | "+:"
                        | "-:"
                )
            }) {
                out.push(t);
                i += 2;
            } else {
                out.push(&text[i..i + 1]);
                i += 1;
            }
        }
    }
    out
}

impl Tokenizer {
    /// Builds a vocabulary from an iterator of texts, keeping words that
    /// occur at least `min_count` times.
    pub fn build<'t, I: IntoIterator<Item = &'t str>>(texts: I, min_count: usize) -> Tokenizer {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for text in texts {
            for tok in split_tokens(text) {
                *counts.entry(tok.to_owned()).or_insert(0) += 1;
            }
        }
        let mut kept: Vec<(String, usize)> =
            counts.into_iter().filter(|(_, c)| *c >= min_count).collect();
        // deterministic order: by descending count, then lexicographic
        kept.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut words: Vec<String> = SPECIALS.iter().map(|s| (*s).to_owned()).collect();
        words.extend(kept.into_iter().map(|(w, _)| w));
        let vocab = words.iter().enumerate().map(|(i, w)| (w.clone(), i)).collect();
        Tokenizer { vocab, words }
    }

    /// Vocabulary size including specials.
    pub fn vocab_size(&self) -> usize {
        self.words.len()
    }

    /// Encodes text to ids (no specials added).
    pub fn encode(&self, text: &str) -> Vec<usize> {
        split_tokens(text).into_iter().map(|t| self.vocab.get(t).copied().unwrap_or(UNK)).collect()
    }

    /// Encodes a (description, code) pair as
    /// `<bos> desc <sep> code <eos>` and returns (ids, code_start) where
    /// `code_start` is the index of the first code token (just after
    /// `<sep>`), so training can mask the loss to the code region.
    pub fn encode_pair(&self, description: &str, code: &str) -> (Vec<usize>, usize) {
        let mut ids = vec![BOS];
        ids.extend(self.encode(description));
        ids.push(SEP);
        let code_start = ids.len();
        ids.extend(self.encode(code));
        ids.push(EOS);
        (ids, code_start)
    }

    /// Encodes a prompt for generation: `<bos> desc <sep>`.
    pub fn encode_prompt(&self, description: &str) -> Vec<usize> {
        let mut ids = vec![BOS];
        ids.extend(self.encode(description));
        ids.push(SEP);
        ids
    }

    /// Decodes ids back to text with single spaces (whitespace is not
    /// preserved; Verilog tokenization is whitespace-insensitive so the
    /// result still parses).
    pub fn decode(&self, ids: &[usize]) -> String {
        let mut out = String::new();
        for &id in ids {
            if id == BOS || id == EOS || id == PAD || id == SEP {
                continue;
            }
            let word = self.words.get(id).map(|s| s.as_str()).unwrap_or("<unk>");
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(word);
        }
        out
    }

    /// The word for an id.
    pub fn word(&self, id: usize) -> Option<&str> {
        self.words.get(id).map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitter_handles_verilog_operators() {
        let toks = split_tokens("assign y = a <= b ? 4'b1010 : q <<< 2;");
        assert!(toks.contains(&"<="));
        assert!(toks.contains(&"<<<"));
        assert!(toks.contains(&"4'b1010"), "{toks:?}");
        assert!(toks.contains(&";"));
    }

    #[test]
    fn build_encode_decode_round_trip_words() {
        let corpus = ["module m ( input a , output y ) ;", "assign y = ~ a ;"];
        let tk = Tokenizer::build(corpus.iter().copied(), 1);
        let ids = tk.encode("assign y = ~ a ;");
        let text = tk.decode(&ids);
        assert_eq!(text, "assign y = ~ a ;");
    }

    #[test]
    fn unknown_words_map_to_unk() {
        let tk = Tokenizer::build(["module m"].iter().copied(), 1);
        let ids = tk.encode("zebra module");
        assert_eq!(ids[0], UNK);
        assert_ne!(ids[1], UNK);
    }

    #[test]
    fn pair_encoding_layout() {
        let tk = Tokenizer::build(["an inverter", "assign y = ~ a ;"].iter().copied(), 1);
        let (ids, code_start) = tk.encode_pair("an inverter", "assign y = ~a;");
        assert_eq!(ids[0], BOS);
        assert_eq!(*ids.last().unwrap(), EOS);
        assert_eq!(ids[code_start - 1], SEP);
        assert!(code_start > 1);
    }

    #[test]
    fn prompt_ends_with_sep() {
        let tk = Tokenizer::build(["a counter"].iter().copied(), 1);
        let p = tk.encode_prompt("a counter");
        assert_eq!(p[0], BOS);
        assert_eq!(*p.last().unwrap(), SEP);
    }

    #[test]
    fn min_count_filters_rare_words() {
        let tk = Tokenizer::build(["common common common rare"].iter().copied(), 2);
        assert_eq!(tk.encode("rare")[0], UNK);
        assert_ne!(tk.encode("common")[0], UNK);
    }

    #[test]
    fn vocab_is_deterministic() {
        let corpus = ["b a b c c c", "a a b"];
        let t1 = Tokenizer::build(corpus.iter().copied(), 1);
        let t2 = Tokenizer::build(corpus.iter().copied(), 1);
        assert_eq!(t1, t2);
        assert_eq!(t1.vocab_size(), 5 + 3);
    }

    #[test]
    fn decoded_verilog_still_parses() {
        let src = "module m(input a, output y);\n  assign y = ~a;\nendmodule";
        let tk = Tokenizer::build([src].iter().copied(), 1);
        let ids = tk.encode(src);
        let text = tk.decode(&ids);
        assert!(pyranet_verilog::parse(&text).is_ok(), "{text}");
    }
}
