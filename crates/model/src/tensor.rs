//! Tape-based reverse-mode autograd over 2-D `f32` tensors.
//!
//! The design is define-by-run: a [`Graph`] is built per training step,
//! forward values are computed eagerly, and [`Graph::backward`] replays the
//! tape in reverse. Tensors are row-major `[rows, cols]` matrices; vectors
//! are `[1, n]`.

/// A node id on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorId(usize);

/// Row-major matrix storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major data, `rows * cols` long.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix from raw parts.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Matrix { rows, cols, data }
    }

    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Element access.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

enum Op {
    Leaf,
    /// (a, b): C = A · B
    MatMul(TensorId, TensorId),
    /// (a, b): C = A · Bᵀ
    MatMulNt(TensorId, TensorId),
    Add(TensorId, TensorId),
    /// Adds a `[1, n]` row vector to every row.
    AddRow(TensorId, TensorId),
    Mul(TensorId, TensorId),
    Scale(TensorId, f32),
    Gelu(TensorId),
    /// Row-wise layer norm; caches (mean, rstd) per row.
    LayerNorm(TensorId, Vec<(f32, f32)>),
    /// Row-wise softmax with optional causal mask (applied in forward).
    Softmax(TensorId),
    /// Embedding gather: rows of `table` selected by `ids`.
    Gather(TensorId, Vec<usize>),
    /// Column slice [start, len) of the input.
    SliceCols(TensorId, usize, usize),
    /// Horizontal concatenation of column blocks.
    ConcatCols(Vec<TensorId>),
    /// Weighted token cross-entropy; caches softmax probs.
    CrossEntropy {
        logits: TensorId,
        targets: Vec<usize>,
        weights: Vec<f32>,
        probs: Box<Matrix>,
    },
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
    needs_grad: bool,
}

/// A single-use computation graph.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph").field("nodes", &self.nodes.len()).finish()
    }
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    fn push(&mut self, value: Matrix, op: Op, needs_grad: bool) -> TensorId {
        self.nodes.push(Node { value, grad: None, op, needs_grad });
        TensorId(self.nodes.len() - 1)
    }

    /// Adds a trainable leaf (gradient will be accumulated).
    pub fn param(&mut self, value: Matrix) -> TensorId {
        self.push(value, Op::Leaf, true)
    }

    /// Adds a constant leaf (no gradient).
    pub fn constant(&mut self, value: Matrix) -> TensorId {
        self.push(value, Op::Leaf, false)
    }

    /// The forward value of a node.
    pub fn value(&self, id: TensorId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// The accumulated gradient of a node (zero matrix if it never received
    /// gradient).
    pub fn grad(&self, id: TensorId) -> Matrix {
        let n = &self.nodes[id.0];
        n.grad.clone().unwrap_or_else(|| Matrix::zeros(n.value.rows, n.value.cols))
    }

    fn shape(&self, id: TensorId) -> (usize, usize) {
        let v = &self.nodes[id.0].value;
        (v.rows, v.cols)
    }

    fn needs(&self, id: TensorId) -> bool {
        self.nodes[id.0].needs_grad
    }

    // ---- ops ----

    /// `A · B`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (ar, ac) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!(ac, br, "matmul inner dims {ac} vs {br}");
        let mut out = Matrix::zeros(ar, bc);
        {
            let av = &self.nodes[a.0].value;
            let bv = &self.nodes[b.0].value;
            matmul_into(av, bv, &mut out);
        }
        let needs = self.needs(a) || self.needs(b);
        self.push(out, Op::MatMul(a, b), needs)
    }

    /// `A · Bᵀ`.
    pub fn matmul_nt(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (ar, ac) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!(ac, bc, "matmul_nt inner dims {ac} vs {bc}");
        let mut out = Matrix::zeros(ar, br);
        {
            let av = &self.nodes[a.0].value;
            let bv = &self.nodes[b.0].value;
            for i in 0..ar {
                for j in 0..br {
                    let mut acc = 0.0f32;
                    for k in 0..ac {
                        acc += av.data[i * ac + k] * bv.data[j * bc + k];
                    }
                    out.data[i * br + j] = acc;
                }
            }
        }
        let needs = self.needs(a) || self.needs(b);
        self.push(out, Op::MatMulNt(a, b), needs)
    }

    /// Elementwise sum (same shape).
    pub fn add(&mut self, a: TensorId, b: TensorId) -> TensorId {
        assert_eq!(self.shape(a), self.shape(b), "add shape mismatch");
        let mut out = self.nodes[a.0].value.clone();
        for (o, x) in out.data.iter_mut().zip(&self.nodes[b.0].value.data) {
            *o += x;
        }
        let needs = self.needs(a) || self.needs(b);
        self.push(out, Op::Add(a, b), needs)
    }

    /// Adds row vector `row` (`[1, n]`) to every row of `a` (`[m, n]`).
    pub fn add_row(&mut self, a: TensorId, row: TensorId) -> TensorId {
        let (_, ac) = self.shape(a);
        let (rr, rc) = self.shape(row);
        assert_eq!((rr, rc), (1, ac), "add_row expects [1,{ac}], got [{rr},{rc}]");
        let mut out = self.nodes[a.0].value.clone();
        let rv = &self.nodes[row.0].value;
        for r in 0..out.rows {
            for c in 0..out.cols {
                out.data[r * out.cols + c] += rv.data[c];
            }
        }
        let needs = self.needs(a) || self.needs(row);
        self.push(out, Op::AddRow(a, row), needs)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        assert_eq!(self.shape(a), self.shape(b), "mul shape mismatch");
        let mut out = self.nodes[a.0].value.clone();
        for (o, x) in out.data.iter_mut().zip(&self.nodes[b.0].value.data) {
            *o *= x;
        }
        let needs = self.needs(a) || self.needs(b);
        self.push(out, Op::Mul(a, b), needs)
    }

    /// Scalar multiply.
    pub fn scale(&mut self, a: TensorId, k: f32) -> TensorId {
        let mut out = self.nodes[a.0].value.clone();
        for o in out.data.iter_mut() {
            *o *= k;
        }
        let needs = self.needs(a);
        self.push(out, Op::Scale(a, k), needs)
    }

    /// GELU activation (tanh approximation).
    pub fn gelu(&mut self, a: TensorId) -> TensorId {
        let mut out = self.nodes[a.0].value.clone();
        for o in out.data.iter_mut() {
            *o = gelu_fwd(*o);
        }
        let needs = self.needs(a);
        self.push(out, Op::Gelu(a), needs)
    }

    /// Row-wise layer normalization (no affine; compose with `mul`/`add_row`
    /// for gain/bias).
    pub fn layernorm(&mut self, a: TensorId) -> TensorId {
        let v = &self.nodes[a.0].value;
        let mut out = Matrix::zeros(v.rows, v.cols);
        let mut stats = Vec::with_capacity(v.rows);
        for r in 0..v.rows {
            let row = &v.data[r * v.cols..(r + 1) * v.cols];
            let mean = row.iter().sum::<f32>() / v.cols as f32;
            let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / v.cols as f32;
            let rstd = 1.0 / (var + 1e-5).sqrt();
            for (c, &x) in row.iter().enumerate() {
                out.data[r * v.cols + c] = (x - mean) * rstd;
            }
            stats.push((mean, rstd));
        }
        let needs = self.needs(a);
        self.push(out, Op::LayerNorm(a, stats), needs)
    }

    /// Row-wise softmax. `causal` masks column j > row i with -inf first
    /// (for square attention score matrices).
    pub fn softmax(&mut self, a: TensorId, causal: bool) -> TensorId {
        let v = &self.nodes[a.0].value;
        let mut out = Matrix::zeros(v.rows, v.cols);
        for r in 0..v.rows {
            let limit = if causal { (r + 1).min(v.cols) } else { v.cols };
            let row = &v.data[r * v.cols..r * v.cols + limit];
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let mut denom = 0.0f32;
            for (c, &x) in row.iter().enumerate() {
                let e = (x - max).exp();
                out.data[r * v.cols + c] = e;
                denom += e;
            }
            for c in 0..limit {
                out.data[r * v.cols + c] /= denom;
            }
            // masked entries stay exactly 0
        }
        let needs = self.needs(a);
        self.push(out, Op::Softmax(a), needs)
    }

    /// Gathers rows `ids` of `table` (embedding lookup).
    pub fn gather(&mut self, table: TensorId, ids: &[usize]) -> TensorId {
        let t = &self.nodes[table.0].value;
        let mut out = Matrix::zeros(ids.len(), t.cols);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < t.rows, "gather index {id} out of {}", t.rows);
            out.data[r * t.cols..(r + 1) * t.cols]
                .copy_from_slice(&t.data[id * t.cols..(id + 1) * t.cols]);
        }
        let needs = self.needs(table);
        self.push(out, Op::Gather(table, ids.to_vec()), needs)
    }

    /// Column slice `[start, start+len)`.
    pub fn slice_cols(&mut self, a: TensorId, start: usize, len: usize) -> TensorId {
        let v = &self.nodes[a.0].value;
        assert!(start + len <= v.cols, "slice beyond columns");
        let mut out = Matrix::zeros(v.rows, len);
        for r in 0..v.rows {
            out.data[r * len..(r + 1) * len]
                .copy_from_slice(&v.data[r * v.cols + start..r * v.cols + start + len]);
        }
        let needs = self.needs(a);
        self.push(out, Op::SliceCols(a, start, len), needs)
    }

    /// Concatenates blocks horizontally (same row count).
    pub fn concat_cols(&mut self, parts: &[TensorId]) -> TensorId {
        assert!(!parts.is_empty());
        let rows = self.shape(parts[0]).0;
        let total: usize = parts.iter().map(|p| self.shape(*p).1).sum();
        let mut out = Matrix::zeros(rows, total);
        let mut off = 0;
        for &p in parts {
            let v = &self.nodes[p.0].value;
            assert_eq!(v.rows, rows, "concat_cols row mismatch");
            for r in 0..rows {
                out.data[r * total + off..r * total + off + v.cols]
                    .copy_from_slice(&v.data[r * v.cols..(r + 1) * v.cols]);
            }
            off += v.cols;
        }
        let needs = parts.iter().any(|p| self.needs(*p));
        self.push(out, Op::ConcatCols(parts.to_vec()), needs)
    }

    /// Per-row weighted cross-entropy over logits `[n, V]` against `targets`
    /// with per-row `weights`; returns a `[1,1]` scalar:
    /// `sum_i w_i * (-log softmax(logits_i)[t_i]) / sum_i w_i`.
    ///
    /// # Panics
    ///
    /// Panics when lengths disagree or all weights are zero.
    pub fn cross_entropy(
        &mut self,
        logits: TensorId,
        targets: &[usize],
        weights: &[f32],
    ) -> TensorId {
        let v = &self.nodes[logits.0].value;
        assert_eq!(v.rows, targets.len());
        assert_eq!(v.rows, weights.len());
        let wsum: f32 = weights.iter().sum();
        assert!(wsum > 0.0, "all-zero loss weights");
        let mut probs = Matrix::zeros(v.rows, v.cols);
        let mut loss = 0.0f32;
        for r in 0..v.rows {
            let row = &v.data[r * v.cols..(r + 1) * v.cols];
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let mut denom = 0.0f32;
            for (c, &x) in row.iter().enumerate() {
                let e = (x - max).exp();
                probs.data[r * v.cols + c] = e;
                denom += e;
            }
            for c in 0..v.cols {
                probs.data[r * v.cols + c] /= denom;
            }
            let p = probs.data[r * v.cols + targets[r]].max(1e-12);
            loss -= weights[r] * p.ln();
        }
        loss /= wsum;
        let needs = self.needs(logits);
        self.push(
            Matrix::new(1, 1, vec![loss]),
            Op::CrossEntropy {
                logits,
                targets: targets.to_vec(),
                weights: weights.to_vec(),
                probs: Box::new(probs),
            },
            needs,
        )
    }

    /// Runs the backward pass from `root` (must be `[1,1]`).
    ///
    /// # Panics
    ///
    /// Panics when `root` is not scalar.
    pub fn backward(&mut self, root: TensorId) {
        {
            let v = &self.nodes[root.0].value;
            assert_eq!((v.rows, v.cols), (1, 1), "backward root must be scalar");
        }
        self.nodes[root.0].grad = Some(Matrix::new(1, 1, vec![1.0]));
        for i in (0..=root.0).rev() {
            if self.nodes[i].grad.is_none() || !self.nodes[i].needs_grad {
                continue;
            }
            let grad = self.nodes[i].grad.clone().expect("checked above");
            self.backprop_node(i, &grad);
        }
    }

    fn accumulate(&mut self, id: TensorId, delta: Matrix) {
        if !self.nodes[id.0].needs_grad {
            return;
        }
        match &mut self.nodes[id.0].grad {
            Some(g) => {
                for (a, b) in g.data.iter_mut().zip(&delta.data) {
                    *a += b;
                }
            }
            None => self.nodes[id.0].grad = Some(delta),
        }
    }

    fn backprop_node(&mut self, i: usize, grad: &Matrix) {
        // Take op apart immutably first to avoid aliasing with accumulate.
        match &self.nodes[i].op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                let (a, b) = (*a, *b);
                let av = self.nodes[a.0].value.clone();
                let bv = self.nodes[b.0].value.clone();
                // dA = dC · Bᵀ
                if self.needs(a) {
                    let mut da = Matrix::zeros(av.rows, av.cols);
                    for r in 0..av.rows {
                        for k in 0..av.cols {
                            let mut acc = 0.0f32;
                            for c in 0..bv.cols {
                                acc += grad.data[r * bv.cols + c] * bv.data[k * bv.cols + c];
                            }
                            da.data[r * av.cols + k] = acc;
                        }
                    }
                    self.accumulate(a, da);
                }
                // dB = Aᵀ · dC
                if self.needs(b) {
                    let mut db = Matrix::zeros(bv.rows, bv.cols);
                    for k in 0..bv.rows {
                        for c in 0..bv.cols {
                            let mut acc = 0.0f32;
                            for r in 0..av.rows {
                                acc += av.data[r * av.cols + k] * grad.data[r * bv.cols + c];
                            }
                            db.data[k * bv.cols + c] = acc;
                        }
                    }
                    self.accumulate(b, db);
                }
            }
            Op::MatMulNt(a, b) => {
                let (a, b) = (*a, *b);
                let av = self.nodes[a.0].value.clone();
                let bv = self.nodes[b.0].value.clone();
                // C = A Bᵀ, dA = dC · B ; dB = dCᵀ · A
                if self.needs(a) {
                    let mut da = Matrix::zeros(av.rows, av.cols);
                    matmul_into(grad, &bv, &mut da);
                    self.accumulate(a, da);
                }
                if self.needs(b) {
                    let mut db = Matrix::zeros(bv.rows, bv.cols);
                    for j in 0..bv.rows {
                        for k in 0..bv.cols {
                            let mut acc = 0.0f32;
                            for r in 0..av.rows {
                                acc += grad.data[r * bv.rows + j] * av.data[r * av.cols + k];
                            }
                            db.data[j * bv.cols + k] = acc;
                        }
                    }
                    self.accumulate(b, db);
                }
            }
            Op::Add(a, b) => {
                let (a, b) = (*a, *b);
                self.accumulate(a, grad.clone());
                self.accumulate(b, grad.clone());
            }
            Op::AddRow(a, row) => {
                let (a, row) = (*a, *row);
                self.accumulate(a, grad.clone());
                if self.needs(row) {
                    let mut dr = Matrix::zeros(1, grad.cols);
                    for r in 0..grad.rows {
                        for c in 0..grad.cols {
                            dr.data[c] += grad.data[r * grad.cols + c];
                        }
                    }
                    self.accumulate(row, dr);
                }
            }
            Op::Mul(a, b) => {
                let (a, b) = (*a, *b);
                if self.needs(a) {
                    let bv = self.nodes[b.0].value.clone();
                    let mut da = grad.clone();
                    for (g, x) in da.data.iter_mut().zip(&bv.data) {
                        *g *= x;
                    }
                    self.accumulate(a, da);
                }
                if self.needs(b) {
                    let av = self.nodes[a.0].value.clone();
                    let mut db = grad.clone();
                    for (g, x) in db.data.iter_mut().zip(&av.data) {
                        *g *= x;
                    }
                    self.accumulate(b, db);
                }
            }
            Op::Scale(a, k) => {
                let (a, k) = (*a, *k);
                let mut da = grad.clone();
                for g in da.data.iter_mut() {
                    *g *= k;
                }
                self.accumulate(a, da);
            }
            Op::Gelu(a) => {
                let a = *a;
                let av = self.nodes[a.0].value.clone();
                let mut da = grad.clone();
                for (g, &x) in da.data.iter_mut().zip(&av.data) {
                    *g *= gelu_bwd(x);
                }
                self.accumulate(a, da);
            }
            Op::LayerNorm(a, stats) => {
                let a = *a;
                let stats = stats.clone();
                let av = self.nodes[a.0].value.clone();
                let mut da = Matrix::zeros(av.rows, av.cols);
                let n = av.cols as f32;
                for (r, &(mean, rstd)) in stats.iter().enumerate() {
                    let xs = &av.data[r * av.cols..(r + 1) * av.cols];
                    let gs = &grad.data[r * av.cols..(r + 1) * av.cols];
                    let sum_g: f32 = gs.iter().sum();
                    let sum_gx: f32 = gs.iter().zip(xs).map(|(g, x)| g * (x - mean) * rstd).sum();
                    for c in 0..av.cols {
                        let xhat = (xs[c] - mean) * rstd;
                        da.data[r * av.cols + c] = rstd * (gs[c] - sum_g / n - xhat * sum_gx / n);
                    }
                }
                self.accumulate(a, da);
            }
            Op::Softmax(a) => {
                let a = *a;
                let sv = self.nodes[i].value.clone();
                let mut da = Matrix::zeros(sv.rows, sv.cols);
                for r in 0..sv.rows {
                    let srow = &sv.data[r * sv.cols..(r + 1) * sv.cols];
                    let grow = &grad.data[r * sv.cols..(r + 1) * sv.cols];
                    let dot: f32 = srow.iter().zip(grow).map(|(s, g)| s * g).sum();
                    for c in 0..sv.cols {
                        da.data[r * sv.cols + c] = srow[c] * (grow[c] - dot);
                    }
                }
                self.accumulate(a, da);
            }
            Op::Gather(table, ids) => {
                let table = *table;
                let ids = ids.clone();
                let (tr, tc) = self.shape(table);
                let mut dt = Matrix::zeros(tr, tc);
                for (r, id) in ids.iter().enumerate() {
                    for c in 0..tc {
                        dt.data[id * tc + c] += grad.data[r * tc + c];
                    }
                }
                self.accumulate(table, dt);
            }
            Op::SliceCols(a, start, len) => {
                let (a, start, len) = (*a, *start, *len);
                let (ar, ac) = self.shape(a);
                let mut da = Matrix::zeros(ar, ac);
                for r in 0..ar {
                    for c in 0..len {
                        da.data[r * ac + start + c] = grad.data[r * len + c];
                    }
                }
                self.accumulate(a, da);
            }
            Op::ConcatCols(parts) => {
                let parts = parts.clone();
                let mut off = 0;
                for p in parts {
                    let (pr, pc) = self.shape(p);
                    if self.needs(p) {
                        let mut dp = Matrix::zeros(pr, pc);
                        for r in 0..pr {
                            for c in 0..pc {
                                dp.data[r * pc + c] = grad.data[r * grad.cols + off + c];
                            }
                        }
                        self.accumulate(p, dp);
                    }
                    off += pc;
                }
            }
            Op::CrossEntropy { logits, targets, weights, probs } => {
                let logits = *logits;
                let targets = targets.clone();
                let weights = weights.clone();
                let probs = (**probs).clone();
                let wsum: f32 = weights.iter().sum();
                let g0 = grad.data[0];
                let mut dl = Matrix::zeros(probs.rows, probs.cols);
                for r in 0..probs.rows {
                    let w = weights[r] / wsum;
                    for c in 0..probs.cols {
                        let indicator = if c == targets[r] { 1.0 } else { 0.0 };
                        dl.data[r * probs.cols + c] =
                            g0 * w * (probs.data[r * probs.cols + c] - indicator);
                    }
                }
                self.accumulate(logits, dl);
            }
        }
    }
}

fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    debug_assert_eq!(a.cols, b.rows);
    out.data.fill(0.0);
    for i in 0..a.rows {
        for k in 0..a.cols {
            let av = a.data[i * a.cols + k];
            if av == 0.0 {
                continue;
            }
            let brow = &b.data[k * b.cols..(k + 1) * b.cols];
            let orow = &mut out.data[i * b.cols..(i + 1) * b.cols];
            for (o, &x) in orow.iter_mut().zip(brow) {
                *o += av * x;
            }
        }
    }
}

fn gelu_fwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_bwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * (x + 0.044715 * x * x * x);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks d(loss)/d(param[idx]) for a scalar-producing
    /// closure rebuilt per evaluation.
    fn finite_diff<F>(param: &Matrix, idx: usize, f: F) -> f32
    where
        F: Fn(&Matrix) -> f32,
    {
        let eps = 1e-2f32;
        let mut plus = param.clone();
        plus.data[idx] += eps;
        let mut minus = param.clone();
        minus.data[idx] -= eps;
        (f(&plus) - f(&minus)) / (2.0 * eps)
    }

    fn seeded(rows: usize, cols: usize, seed: u64) -> Matrix {
        // deterministic pseudo-random values in [-0.5, 0.5]
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let data = (0..rows * cols)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x >> 11) as f32 / (1u64 << 53) as f32) - 0.5
            })
            .collect();
        Matrix::new(rows, cols, data)
    }

    #[test]
    fn matmul_forward_correct() {
        let mut g = Graph::new();
        let a = g.constant(Matrix::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let b = g.constant(Matrix::new(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]));
        let c = g.matmul(a, b);
        assert_eq!(g.value(c).data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_nt_matches_matmul_with_transpose() {
        let a = seeded(3, 4, 1);
        let b = seeded(5, 4, 2);
        let mut bt = Matrix::zeros(4, 5);
        for r in 0..5 {
            for c in 0..4 {
                bt.data[c * 5 + r] = b.data[r * 4 + c];
            }
        }
        let mut g = Graph::new();
        let (ia, ib, ibt) = (g.constant(a), g.constant(b), g.constant(bt));
        let c1 = g.matmul_nt(ia, ib);
        let c2 = g.matmul(ia, ibt);
        for (x, y) in g.value(c1).data.iter().zip(&g.value(c2).data) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    /// One scalar loss used for gradient checking: weighted CE over a tiny
    /// two-layer network exercising most ops.
    fn loss_through_net(w1: &Matrix, w2: &Matrix) -> f32 {
        let mut g = Graph::new();
        let x = g.constant(seeded(4, 3, 7));
        let p1 = g.param(w1.clone());
        let p2 = g.param(w2.clone());
        let h = g.matmul(x, p1);
        let h = g.gelu(h);
        let h = g.layernorm(h);
        let logits = g.matmul(h, p2);
        let loss = g.cross_entropy(logits, &[0, 2, 1, 3], &[1.0, 0.5, 0.8, 0.2]);
        g.value(loss).data[0]
    }

    #[test]
    fn gradients_match_finite_differences() {
        let w1 = seeded(3, 5, 11);
        let w2 = seeded(5, 4, 13);
        // analytic gradients
        let mut g = Graph::new();
        let x = g.constant(seeded(4, 3, 7));
        let p1 = g.param(w1.clone());
        let p2 = g.param(w2.clone());
        let h = g.matmul(x, p1);
        let h = g.gelu(h);
        let h = g.layernorm(h);
        let logits = g.matmul(h, p2);
        let loss = g.cross_entropy(logits, &[0, 2, 1, 3], &[1.0, 0.5, 0.8, 0.2]);
        g.backward(loss);
        let g1 = g.grad(p1);
        let g2 = g.grad(p2);
        for idx in [0usize, 3, 7, 14] {
            let fd = finite_diff(&w1, idx, |w| loss_through_net(w, &w2));
            assert!(
                (g1.data[idx] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "w1[{idx}]: analytic {} vs fd {fd}",
                g1.data[idx]
            );
        }
        for idx in [0usize, 5, 11, 19] {
            let fd = finite_diff(&w2, idx, |w| loss_through_net(&w1, w));
            assert!(
                (g2.data[idx] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "w2[{idx}]: analytic {} vs fd {fd}",
                g2.data[idx]
            );
        }
    }

    #[test]
    fn attention_path_gradcheck() {
        // softmax(Q Kᵀ) V with causal mask, loss = weighted CE
        let wq = seeded(3, 3, 21);
        let run = |wq: &Matrix| -> (f32, Matrix) {
            let mut g = Graph::new();
            let x = g.constant(seeded(4, 3, 22));
            let pq = g.param(wq.clone());
            let q = g.matmul(x, pq);
            let scores = g.matmul_nt(q, x);
            let scaled = g.scale(scores, 0.5773);
            let attn = g.softmax(scaled, true);
            let ctx = g.matmul(attn, x);
            let loss = g.cross_entropy(ctx, &[0, 1, 2, 0], &[1.0, 1.0, 1.0, 1.0]);
            g.backward(loss);
            (g.value(loss).data[0], g.grad(pq))
        };
        let (_, analytic) = run(&wq);
        for idx in [0usize, 4, 8] {
            let fd = finite_diff(&wq, idx, |w| run(w).0);
            assert!(
                (analytic.data[idx] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "wq[{idx}]: analytic {} vs fd {fd}",
                analytic.data[idx]
            );
        }
    }

    #[test]
    fn gather_grad_scatters() {
        let table = seeded(5, 2, 31);
        let run = |t: &Matrix| -> (f32, Matrix) {
            let mut g = Graph::new();
            let pt = g.param(t.clone());
            let got = g.gather(pt, &[1, 3, 1]);
            let loss = g.cross_entropy(got, &[0, 1, 0], &[1.0, 1.0, 1.0]);
            g.backward(loss);
            (g.value(loss).data[0], g.grad(pt))
        };
        let (_, analytic) = run(&table);
        for idx in [2usize, 3, 6, 7] {
            let fd = finite_diff(&table, idx, |t| run(t).0);
            assert!((analytic.data[idx] - fd).abs() < 2e-2 * (1.0 + fd.abs()), "table[{idx}]");
        }
        // rows never gathered get zero grad
        assert_eq!(analytic.data[0], 0.0);
        assert_eq!(analytic.data[8], 0.0);
    }

    #[test]
    fn slice_concat_roundtrip_grads() {
        let w = seeded(2, 6, 41);
        let run = |w: &Matrix| -> (f32, Matrix) {
            let mut g = Graph::new();
            let pw = g.param(w.clone());
            let l = g.slice_cols(pw, 0, 3);
            let r = g.slice_cols(pw, 3, 3);
            let back = g.concat_cols(&[l, r]);
            let loss = g.cross_entropy(back, &[0, 5], &[1.0, 2.0]);
            g.backward(loss);
            (g.value(loss).data[0], g.grad(pw))
        };
        let (_, analytic) = run(&w);
        for idx in [0usize, 4, 9, 11] {
            let fd = finite_diff(&w, idx, |w| run(w).0);
            assert!((analytic.data[idx] - fd).abs() < 2e-2 * (1.0 + fd.abs()), "w[{idx}]");
        }
    }

    #[test]
    fn softmax_rows_sum_to_one_and_causal_masks() {
        let mut g = Graph::new();
        let a = g.constant(seeded(4, 4, 51));
        let s = g.softmax(a, true);
        let v = g.value(s);
        for r in 0..4 {
            let sum: f32 = (0..4).map(|c| v.at(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
            for c in (r + 1)..4 {
                assert_eq!(v.at(r, c), 0.0, "causal mask leak at [{r},{c}]");
            }
        }
    }

    #[test]
    fn weighted_ce_all_ones_equals_unweighted() {
        let logits = seeded(3, 4, 61);
        let mut g1 = Graph::new();
        let l1 = g1.constant(logits.clone());
        let c1 = g1.cross_entropy(l1, &[1, 2, 0], &[1.0, 1.0, 1.0]);
        let mut g2 = Graph::new();
        let l2 = g2.constant(logits);
        let c2 = g2.cross_entropy(l2, &[1, 2, 0], &[2.0, 2.0, 2.0]);
        // weights normalise out: scaling all weights equally changes nothing
        assert!((g1.value(c1).data[0] - g2.value(c2).data[0]).abs() < 1e-6);
    }

    #[test]
    fn weighted_ce_downweights_rows() {
        // Row 1 has a terrible prediction; downweighting it must reduce loss.
        let logits = Matrix::new(2, 2, vec![5.0, 0.0, 5.0, 0.0]);
        let mut g1 = Graph::new();
        let l1 = g1.constant(logits.clone());
        let full = g1.cross_entropy(l1, &[0, 1], &[1.0, 1.0]);
        let mut g2 = Graph::new();
        let l2 = g2.constant(logits);
        let down = g2.cross_entropy(l2, &[0, 1], &[1.0, 0.1]);
        assert!(g2.value(down).data[0] < g1.value(full).data[0]);
    }

    #[test]
    #[should_panic(expected = "all-zero loss weights")]
    fn zero_weights_panic() {
        let mut g = Graph::new();
        let l = g.constant(Matrix::zeros(1, 2));
        let _ = g.cross_entropy(l, &[0], &[0.0]);
    }

    #[test]
    fn layernorm_rows_are_standardised() {
        let mut g = Graph::new();
        let a = g.constant(seeded(3, 8, 71));
        let n = g.layernorm(a);
        let v = g.value(n);
        for r in 0..3 {
            let row: Vec<f32> = (0..8).map(|c| v.at(r, c)).collect();
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn constants_receive_no_grad() {
        let mut g = Graph::new();
        let c = g.constant(seeded(2, 2, 81));
        let p = g.param(seeded(2, 2, 82));
        let s = g.add(c, p);
        let loss = g.cross_entropy(s, &[0, 1], &[1.0, 1.0]);
        g.backward(loss);
        assert!(g.grad(c).data.iter().all(|&x| x == 0.0));
        assert!(g.grad(p).data.iter().any(|&x| x != 0.0));
    }

    #[test]
    #[should_panic(expected = "matrix shape mismatch")]
    fn bad_shape_panics() {
        let _ = Matrix::new(2, 2, vec![1.0; 3]);
    }
}
